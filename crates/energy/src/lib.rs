//! Analytical energy model for the DMDC reproduction — the role Wattch \[3\]
//! plays in the paper.
//!
//! The paper reports *normalized* energy (percent savings), so the model
//! only needs to get relative scaling right:
//!
//! * a CAM search drives a match line per entry across the full tag width,
//!   so its energy grows linearly with `entries × tag_bits`;
//! * an indexed SRAM access pays wordline/bitline energy for one row plus a
//!   logarithmic decode term;
//! * discrete registers (YLA) cost a small constant per access;
//! * a flash clear costs a small per-entry reset;
//! * the rest of the core is modeled as an envelope of energy per cycle
//!   plus energy per committed instruction, scaled with machine size so the
//!   LQ's share of total power grows from config 1 to config 3 as the paper
//!   describes (§6.2.1, third point).
//!
//! Absolute numbers are in arbitrary "energy units" (calibrated so that the
//! conventional LQ consumes a plausible 3–9% of core energy across the three
//! configurations); every reported result is a ratio.
//!
//! # Examples
//!
//! ```
//! use dmdc_energy::EnergyModel;
//! use dmdc_ooo::{CoreConfig, SimStats};
//!
//! let model = EnergyModel::for_config(&CoreConfig::config2());
//! let mut stats = SimStats::default();
//! stats.cycles = 1000;
//! stats.committed = 2000;
//! stats.energy.lq_cam_searches = 500;
//! let breakdown = model.evaluate(&stats);
//! assert!(breakdown.lq > 0.0);
//! assert!(breakdown.total() > breakdown.lq);
//! ```

mod model;

pub use model::{EnergyBreakdown, EnergyModel, EnergyParams, StructureGeometry};
