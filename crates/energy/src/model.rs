//! The analytical model proper. See the crate docs for the modeling
//! rationale; constants are collected in [`EnergyParams`] and documented
//! field by field so the calibration is auditable.

use dmdc_ooo::{CoreConfig, SimStats};

/// Per-event energy coefficients, in arbitrary consistent units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per CAM cell compared during one associative search
    /// (match-line + tag-bit compare). A search costs
    /// `cam_bit × entries × tag_bits`.
    pub cam_bit: f64,
    /// Energy per bit read or written on an SRAM row access.
    pub ram_bit: f64,
    /// Decode-tree energy per address bit (`ram_decode × log2(entries)`).
    pub ram_decode: f64,
    /// Energy per discrete-register (YLA) read or write, including the age
    /// comparator.
    pub reg_access: f64,
    /// Energy per entry for a flash clear of an indexed structure.
    pub clear_entry: f64,
    /// Core envelope: energy per cycle at the config-2 machine scale
    /// (clock tree, fetch/rename/issue machinery, leakage).
    pub core_cycle: f64,
    /// Core envelope: energy per committed instruction at config-2 scale
    /// (register files, functional units, caches).
    pub core_instr: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        // Calibrated so the conventional LQ draws ~4-8% of core energy
        // across configs 1-3 (paper §6.2.1 reports LQ share growing with
        // machine size, and 3-8% net savings when it is mostly eliminated).
        EnergyParams {
            cam_bit: 1.0,
            ram_bit: 1.0,
            ram_decode: 4.0,
            reg_access: 6.0,
            clear_entry: 0.05,
            core_cycle: 18_000.0,
            core_instr: 15_000.0,
        }
    }
}

/// Geometry of the dependence-checking structures a design instantiates.
/// Structures a design does not have are sized zero and contribute nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureGeometry {
    /// Load-queue entries.
    pub lq_entries: u32,
    /// Tag bits compared per LQ CAM search (address + age). Zero for FIFO
    /// (non-associative) load queues.
    pub lq_tag_bits: u32,
    /// Bits written per LQ entry allocation (full address for CAM designs,
    /// hash key + bitmap for DMDC's FIFO).
    pub lq_entry_bits: u32,
    /// Store-queue entries.
    pub sq_entries: u32,
    /// Tag bits per SQ forwarding search.
    pub sq_tag_bits: u32,
    /// Bits per SQ entry write (address + data).
    pub sq_entry_bits: u32,
    /// Checking-table entries (0 = no table).
    pub table_entries: u32,
    /// Bits per checking-table entry (WRT/INV bitmaps + valid).
    pub table_entry_bits: u32,
    /// Number of YLA registers (both interleaving sets combined; 0 = none).
    pub yla_regs: u32,
    /// Counting-bloom-filter entries (0 = none).
    pub bloom_entries: u32,
    /// Associative checking-queue entries (0 = none).
    pub cq_entries: u32,
    /// Envelope scale relative to config 2 (machine-size factor).
    pub core_scale: f64,
}

/// Address bits tracked by the queues (40-bit physical addresses plus age
/// and control, per a POWER4-class machine).
const ADDR_TAG_BITS: u32 = 48;

fn core_scale(config: &CoreConfig) -> f64 {
    (config.rob_size as f64 / 256.0).powf(0.75)
}

impl StructureGeometry {
    /// The conventional design: CAM LQ + CAM SQ, nothing else.
    pub fn conventional(config: &CoreConfig) -> StructureGeometry {
        StructureGeometry {
            lq_entries: config.lq_size,
            lq_tag_bits: ADDR_TAG_BITS,
            lq_entry_bits: ADDR_TAG_BITS,
            sq_entries: config.sq_size,
            sq_tag_bits: ADDR_TAG_BITS,
            sq_entry_bits: ADDR_TAG_BITS + 64,
            table_entries: 0,
            table_entry_bits: 0,
            yla_regs: 0,
            bloom_entries: 0,
            cq_entries: 0,
            core_scale: core_scale(config),
        }
    }

    /// YLA filtering in front of a conventional CAM LQ (paper §3).
    pub fn yla_filtered(config: &CoreConfig, yla_regs: u32) -> StructureGeometry {
        StructureGeometry {
            yla_regs,
            ..StructureGeometry::conventional(config)
        }
    }

    /// Bloom-filter search filtering in front of a conventional CAM LQ
    /// (Sethumadhavan et al. \[18\], the paper's Figure 3 comparison).
    pub fn bloom_filtered(config: &CoreConfig, bloom_entries: u32) -> StructureGeometry {
        StructureGeometry {
            bloom_entries,
            ..StructureGeometry::conventional(config)
        }
    }

    /// Full DMDC: FIFO LQ (hash keys only), checking table, two YLA sets.
    pub fn dmdc(config: &CoreConfig, yla_regs: u32) -> StructureGeometry {
        let key_bits = config.checking_table_entries.trailing_zeros() + 4;
        StructureGeometry {
            lq_tag_bits: 0,
            lq_entry_bits: key_bits,
            table_entries: config.checking_table_entries,
            table_entry_bits: 10, // WRT + INV bitmaps + valid
            yla_regs,
            ..StructureGeometry::conventional(config)
        }
    }

    /// DMDC with the associative checking queue instead of the hash table
    /// (paper §4.4).
    pub fn checking_queue(
        config: &CoreConfig,
        cq_entries: u32,
        yla_regs: u32,
    ) -> StructureGeometry {
        StructureGeometry {
            lq_tag_bits: 0,
            lq_entry_bits: ADDR_TAG_BITS,
            cq_entries,
            yla_regs,
            ..StructureGeometry::conventional(config)
        }
    }
}

/// Energy totals of one run, by structure, in model units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Load queue (CAM searches + entry writes, or FIFO writes).
    pub lq: f64,
    /// Store queue (forwarding CAM + writes).
    pub sq: f64,
    /// DMDC checking table (reads, writes, flash clears).
    pub table: f64,
    /// YLA registers.
    pub yla: f64,
    /// Bloom filter.
    pub bloom: f64,
    /// Associative checking queue.
    pub cq: f64,
    /// Everything else (core envelope).
    pub core: f64,
}

impl EnergyBreakdown {
    /// Total energy of the run.
    pub fn total(&self) -> f64 {
        self.lq + self.sq + self.table + self.yla + self.bloom + self.cq + self.core
    }

    /// Energy spent implementing the *LQ functionality*: the load queue
    /// itself plus every auxiliary structure a design adds to replace or
    /// filter its searches. This is the denominator/numerator of the
    /// paper's "LQ energy savings".
    pub fn lq_functionality(&self) -> f64 {
        self.lq + self.table + self.yla + self.bloom + self.cq
    }
}

/// The energy model: parameters + geometry, applied to run statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Coefficients.
    pub params: EnergyParams,
    /// Structure sizes.
    pub geometry: StructureGeometry,
}

impl EnergyModel {
    /// Model of the conventional design for `config`, default parameters.
    pub fn for_config(config: &CoreConfig) -> EnergyModel {
        EnergyModel {
            params: EnergyParams::default(),
            geometry: StructureGeometry::conventional(config),
        }
    }

    /// Model with an explicit geometry (YLA/DMDC/bloom/checking-queue).
    pub fn with_geometry(geometry: StructureGeometry) -> EnergyModel {
        EnergyModel {
            params: EnergyParams::default(),
            geometry,
        }
    }

    fn cam_search(&self, entries: u32, tag_bits: u32) -> f64 {
        self.params.cam_bit * entries as f64 * tag_bits as f64
    }

    fn ram_access(&self, entries: u32, bits: u32) -> f64 {
        if entries == 0 {
            return 0.0;
        }
        self.params.ram_bit * bits as f64 + self.params.ram_decode * (entries as f64).log2()
    }

    /// Evaluates a run's statistics into an energy breakdown.
    ///
    /// Writes into a CAM structure pay the full match-array access energy
    /// (precharged match lines plus the tag write), as in Wattch's LSQ
    /// model — this is what makes entry allocation, not just searching, a
    /// first-order LQ cost, and is why filtering alone (which only removes
    /// searches) saves ~a third of LQ energy rather than nearly all of it
    /// (paper §6.1). FIFO (non-CAM) load queues pay a plain SRAM write.
    pub fn evaluate(&self, stats: &SimStats) -> EnergyBreakdown {
        let g = &self.geometry;
        let e = &stats.energy;
        let lq_write_cost = if g.lq_tag_bits > 0 {
            self.cam_search(g.lq_entries, g.lq_tag_bits)
        } else {
            self.ram_access(g.lq_entries, g.lq_entry_bits)
        };
        let lq = e.lq_cam_searches as f64 * self.cam_search(g.lq_entries, g.lq_tag_bits)
            + e.lq_writes as f64 * lq_write_cost;
        let sq = e.sq_cam_searches as f64 * self.cam_search(g.sq_entries, g.sq_tag_bits)
            + e.sq_writes as f64 * self.cam_search(g.sq_entries, g.sq_tag_bits);
        let table = (e.table_reads + e.table_writes) as f64
            * self.ram_access(g.table_entries, g.table_entry_bits)
            + e.table_clears as f64 * self.params.clear_entry * g.table_entries as f64;
        let yla = (e.yla_reads + e.yla_writes) as f64 * self.params.reg_access;
        let bloom = (e.bloom_reads + e.bloom_writes) as f64 * self.ram_access(g.bloom_entries, 3);
        let cq =
            (e.cq_searches + e.cq_writes) as f64 * self.cam_search(g.cq_entries, ADDR_TAG_BITS);
        let core = g.core_scale
            * (stats.cycles as f64 * self.params.core_cycle
                + stats.committed as f64 * self.params.core_instr);
        EnergyBreakdown {
            lq,
            sq,
            table,
            yla,
            bloom,
            cq,
            core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_ooo::SimStats;

    /// Counters resembling a typical run: 1M instructions at IPC 2 with a
    /// 25% load / 12% store mix, conventional design.
    fn typical_baseline_stats() -> SimStats {
        let mut s = SimStats {
            committed: 1_000_000,
            cycles: 500_000,
            loads: 250_000,
            stores: 120_000,
            ..SimStats::default()
        };
        s.energy.lq_cam_searches = 120_000; // every store searches
        s.energy.lq_writes = 250_000;
        s.energy.sq_cam_searches = 250_000;
        s.energy.sq_writes = 120_000;
        s
    }

    /// The same run under DMDC: ~3% unsafe stores reach the table, loads in
    /// windows index it, plus YLA traffic and occasional clears.
    fn typical_dmdc_stats() -> SimStats {
        let mut s = typical_baseline_stats();
        s.energy.lq_cam_searches = 0;
        s.energy.table_writes = 4_000;
        s.energy.table_reads = 25_000;
        s.energy.table_clears = 3_000;
        s.energy.yla_reads = 120_000;
        s.energy.yla_writes = 250_000 + 4_000;
        s
    }

    #[test]
    fn cam_energy_scales_with_entries() {
        let m2 = EnergyModel::for_config(&CoreConfig::config2());
        let m3 = EnergyModel::for_config(&CoreConfig::config3());
        let s = typical_baseline_stats();
        assert!(m3.evaluate(&s).lq > m2.evaluate(&s).lq);
    }

    #[test]
    fn baseline_lq_share_is_plausible_and_grows_with_config() {
        let mut shares = Vec::new();
        for config in CoreConfig::all() {
            let m = EnergyModel::for_config(&config);
            let b = m.evaluate(&typical_baseline_stats());
            let share = b.lq_functionality() / b.total();
            assert!(
                (0.02..0.12).contains(&share),
                "{}: LQ share {share:.3} out of calibration band",
                config.name
            );
            shares.push(share);
        }
        assert!(
            shares[0] < shares[1] && shares[1] < shares[2],
            "share must grow: {shares:?}"
        );
    }

    #[test]
    fn dmdc_slashes_lq_functionality_energy() {
        let config = CoreConfig::config2();
        let base = EnergyModel::for_config(&config).evaluate(&typical_baseline_stats());
        let dmdc = EnergyModel::with_geometry(StructureGeometry::dmdc(&config, 16))
            .evaluate(&typical_dmdc_stats());
        let savings = 1.0 - dmdc.lq_functionality() / base.lq_functionality();
        assert!(
            savings > 0.85,
            "expected ~95% LQ-functionality savings, got {savings:.3}"
        );
    }

    #[test]
    fn yla_filtering_saves_lq_energy_proportionally() {
        let config = CoreConfig::config2();
        let base_model = EnergyModel::for_config(&config);
        let base = base_model.evaluate(&typical_baseline_stats());
        // 95% of searches filtered, tiny YLA cost added.
        let mut filtered = typical_baseline_stats();
        filtered.energy.lq_cam_searches = 6_000;
        filtered.energy.yla_reads = 120_000;
        filtered.energy.yla_writes = 250_000;
        let yla_model = EnergyModel::with_geometry(StructureGeometry::yla_filtered(&config, 8));
        let f = yla_model.evaluate(&filtered);
        let savings = 1.0 - f.lq_functionality() / base.lq_functionality();
        assert!(
            (0.20..0.95).contains(&savings),
            "filtering should save a large chunk of LQ energy, got {savings:.3}"
        );
    }

    #[test]
    fn zero_sized_structures_cost_nothing() {
        let m = EnergyModel::for_config(&CoreConfig::config2());
        let mut s = SimStats::default();
        s.energy.table_reads = 1_000; // no table in a conventional geometry
        s.energy.bloom_reads = 1_000;
        let b = m.evaluate(&s);
        assert_eq!(b.table, 0.0);
        assert_eq!(b.bloom, 0.0);
    }

    #[test]
    fn core_envelope_scales_with_machine_size() {
        let s = typical_baseline_stats();
        let c1 = EnergyModel::for_config(&CoreConfig::config1())
            .evaluate(&s)
            .core;
        let c2 = EnergyModel::for_config(&CoreConfig::config2())
            .evaluate(&s)
            .core;
        let c3 = EnergyModel::for_config(&CoreConfig::config3())
            .evaluate(&s)
            .core;
        assert!(c1 < c2 && c2 < c3);
    }

    #[test]
    fn breakdown_totals_add_up() {
        let m = EnergyModel::for_config(&CoreConfig::config2());
        let b = m.evaluate(&typical_baseline_stats());
        let sum = b.lq + b.sq + b.table + b.yla + b.bloom + b.cq + b.core;
        assert!((b.total() - sum).abs() < 1e-9);
        assert!(b.lq_functionality() <= b.total());
    }

    #[test]
    fn net_savings_shape_matches_paper_band() {
        // Same workload under baseline and DMDC with a 0.3% slowdown: the
        // net processor-wide savings should land in the paper's 3-8% band.
        for config in CoreConfig::all() {
            let base = EnergyModel::for_config(&config).evaluate(&typical_baseline_stats());
            let mut dmdc_stats = typical_dmdc_stats();
            dmdc_stats.cycles = (dmdc_stats.cycles as f64 * 1.003) as u64;
            let dmdc = EnergyModel::with_geometry(StructureGeometry::dmdc(&config, 16))
                .evaluate(&dmdc_stats);
            let net = 1.0 - dmdc.total() / base.total();
            assert!(
                (0.015..0.12).contains(&net),
                "{}: net savings {net:.3} outside plausible band",
                config.name
            );
        }
    }
}
