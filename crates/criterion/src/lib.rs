//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate provides the tiny API surface the bench
//! harness uses — [`Criterion::bench_function`] with [`Bencher::iter`] —
//! measuring wall-clock time per iteration and printing mean/min/max.
//! There is no warm-up tuning, outlier analysis, or HTML report.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments: any free argument becomes a
    /// substring filter on benchmark names (`--bench`/`--exact` style
    /// flags from `cargo bench` are ignored).
    pub fn configure_from_args(mut self) -> Criterion {
        let arg = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self.filter = arg;
        self
    }

    /// Runs one benchmark: calls `f` with a [`Bencher`], times the
    /// iterations, and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
            mean, min, max, n
        );
        self
    }

    /// Criterion's end-of-run summary; a no-op here.
    pub fn final_summary(self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        c.final_summary();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("other".into()),
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
