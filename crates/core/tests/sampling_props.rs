//! Property tests for the sampling engine's checkpoint machinery: a
//! [`Checkpoint`] must survive serialize → deserialize with every field
//! intact, and a detailed window driven from the decoded checkpoint —
//! including the warmup-then-resume two-phase protocol the sampling
//! driver uses — must reproduce the original window's stats exactly.

use dmdc_core::experiments::PolicyKind;
use dmdc_core::sampling::{Checkpoint, Warmer};
use dmdc_ooo::{CoreConfig, SimOptions, Simulator};
use dmdc_workloads::SyntheticKernel;
use proptest::prelude::*;

/// Fast-forwards a fresh emulator + warmer through `position` retired
/// instructions of `kernel_size`'s synthetic workload and captures the
/// checkpoint.
fn capture_at(kernel_size: u32, position: u64, config: &CoreConfig) -> Checkpoint {
    let workload = SyntheticKernel::new(kernel_size).branch_noise(true).build();
    let mut emu = dmdc_isa::Emulator::new(&workload.program);
    let mut warm = Warmer::new(config);
    while emu.retired() < position {
        let r = emu.step().expect("synthetic kernel must emulate");
        warm.observe(&r);
    }
    Checkpoint::capture(0, &emu, &warm)
}

/// Restores `ck` into a fresh simulator and runs it to `max_commits`
/// committed instructions, returning the exported stats and the final
/// architectural checksum.
fn window_from(
    ck: &Checkpoint,
    kernel_size: u32,
    config: &CoreConfig,
    max_commits: u64,
    two_phase: Option<u64>,
) -> (Vec<u64>, u64) {
    let workload = SyntheticKernel::new(kernel_size).branch_noise(true).build();
    let (hier, bpred, btb) = ck.warm_state(config).expect("geometry matches");
    let mut fp_regs = [0.0f64; 32];
    for (slot, &bits) in fp_regs.iter_mut().zip(&ck.fp_bits) {
        *slot = f64::from_bits(bits);
    }
    let kind = PolicyKind::DmdcGlobal;
    let mut sim = Simulator::new(&workload.program, config.clone(), kind.build(config));
    sim.restore_checkpoint(ck.pc, &ck.int_regs, &fp_regs, ck.memory(), hier, bpred, btb);
    let opts = |commits: u64| SimOptions {
        max_commits: Some(commits),
        ..SimOptions::default()
    };
    let result = match two_phase {
        // The sampling driver's protocol: a discarded warmup phase, then
        // a resume to the measured horizon.
        Some(warmup) => {
            let a = sim.run(opts(warmup)).expect("warmup phase runs");
            assert_eq!(a.stats.committed, warmup);
            sim.resume(opts(max_commits))
                .expect("measure phase resumes")
        }
        None => sim.run(opts(max_commits)).expect("window runs"),
    };
    (result.stats.export_values(), result.checksum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serialize → deserialize is the identity on every checkpoint field,
    /// and re-encoding the decoded checkpoint reproduces the same bytes.
    #[test]
    fn checkpoint_roundtrips_exactly(
        kernel_size in 1_000u32..6_000,
        frac in 1u64..8,
    ) {
        let config = CoreConfig::config2();
        let ck = capture_at(kernel_size, frac * 500, &config);
        let encoded = ck.encode();
        let decoded = Checkpoint::decode(&mut encoded.lines()).expect("decodes");
        prop_assert_eq!(decoded.window, ck.window);
        prop_assert_eq!(decoded.pc, ck.pc);
        prop_assert_eq!(decoded.retired, ck.retired);
        prop_assert_eq!(decoded.int_regs, ck.int_regs);
        prop_assert_eq!(decoded.fp_bits, ck.fp_bits);
        prop_assert_eq!(&decoded.pages, &ck.pages);
        prop_assert_eq!(&decoded.l1i, &ck.l1i);
        prop_assert_eq!(&decoded.l1d, &ck.l1d);
        prop_assert_eq!(&decoded.l2, &ck.l2);
        prop_assert_eq!(&decoded.bpred, &ck.bpred);
        prop_assert_eq!(&decoded.btb, &ck.btb);
        prop_assert_eq!(decoded.encode(), encoded);
    }

    /// A detailed window run from the decoded checkpoint — with the
    /// driver's warmup-then-resume split — reproduces, stat for stat, the
    /// same two-phase window run from the original live checkpoint. The
    /// final *architectural* checksum additionally matches a single-phase
    /// run to the same commit horizon: the phase split may cost a
    /// pipeline boundary cycle, but never changes architectural state.
    #[test]
    fn decoded_checkpoint_resumes_to_identical_window_stats(
        kernel_size in 1_000u32..6_000,
        frac in 1u64..8,
        warmup in 100u64..400,
        measure in 100u64..400,
    ) {
        let config = CoreConfig::config2();
        let ck = capture_at(kernel_size, frac * 500, &config);
        let encoded = ck.encode();
        let decoded = Checkpoint::decode(&mut encoded.lines()).expect("decodes");
        let horizon = warmup + measure;
        let (live, live_sum) = window_from(&ck, kernel_size, &config, horizon, Some(warmup));
        let (resumed, resumed_sum) =
            window_from(&decoded, kernel_size, &config, horizon, Some(warmup));
        prop_assert_eq!(resumed, live, "window stats must match");
        prop_assert_eq!(resumed_sum, live_sum, "window end state must match");
        let (_, single_sum) = window_from(&ck, kernel_size, &config, horizon, None);
        prop_assert_eq!(resumed_sum, single_sum, "architectural state is split-invariant");
    }
}
