//! Property-based tests for the paper's mechanisms: YLA safety is *sound*
//! (a store classified safe never has a prematurely issued younger
//! consumer), bloom filtering never produces false negatives, and squash
//! repair keeps both sound.

use dmdc_core::{CountingBloom, Interleave, YlaBank};
use dmdc_types::{Addr, Age};
use proptest::prelude::*;

/// A scripted event stream over a small address space.
#[derive(Debug, Clone)]
enum Event {
    /// A load issues (address, monotonic age assigned by the driver).
    Load(u64),
    /// A store resolves at the current age to this address; the driver
    /// checks the bank's verdict against ground truth.
    Store(u64),
    /// Squash everything younger than half the current age.
    Squash,
}

fn event_strategy() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(Event::Load),
            (0u64..64).prop_map(Event::Store),
            Just(Event::Squash),
        ],
        1..200,
    )
}

proptest! {
    /// Soundness: whenever the bank declares a store safe, ground truth
    /// must agree that no *surviving issued* load younger than the store
    /// touches the same quad word. (The bank may be conservative — calling
    /// safe stores unsafe — but never the reverse.)
    #[test]
    fn yla_safety_is_sound(events in event_strategy(), regs in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)]) {
        let mut bank = YlaBank::new(regs, Interleave::QuadWord);
        let mut issued: Vec<(u64, Age)> = Vec::new(); // (qw, age) ground truth
        let mut age = Age(0);
        for ev in events {
            age = age.next();
            match ev {
                Event::Load(qw) => {
                    bank.update(Addr(qw * 8), age);
                    issued.push((qw, age));
                }
                Event::Store(qw) => {
                    // The store resolves *older* than the current frontier
                    // half the time, modeling late address resolution.
                    let store_age = if age.0.is_multiple_of(2) { Age(age.0 / 2) } else { age };
                    if bank.is_safe_store(Addr(qw * 8), store_age) {
                        let violation = issued
                            .iter()
                            .any(|&(lqw, lage)| lqw == qw && lage.is_younger_than(store_age));
                        prop_assert!(
                            !violation,
                            "bank said safe but a younger load to qw {qw} had issued"
                        );
                    }
                }
                Event::Squash => {
                    let survivor = Age(age.0 / 2);
                    bank.on_squash(survivor);
                    issued.retain(|&(_, lage)| !lage.is_younger_than(survivor));
                }
            }
        }
    }

    /// The bloom filter never reports "absent" for a tracked address
    /// (false positives allowed, false negatives never).
    #[test]
    fn bloom_has_no_false_negatives(
        ops in prop::collection::vec((any::<bool>(), 0u64..256), 1..300),
        entries in prop_oneof![Just(8u32), Just(32), Just(128)],
    ) {
        let mut bf = CountingBloom::new(entries);
        let mut multiset: std::collections::HashMap<u64, u32> = Default::default();
        for (insert, qw) in ops {
            if insert {
                bf.insert(Addr(qw * 8));
                *multiset.entry(qw).or_default() += 1;
            } else if let Some(c) = multiset.get_mut(&qw) {
                if *c > 0 {
                    bf.remove(Addr(qw * 8));
                    *c -= 1;
                }
            }
            for (&tracked, &count) in &multiset {
                if count > 0 {
                    prop_assert!(
                        bf.may_contain(Addr(tracked * 8)),
                        "false negative for qw {tracked}"
                    );
                }
            }
        }
    }

    /// More YLA registers never flag more stores unsafe than fewer
    /// registers on the same event stream (refinement monotonicity).
    #[test]
    fn more_yla_registers_filter_no_less(events in event_strategy()) {
        let mut small = YlaBank::new(1, Interleave::QuadWord);
        let mut large = YlaBank::new(8, Interleave::QuadWord);
        let mut age = Age(0);
        for ev in events {
            age = age.next();
            match ev {
                Event::Load(qw) => {
                    small.update(Addr(qw * 8), age);
                    large.update(Addr(qw * 8), age);
                }
                Event::Store(qw) => {
                    let store_age = Age(age.0 / 2 + 1);
                    if small.is_safe_store(Addr(qw * 8), store_age) {
                        prop_assert!(
                            large.is_safe_store(Addr(qw * 8), store_age),
                            "an 8-bank YLA must refine the 1-bank verdict"
                        );
                    }
                }
                Event::Squash => {
                    let survivor = Age(age.0 / 2);
                    small.on_squash(survivor);
                    large.on_squash(survivor);
                }
            }
        }
    }
}
