//! Property tests driving the DMDC policy through randomized — but
//! protocol-respecting — event streams, checking its own invariants
//! directly (the simulator-level tests check end-to-end correctness; these
//! pin the policy's contract in isolation).

use dmdc_core::{DmdcConfig, DmdcPolicy};
use dmdc_ooo::{
    CheckOutcome, CommitInfo, CommitKind, CoreConfig, EnergyCounters, LoadQueue, MemDepPolicy,
    PolicyCtx, PolicyStats,
};
use dmdc_types::{AccessSize, Addr, Age, Cycle, MemSpan};
use proptest::prelude::*;

/// A protocol-respecting random scenario: loads issue at random points with
/// random quad-word addresses; stores resolve with a random (possibly
/// older) age; everything commits in age order.
#[derive(Debug, Clone)]
struct Scenario {
    /// (is_store, qw) per program-order slot.
    slots: Vec<(bool, u64)>,
    /// For loads: how many slots *later* they issue (out-of-order slack).
    issue_slack: Vec<u64>,
    safe_loads: bool,
    local: bool,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec((any::<bool>(), 0u64..32), 5..120),
        prop::collection::vec(0u64..6, 5..120),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(slots, issue_slack, safe_loads, local)| Scenario {
            slots,
            issue_slack,
            safe_loads,
            local,
        })
}

/// Drives the policy through the scenario and returns
/// (replays, windows_opened, windows_closed_by_end).
fn drive(s: &Scenario) -> (u64, u64, PolicyStats) {
    let core = CoreConfig::config2();
    let mut cfg = DmdcConfig {
        table_entries: 64,
        yla_regs: 4,
        ..DmdcConfig::global(&core)
    };
    cfg.local_windows = s.local;
    cfg.safe_loads = s.safe_loads;
    let mut p = DmdcPolicy::new(cfg);
    let mut energy = EnergyCounters::default();
    let mut stats = PolicyStats::default();
    let mut lq = LoadQueue::new(256);
    let mut cycle = Cycle(0);

    // Phase 1: issue/resolve, roughly in order with slack for loads.
    let n = s.slots.len();
    for (i, &(is_store, qw)) in s.slots.iter().enumerate() {
        cycle.tick();
        let age = Age((i as u64 + 1) * 2);
        let span = MemSpan::new(Addr(0x1000 + qw * 8), AccessSize::B8);
        let mut ctx = PolicyCtx {
            cycle,
            energy: &mut energy,
            stats: &mut stats,
        };
        if is_store {
            // A store may resolve "late": model by resolving with its own
            // age after younger loads already issued (handled naturally by
            // the interleaving below).
            let r = p.on_store_resolve(&mut ctx, age, span, &lq);
            assert!(r.replay_from.is_none(), "DMDC never replays at resolve");
        } else {
            let slack = s.issue_slack[i % s.issue_slack.len()];
            // Larger slack = issued later (here immediately; slack instead
            // randomizes the *safe* classification).
            let safe = slack == 0;
            p.on_load_issue(&mut ctx, age, span, safe, &mut lq);
        }
    }

    // Phase 2: commit everything in order; count replays. A replayed
    // instruction is refetched with a fresh younger age and must commit.
    let mut replays = 0u64;
    let mut next_age = (n as u64 + 2) * 2;
    let mut pending: Vec<(Age, bool, u64, bool)> = s
        .slots
        .iter()
        .enumerate()
        .map(|(i, &(is_store, qw))| {
            let slack = s.issue_slack[i % s.issue_slack.len()];
            (
                Age((i as u64 + 1) * 2),
                is_store,
                qw,
                !is_store && slack == 0,
            )
        })
        .collect();
    let mut idx = 0;
    let mut guard = 0;
    while idx < pending.len() {
        guard += 1;
        assert!(guard < 100_000, "policy livelocked");
        let (age, is_store, qw, safe) = pending[idx];
        cycle.tick();
        let span = MemSpan::new(Addr(0x1000 + qw * 8), AccessSize::B8);
        let info = CommitInfo {
            age,
            kind: if is_store {
                CommitKind::Store
            } else {
                CommitKind::Load
            },
            span: Some(span),
            safe_load: safe,
            value_correct: true,
            issue_cycle: Some(Cycle(1)),
        };
        let mut ctx = PolicyCtx {
            cycle,
            energy: &mut energy,
            stats: &mut stats,
        };
        match p.on_commit(&mut ctx, &info) {
            CheckOutcome::Ok => idx += 1,
            CheckOutcome::Replay => {
                assert!(!is_store, "stores never replay");
                replays += 1;
                // Refetch: new age, and now trivially safe (all older
                // stores committed) — mirrors the simulator's behavior.
                {
                    let mut ctx2 = PolicyCtx {
                        cycle,
                        energy: &mut energy,
                        stats: &mut stats,
                    };
                    p.on_squash(&mut ctx2, Age(age.0 - 1));
                }
                next_age += 2;
                pending[idx] = (Age(next_age), false, qw, true);
            }
        }
    }
    (replays, stats.checking_windows, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The commit stream always makes progress: every replayed load commits
    /// on its second attempt (safe-load or overshoot termination), so total
    /// replays are bounded by the number of loads.
    #[test]
    fn every_instruction_eventually_commits(s in scenario_strategy()) {
        let loads = s.slots.iter().filter(|&&(st, _)| !st).count() as u64;
        let (replays, _, _) = drive(&s);
        prop_assert!(replays <= loads, "{replays} replays for {loads} loads");
    }

    /// With value_correct always true, every replay is classified as false
    /// (never a true violation), and the taxonomy totals add up.
    #[test]
    fn replay_taxonomy_is_consistent(s in scenario_strategy()) {
        let (replays, _, stats) = drive(&s);
        prop_assert_eq!(stats.replays.true_violation, 0);
        prop_assert_eq!(stats.replays.false_total(), replays);
    }

    /// Window bookkeeping: single-store windows never exceed total windows,
    /// and window loads bound window safe loads.
    #[test]
    fn window_counters_are_coherent(s in scenario_strategy()) {
        let (_, windows, stats) = drive(&s);
        prop_assert!(stats.single_store_windows <= windows);
        prop_assert!(stats.window_safe_loads <= stats.window_loads);
        prop_assert!(stats.window_unsafe_stores >= windows.min(1) * (windows > 0) as u64);
    }

    /// Safe loads never replay when the optimization is on.
    #[test]
    fn safe_loads_never_replay(mut s in scenario_strategy()) {
        s.safe_loads = true;
        // Make *every* load safe.
        for slack in &mut s.issue_slack {
            *slack = 0;
        }
        let (replays, _, _) = drive(&s);
        prop_assert_eq!(replays, 0, "safe loads must bypass the check");
    }
}
