//! Property tests for the distributed [`LeaseTable`]: under ANY random
//! interleaving of claim / heartbeat / clock-advance / expire / complete
//! / fail / failed-publish, the table must
//!
//! * never lose a cell — once the drain loop takes over, every cell
//!   reaches exactly one terminal state (done, failed or poisoned);
//! * never double-publish — at most one completion is ever accepted per
//!   cell, no matter how many stale holders race;
//! * never let a non-holder act — heartbeats, completions and failures
//!   from a worker that lost its lease are rejected;
//! * poison only with cause — a poisoned cell really did lose
//!   `poison_after` distinct workers or hit the attempt bound.
//!
//! The clock is logical (milliseconds passed in by the test), so every
//! interleaving is deterministic and shrinkable.

use dmdc_core::distrib::{CellState, Claim, LeaseConfig, LeaseTable};
use proptest::prelude::*;

const WORKERS: [&str; 4] = ["w0", "w1", "w2", "w3"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary op soup against the table, then a drain: no cell lost,
    /// no double publish, terminal states stay terminal.
    #[test]
    fn no_interleaving_loses_a_cell_or_double_publishes(
        cells in 1usize..6,
        poison_after in 1u32..4,
        ops in prop::collection::vec((0u8..6, 0u8..8, 0u8..4, 0u16..400), 1..300),
    ) {
        let cfg = LeaseConfig {
            ttl_ms: 100,
            poison_after,
            max_attempts: 6,
        };
        let mut t = LeaseTable::new(cells, cfg);
        let mut now: u64 = 0;
        // What each worker believes it holds, from the claims the table
        // actually granted. A worker may hold several cells here if the
        // table re-issued one it lost — exactly the stale-holder race.
        let mut held: Vec<Vec<usize>> = vec![Vec::new(); WORKERS.len()];
        let mut accepted_total = 0u32;

        for &(op, arg, who, dt) in &ops {
            let worker = WORKERS[who as usize];
            match op {
                // Claim: a granted lease must be on a cell that was
                // claimable, and the same cell must not be leased twice
                // concurrently (nobody else believes they hold it and
                // still does per the table).
                0 | 1 => match t.claim(worker, now) {
                    Claim::Lease { index, ttl_ms, .. } => {
                        prop_assert_eq!(ttl_ms, 100);
                        prop_assert!(index < cells);
                        prop_assert!(
                            matches!(t.state(index), CellState::Leased { .. }),
                            "granted lease must leave the cell leased"
                        );
                        held[who as usize].push(index);
                    }
                    Claim::Wait { retry_ms } => prop_assert!(retry_ms > 0),
                    Claim::Done => prop_assert!(t.all_terminal()),
                },
                // Heartbeat something we believe we hold; a rejection
                // means the table took it back, so stop believing.
                2 => {
                    if let Some(&index) = held[who as usize].last() {
                        if !t.heartbeat(worker, index, now) {
                            held[who as usize].pop();
                        }
                    }
                }
                // Complete: count every accepted completion.
                3 => {
                    if let Some(index) = held[who as usize].pop() {
                        if t.complete(worker, index) {
                            accepted_total += 1;
                            prop_assert_eq!(t.completions(index), 1,
                                "cell accepted a second completion");
                            prop_assert_eq!(t.state(index), &CellState::Done);
                        }
                    }
                }
                // Worker-reported structured failure.
                4 => {
                    if let Some(index) = held[who as usize].pop() {
                        if t.record_failure(worker, index) {
                            prop_assert_eq!(t.state(index), &CellState::Failed);
                        }
                    }
                }
                // A published result that failed verification.
                _ => {
                    if let Some(index) = held[who as usize].pop() {
                        let _ = t.fail_publish(worker, index, now);
                    }
                }
            }
            // Advance the clock and reclaim whatever expired; a
            // poisoned reclaim must have cause.
            now += dt as u64;
            for r in t.expire(now) {
                prop_assert!(r.index < cells);
                if r.poisoned {
                    let lost = t.lost_workers(r.index).len() as u32;
                    prop_assert!(
                        lost >= poison_after || r.attempt >= 6,
                        "poisoned with {lost} lost workers, attempt {}",
                        r.attempt
                    );
                }
                // The expired holder no longer holds it.
                for h in held.iter_mut() {
                    h.retain(|&i| i != r.index);
                }
            }
        }

        // Drain: one diligent worker claims, completes and heartbeats
        // until the table reports done. Bounded retries guarantee this
        // terminates; the bound below is generous slack over
        // cells * max_attempts.
        let mut steps = 0;
        loop {
            match t.claim("drain", now) {
                Claim::Done => break,
                Claim::Lease { index, .. } => {
                    prop_assert!(t.complete("drain", index));
                }
                Claim::Wait { retry_ms } => now += retry_ms.max(1),
            }
            steps += 1;
            prop_assert!(steps < 10_000, "drain failed to terminate");
        }

        // Every cell is terminal — none lost — and the accounting holds.
        prop_assert!(t.all_terminal());
        prop_assert_eq!(t.outstanding(), 0);
        let mut done = 0u32;
        for i in 0..cells {
            match t.state(i) {
                CellState::Done => {
                    done += 1;
                    prop_assert_eq!(t.completions(i), 1,
                        "a done cell has exactly one accepted completion");
                }
                CellState::Failed | CellState::Poisoned => {
                    prop_assert_eq!(t.completions(i), 0,
                        "a failed/poisoned cell never accepted a completion");
                }
                other => prop_assert!(false, "non-terminal state after drain: {other:?}"),
            }
            if let CellState::Poisoned = t.state(i) {
                prop_assert!(
                    t.lost_workers(i).len() as u32 >= poison_after
                        || t.completions(i) == 0,
                    "poison without cause"
                );
            }
        }
        // Accepted completions during the op soup + the drain's equal
        // the number of done cells: nothing double-counted.
        let drained: u32 = (0..cells).map(|i| t.completions(i)).sum();
        prop_assert_eq!(drained, done);
        prop_assert!(accepted_total <= done,
            "more accepted completions than done cells");
    }

    /// Stale holders can do nothing: once a lease expires, every action
    /// from the old holder is rejected and the cell still terminates.
    #[test]
    fn expired_holders_are_powerless(ttl in 50u64..500, n in 1usize..5) {
        let cfg = LeaseConfig { ttl_ms: ttl, poison_after: 99, max_attempts: 99 };
        let mut t = LeaseTable::new(n, cfg);
        for _ in 0..n {
            let Claim::Lease { index, .. } = t.claim("stale", 0) else {
                panic!("claimable at t=0");
            };
            // Expire it, then the old holder tries everything.
            let reclaims = t.expire(ttl);
            prop_assert!(reclaims.iter().any(|r| r.index == index));
            prop_assert!(!t.heartbeat("stale", index, ttl + 1));
            prop_assert!(!t.complete("stale", index));
            prop_assert!(!t.record_failure("stale", index));
            prop_assert!(!t.fail_publish("stale", index, ttl + 1));
            prop_assert_eq!(t.completions(index), 0);
        }
        // A live worker still finishes every cell.
        let mut now = ttl * 2;
        loop {
            match t.claim("live", now) {
                Claim::Done => break,
                Claim::Lease { index, .. } => {
                    prop_assert!(t.complete("live", index));
                }
                Claim::Wait { retry_ms } => now += retry_ms.max(1),
            }
        }
        for i in 0..n {
            prop_assert_eq!(t.state(i), &CellState::Done);
            prop_assert_eq!(t.completions(i), 1);
        }
    }
}
