//! Property tests for the service's priority [`JobQueue`]: under random
//! interleavings of push/pop/cancel, the queue must never lose,
//! duplicate or reorder work — every pushed item leaves the queue
//! exactly once (popped, cancelled, or drained at the end), pops always
//! yield the highest outstanding priority, and items of equal priority
//! leave in FIFO order.
//!
//! The reference model is the obvious quadratic one: a flat list of
//! `(priority, submission index, ticket, value)` scanned for max
//! priority / min submission index on every pop.

use dmdc_core::queue::JobQueue;
use proptest::prelude::*;

/// One pending item in the reference model.
#[derive(Debug, Clone, PartialEq)]
struct ModelItem {
    priority: u8,
    seq: usize,
    ticket: u64,
    value: u32,
}

/// What the model says the next pop must return.
fn model_pop(pending: &mut Vec<ModelItem>) -> Option<ModelItem> {
    let best = pending
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.priority
                .cmp(&b.priority)
                // Lower submission index wins within a priority: FIFO.
                .then(b.seq.cmp(&a.seq))
        })
        .map(|(i, _)| i)?;
    Some(pending.remove(best))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random push/pop/cancel interleavings agree with the model at
    /// every step, and the final accounting balances exactly.
    #[test]
    fn queue_agrees_with_model_under_random_ops(
        ops in prop::collection::vec((0u8..4, 0u8..8), 1..200),
    ) {
        let mut queue: JobQueue<u32> = JobQueue::new();
        let mut pending: Vec<ModelItem> = Vec::new();
        let mut last_ticket: Option<u64> = None;
        let mut pushed = 0u32;
        let mut left = 0u32; // popped + cancelled

        for (i, &(kind, arg)) in ops.iter().enumerate() {
            match kind {
                // Two opcodes for push biases the mix toward non-empty
                // queues, where pop/cancel ordering is actually tested.
                0 | 1 => {
                    let priority = arg * 36; // spread over 0..=252 with collisions
                    let value = i as u32;
                    let ticket = queue.push(priority, value);
                    if let Some(prev) = last_ticket {
                        prop_assert!(ticket > prev, "tickets must be strictly increasing");
                    }
                    last_ticket = Some(ticket);
                    pending.push(ModelItem { priority, seq: i, ticket, value });
                    pushed += 1;
                }
                2 => {
                    let got = queue.pop();
                    let want = model_pop(&mut pending);
                    match (got, want) {
                        (None, None) => {}
                        (Some((ticket, value)), Some(model)) => {
                            prop_assert_eq!(ticket, model.ticket, "pop ticket");
                            prop_assert_eq!(value, model.value, "pop order");
                            left += 1;
                        }
                        (got, want) => {
                            prop_assert!(false, "pop mismatch: queue {got:?}, model {want:?}");
                        }
                    }
                }
                _ => {
                    if pending.is_empty() {
                        // Cancelling a ticket that already left must be a no-op.
                        if let Some(t) = last_ticket {
                            prop_assert_eq!(queue.cancel(t), None);
                        }
                    } else {
                        let victim = pending.remove(arg as usize % pending.len());
                        prop_assert_eq!(
                            queue.cancel(victim.ticket),
                            Some(victim.value),
                            "cancel returns the pending item"
                        );
                        left += 1;
                    }
                }
            }
            prop_assert_eq!(queue.len(), pending.len(), "length tracks the model");
        }

        // iter() previews exactly the model's remaining pop order.
        let preview: Vec<(u64, u32)> = queue.iter().map(|(t, v)| (t, *v)).collect();

        // Drain: everything still pending leaves in model order, once.
        let mut drained = Vec::new();
        while let Some((ticket, value)) = queue.pop() {
            let model = model_pop(&mut pending).expect("queue has more items than the model");
            prop_assert_eq!(ticket, model.ticket, "drain ticket");
            prop_assert_eq!(value, model.value, "drain order");
            drained.push((ticket, value));
            left += 1;
        }
        prop_assert_eq!(preview, drained, "iter() matches pop order");
        prop_assert!(pending.is_empty(), "queue lost items the model still holds");
        prop_assert!(queue.is_empty());
        prop_assert_eq!(pushed, left, "every push leaves the queue exactly once");
    }

    /// Pure FIFO case: with one priority the queue is exactly a FIFO of
    /// the submission order.
    #[test]
    fn single_priority_is_fifo(n in 1usize..64, priority in 0u8..255) {
        let mut queue: JobQueue<usize> = JobQueue::new();
        for v in 0..n {
            queue.push(priority, v);
        }
        let order: Vec<usize> = std::iter::from_fn(|| queue.pop().map(|(_, v)| v)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }
}
