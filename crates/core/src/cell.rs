//! The unified per-cell metrics record every experiment reducer consumes.
//!
//! One simulation cell — a `(workload, config, policy, options)` run —
//! produces exactly one [`CellResult`]: the workload's identity plus the
//! full [`SimStats`] (cycles, commits, the replay-oracle breakdown, the
//! LQ/energy access counters and the checking-window statistics). Every
//! table and figure reducer derives its rows from slices of these records;
//! no experiment carries private per-run state anymore.
//!
//! A `CellResult` also round-trips through a compact, versioned text
//! record ([`CellResult::to_record`] / [`CellResult::from_record`]), which
//! is what the content-addressed cell cache persists under
//! `target/dmdc-cache/`.

use dmdc_ooo::SimStats;
use dmdc_workloads::Group;

/// Magic + version line of the persisted record format. The version is
/// tied to [`SimStats::EXPORT_LEN`] at parse time, so a record written by
/// a build with a different stats schema is rejected (a cache miss, not
/// an error).
const RECORD_MAGIC: &str = "dmdc-cell v1";

/// One verified simulation cell: workload identity plus full metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Workload name ("histo", "saxpy", ...).
    pub workload: String,
    /// Suite membership.
    pub group: Group,
    /// Full statistics of the verified run.
    pub stats: SimStats,
}

impl CellResult {
    /// Serializes to the versioned text record the cell cache stores.
    pub fn to_record(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{RECORD_MAGIC} {}", SimStats::EXPORT_LEN);
        let _ = writeln!(out, "workload {}", self.workload);
        let _ = writeln!(out, "group {}", self.group);
        let values = self.stats.export_values();
        let mut line = String::with_capacity(values.len() * 8);
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{v}");
        }
        out.push_str(&line);
        out.push('\n');
        out
    }

    /// Parses a record produced by [`CellResult::to_record`]. Returns
    /// `None` on any mismatch — wrong magic, wrong stats schema length,
    /// malformed counters — so stale or foreign files degrade to cache
    /// misses.
    pub fn from_record(record: &str) -> Option<CellResult> {
        let mut lines = record.lines();
        let header = lines.next()?;
        let len: usize = header.strip_prefix(RECORD_MAGIC)?.trim().parse().ok()?;
        if len != SimStats::EXPORT_LEN {
            return None;
        }
        let workload = lines.next()?.strip_prefix("workload ")?.to_string();
        let group = match lines.next()?.strip_prefix("group ")? {
            "INT" => Group::Int,
            "FP" => Group::Fp,
            _ => return None,
        };
        let values: Vec<u64> = lines
            .next()?
            .split(' ')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .ok()?;
        if lines.next().is_some() {
            return None;
        }
        Some(CellResult {
            workload,
            group,
            stats: SimStats::from_export_values(&values)?,
        })
    }
}

/// Why one cell attempt (or the cell as a whole) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The simulation (or a policy) panicked.
    Panic,
    /// The cell exceeded the wall-clock watchdog.
    Timeout,
    /// The simulator returned an error (deadlock, cycle limit, fetch
    /// fault, ...).
    SimError,
    /// The workload did not halt under the reference emulator, so no
    /// oracle checksum exists to verify against.
    OracleMustHalt,
    /// The simulated architectural state diverged from the emulator.
    StateDivergence,
    /// The invariant auditor reported a violation.
    Audit,
}

impl FailureKind {
    /// Stable label used in reports and test assertions.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::SimError => "sim-error",
            FailureKind::OracleMustHalt => "oracle-must-halt",
            FailureKind::StateDivergence => "state-divergence",
            FailureKind::Audit => "audit-violation",
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One failed cell attempt: the class plus human-readable specifics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Failure class.
    pub kind: FailureKind,
    /// Panic message, simulator error, checksum pair, audit report, ...
    pub detail: String,
}

impl CellError {
    /// Builds an error.
    pub fn new(kind: FailureKind, detail: impl Into<String>) -> CellError {
        CellError {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// A cell that exhausted its retries: the quarantine record surfacing in
/// the [`Report`](crate::report::Report) instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Workload name of the failed cell.
    pub workload: String,
    /// The cell's spec description ([`RunSpec::desc`](crate::runner::RunSpec::desc)).
    pub spec: String,
    /// Failure class of the last attempt.
    pub kind: FailureKind,
    /// Specifics of the last attempt.
    pub detail: String,
    /// Total attempts made (1 = no retries).
    pub attempts: u32,
}

impl CellFailure {
    /// The one-line summary the failure table and JSON emitter show: the
    /// first line of the detail, truncated for tabular display.
    pub fn summary(&self) -> String {
        let first = self.detail.lines().next().unwrap_or("");
        if first.chars().count() > 120 {
            let cut: String = first.chars().take(117).collect();
            format!("{cut}...")
        } else {
            first.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellResult {
        let values: Vec<u64> = (10..10 + SimStats::EXPORT_LEN as u64).collect();
        CellResult {
            workload: "histo".to_string(),
            group: Group::Int,
            stats: SimStats::from_export_values(&values).unwrap(),
        }
    }

    #[test]
    fn record_roundtrip_preserves_everything() {
        let cell = sample();
        let back = CellResult::from_record(&cell.to_record()).expect("parses");
        assert_eq!(back, cell);
    }

    #[test]
    fn foreign_or_corrupt_records_are_rejected() {
        let cell = sample();
        let record = cell.to_record();
        assert!(CellResult::from_record("").is_none());
        assert!(CellResult::from_record("dmdc-cell v0 3\n").is_none());
        assert!(CellResult::from_record(&record.replace("v1", "v9")).is_none());
        assert!(CellResult::from_record(&record.replace("INT", "BOGUS")).is_none());
        let truncated = record.rsplit_once(' ').unwrap().0;
        assert!(CellResult::from_record(truncated).is_none());
        let trailing = format!("{record}extra\n");
        assert!(CellResult::from_record(&trailing).is_none());
    }
}
