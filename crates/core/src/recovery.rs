//! Process-wide recovery ledger: every fault the engine survives — a
//! retried panic, a quarantined cache entry, a dropped journal record, a
//! lost worker thread — is recorded here as a structured
//! [`RecoveryEvent`] and tallied in the [`RecoveryCounters`].
//!
//! The ledger is the observability half of the fault-tolerant execution
//! layer: `--profile` prints the counters, the fault-injection tests
//! assert that every injected fault shows up as exactly the expected
//! event, and CI's kill/resume job checks the resume counters. Recording
//! never fails and never blocks progress; when the ledger is full (a
//! pathological fault storm) further events are counted but not stored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bound on retained events — counters keep counting past it.
const MAX_EVENTS: usize = 4096;

/// What kind of fault was survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A cell attempt panicked, timed out or errored and was retried.
    CellRetry,
    /// A cell exhausted its retries and was quarantined as a
    /// [`CellFailure`](crate::cell::CellFailure) instead of aborting the
    /// process.
    CellQuarantined,
    /// A corrupt, truncated or stale cache entry was quarantined to
    /// `quarantine/` and the cell regenerated.
    CacheQuarantined,
    /// A torn or corrupt journal entry was dropped on resume; the cell
    /// re-runs.
    JournalDropped,
    /// A worker thread died; its remaining cells ran serially on the
    /// coordinating thread.
    WorkerLost,
    /// A cell was served from a resumed run's journal instead of being
    /// re-simulated.
    CellResumed,
    /// A distributed worker's lease expired (missed heartbeats, death,
    /// hang) and the cell was re-issued to another worker.
    LeaseReclaimed,
    /// A cell was poisoned — enough distinct workers died holding its
    /// lease — and quarantined instead of wedging the run.
    CellPoisoned,
}

impl RecoveryKind {
    /// Stable label used in rendered reports and test assertions.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryKind::CellRetry => "cell-retry",
            RecoveryKind::CellQuarantined => "cell-quarantined",
            RecoveryKind::CacheQuarantined => "cache-quarantined",
            RecoveryKind::JournalDropped => "journal-dropped",
            RecoveryKind::WorkerLost => "worker-lost",
            RecoveryKind::CellResumed => "cell-resumed",
            RecoveryKind::LeaseReclaimed => "lease-reclaimed",
            RecoveryKind::CellPoisoned => "cell-poisoned",
        }
    }
}

/// One survived fault: what happened, to what, and any specifics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Fault class.
    pub kind: RecoveryKind,
    /// What it happened to (workload name, cache file, journal entry).
    pub subject: String,
    /// Human-readable specifics (panic message, checksum mismatch, ...).
    pub detail: String,
}

static EVENTS: Mutex<Vec<RecoveryEvent>> = Mutex::new(Vec::new());

static RETRIES: AtomicU64 = AtomicU64::new(0);
static CELL_FAILURES: AtomicU64 = AtomicU64::new(0);
static CACHE_QUARANTINED: AtomicU64 = AtomicU64::new(0);
static JOURNAL_DROPPED: AtomicU64 = AtomicU64::new(0);
static WORKERS_LOST: AtomicU64 = AtomicU64::new(0);
static CELLS_RESUMED: AtomicU64 = AtomicU64::new(0);
static LEASES_RECLAIMED: AtomicU64 = AtomicU64::new(0);
static CELLS_POISONED: AtomicU64 = AtomicU64::new(0);

/// Totals per fault class since the last [`take_events`]-independent
/// [`reset`]. Snapshot via [`counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Cell attempts retried after a panic, timeout or error.
    pub retries: u64,
    /// Cells quarantined as structured failures after exhausting retries.
    pub cell_failures: u64,
    /// Cache entries quarantined for failing integrity checks.
    pub cache_quarantined: u64,
    /// Journal entries dropped as torn/corrupt on resume.
    pub journal_dropped: u64,
    /// Worker threads lost (work continued serially).
    pub workers_lost: u64,
    /// Cells replayed from a resumed run's journal.
    pub cells_resumed: u64,
    /// Distributed leases that expired and were re-issued.
    pub leases_reclaimed: u64,
    /// Cells poisoned after enough distinct workers died holding them.
    pub cells_poisoned: u64,
}

impl RecoveryCounters {
    /// Whether any fault was survived at all.
    pub fn any(&self) -> bool {
        *self != RecoveryCounters::default()
    }
}

/// Records one survived fault.
pub fn record(kind: RecoveryKind, subject: impl Into<String>, detail: impl Into<String>) {
    match kind {
        RecoveryKind::CellRetry => &RETRIES,
        RecoveryKind::CellQuarantined => &CELL_FAILURES,
        RecoveryKind::CacheQuarantined => &CACHE_QUARANTINED,
        RecoveryKind::JournalDropped => &JOURNAL_DROPPED,
        RecoveryKind::WorkerLost => &WORKERS_LOST,
        RecoveryKind::CellResumed => &CELLS_RESUMED,
        RecoveryKind::LeaseReclaimed => &LEASES_RECLAIMED,
        RecoveryKind::CellPoisoned => &CELLS_POISONED,
    }
    .fetch_add(1, Ordering::Relaxed);
    let mut events = EVENTS.lock().expect("recovery ledger poisoned");
    if events.len() < MAX_EVENTS {
        events.push(RecoveryEvent {
            kind,
            subject: subject.into(),
            detail: detail.into(),
        });
    }
}

/// Snapshot of the per-class totals.
pub fn counters() -> RecoveryCounters {
    RecoveryCounters {
        retries: RETRIES.load(Ordering::Relaxed),
        cell_failures: CELL_FAILURES.load(Ordering::Relaxed),
        cache_quarantined: CACHE_QUARANTINED.load(Ordering::Relaxed),
        journal_dropped: JOURNAL_DROPPED.load(Ordering::Relaxed),
        workers_lost: WORKERS_LOST.load(Ordering::Relaxed),
        cells_resumed: CELLS_RESUMED.load(Ordering::Relaxed),
        leases_reclaimed: LEASES_RECLAIMED.load(Ordering::Relaxed),
        cells_poisoned: CELLS_POISONED.load(Ordering::Relaxed),
    }
}

/// Drains the retained events (counters are left untouched).
pub fn take_events() -> Vec<RecoveryEvent> {
    std::mem::take(&mut *EVENTS.lock().expect("recovery ledger poisoned"))
}

/// Clears events and counters (tests isolate themselves with this).
pub fn reset() {
    take_events();
    for c in [
        &RETRIES,
        &CELL_FAILURES,
        &CACHE_QUARANTINED,
        &JOURNAL_DROPPED,
        &WORKERS_LOST,
        &CELLS_RESUMED,
        &LEASES_RECLAIMED,
        &CELLS_POISONED,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Renders the counters as the `--profile` recovery line.
pub fn render(c: &RecoveryCounters) -> String {
    format!(
        "[profile] recovery: {} retries, {} cell failures, {} cache quarantined, {} journal dropped, {} workers lost, {} cells resumed, {} leases reclaimed, {} cells poisoned",
        c.retries,
        c.cell_failures,
        c.cache_quarantined,
        c.journal_dropped,
        c.workers_lost,
        c.cells_resumed,
        c.leases_reclaimed,
        c.cells_poisoned,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_tallies_and_drains() {
        reset();
        record(RecoveryKind::CellRetry, "histo", "injected panic");
        record(RecoveryKind::CacheQuarantined, "deadbeef.cell", "checksum");
        let c = counters();
        assert_eq!(c.retries, 1);
        assert_eq!(c.cache_quarantined, 1);
        assert!(c.any());
        let events = take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind.label(), "cell-retry");
        assert!(take_events().is_empty(), "drained");
        reset();
        assert!(!counters().any());
    }
}
