//! Differential torture harness: seeded random kernels, every policy
//! under the invariant auditor, and delta-debugging shrink of failures.
//!
//! The fuzzer generates [`FuzzKernel`]s — aliasing-heavy load/store mixes
//! with mixed widths, late-resolving store addresses and unpredictable
//! branches — and runs each under the requested policies with
//! [`SimOptions::audit`] on. A case *fails* when the auditor reports a
//! violation, the simulation panics, or the final architectural checksum
//! diverges from the in-order emulator. Failures are shrunk (op-chunk
//! removal, iteration reduction, operand simplification) to a minimal
//! kernel that still produces the *same* violation kind, and written as a
//! self-contained text [`Repro`] that `dmdc fuzz --replay` re-executes
//! exactly.
//!
//! Real policies are expected to survive any budget; the [`Sabotage`]
//! hook plants bugs (suppressed replay verdicts, stores forced safe) so
//! the detect → shrink → replay loop itself stays tested.
//!
//! With [`FuzzOptions::threads`] > 1 the harness switches to multi-core
//! torture: each case is `threads` independently generated kernels racing
//! on the same fuzz data region under `run_multicore` with the coherence
//! auditor on. Racy interleavings make the single-core emulator oracle
//! meaningless there, so the failure signal becomes: panics, per-core
//! audit violations, coherence-protocol violations (SWMR / transition
//! legality / INV-bit sync), and run-to-run divergence of a nominally
//! deterministic simulation. The shrinker reduces across every thread's
//! instruction stream in turn, and repro files gain `threads` /
//! `thread N` sections while staying backward compatible.

use std::fmt::Write as _;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use dmdc_isa::{Emulator, Program};
use dmdc_ooo::{
    run_multicore, AuditKind, CheckOutcome, CommitInfo, CoreConfig, LoadQueue, MemDepPolicy,
    MultiCoreOptions, MultiCoreResult, PolicyCtx, SimOptions, Simulator, StoreResolution,
};
use dmdc_types::{Addr, Age, MemSpan};
use dmdc_workloads::{FuzzKernel, FuzzOp};

use crate::experiments::PolicyKind;

/// A deliberately planted policy bug, for exercising the fuzzer's
/// detect → shrink → replay loop (the auditor must catch every one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Flip the policy's commit-time `Replay` verdicts to `Ok`, starting
    /// with the `from`-th one (0 = all). Models a checking table that
    /// drops entries: commit-time checkers (DMDC, checking queue) then
    /// commit stale loads — invariant 6, `missed-replay`. Policies that
    /// replay at store-resolve time (baseline, YLA) never reach a commit
    /// `Replay` verdict and are unaffected.
    SuppressReplays {
        /// Index of the first suppressed verdict.
        from: u32,
    },
    /// Classify every resolving store as *safe* and discard any replay it
    /// would have demanded. Breaks invariant 3 (`safe-store-younger-load`)
    /// and, downstream, invariant 6.
    ForceSafeStores,
}

impl Sabotage {
    /// Repro-file token; parsed back by [`Sabotage::parse_token`].
    pub fn token(&self) -> String {
        match *self {
            Sabotage::SuppressReplays { from } => format!("suppress-replays from={from}"),
            Sabotage::ForceSafeStores => "force-safe-stores".to_string(),
        }
    }

    /// Parses a [`Sabotage::token`].
    pub fn parse_token(s: &str) -> Result<Sabotage, String> {
        let mut words = s.split_whitespace();
        match words.next() {
            Some("suppress-replays") => {
                let from = words
                    .next()
                    .and_then(|w| w.strip_prefix("from="))
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad suppress-replays spec `{s}`"))?;
                Ok(Sabotage::SuppressReplays { from })
            }
            Some("force-safe-stores") => Ok(Sabotage::ForceSafeStores),
            _ => Err(format!("unknown sabotage `{s}`")),
        }
    }
}

/// Wraps a real policy and injects one [`Sabotage`]. Everything else is
/// delegated verbatim, including `audit_self` — the planted bug corrupts
/// behaviour, not the inner policy's bookkeeping.
struct SabotagedPolicy {
    inner: Box<dyn MemDepPolicy>,
    mode: Sabotage,
    replays_seen: u32,
}

impl SabotagedPolicy {
    fn new(inner: Box<dyn MemDepPolicy>, mode: Sabotage) -> SabotagedPolicy {
        SabotagedPolicy {
            inner,
            mode,
            replays_seen: 0,
        }
    }
}

impl MemDepPolicy for SabotagedPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn needs_associative_lq(&self) -> bool {
        self.inner.needs_associative_lq()
    }

    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        lq: &mut LoadQueue,
    ) -> Option<Age> {
        self.inner.on_load_issue(ctx, age, span, safe, lq)
    }

    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        lq: &LoadQueue,
    ) -> StoreResolution {
        let real = self.inner.on_store_resolve(ctx, age, span, lq);
        match self.mode {
            Sabotage::ForceSafeStores => StoreResolution {
                safe: true,
                replay_from: None,
            },
            Sabotage::SuppressReplays { .. } => real,
        }
    }

    fn on_commit(&mut self, ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome {
        let real = self.inner.on_commit(ctx, info);
        if let (CheckOutcome::Replay, Sabotage::SuppressReplays { from }) = (real, self.mode) {
            let idx = self.replays_seen;
            self.replays_seen += 1;
            if idx >= from {
                return CheckOutcome::Ok;
            }
        }
        real
    }

    fn on_squash(&mut self, ctx: &mut PolicyCtx<'_>, youngest_surviving: Age) {
        self.inner.on_squash(ctx, youngest_surviving);
    }

    fn on_invalidation(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        line_addr: Addr,
        line_bytes: u64,
        lq: &mut LoadQueue,
    ) -> Option<Age> {
        self.inner.on_invalidation(ctx, line_addr, line_bytes, lq)
    }

    fn on_cycle(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.inner.on_cycle(ctx);
    }

    fn has_cycle_hook(&self) -> bool {
        self.inner.has_cycle_hook()
    }

    fn audit_self(&self, lq: &LoadQueue) -> Option<String> {
        self.inner.audit_self(lq)
    }

    fn on_idle_cycles(&mut self, ctx: &mut PolicyCtx<'_>, n: u64) {
        self.inner.on_idle_cycles(ctx, n);
    }
}

/// How one fuzz case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Failure class: an [`AuditKind`] label, or the synthetic classes
    /// `panic` / `state-divergence`. Shrinking preserves this label.
    pub kind: String,
    /// Human-readable specifics (the audit report, panic message, or
    /// checksum pair).
    pub detail: String,
}

/// Fuzzer parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Stream seed; `--seed N` is fully deterministic.
    pub seed: u64,
    /// Kernels to generate (each runs once per policy).
    pub budget: u64,
    /// Policies to torture.
    pub policies: Vec<PolicyKind>,
    /// Machine configuration token: "1", "2" or "3".
    pub config: String,
    /// Planted bug, if any.
    pub sabotage: Option<Sabotage>,
    /// Where `<seed>.repro` files land.
    pub out_dir: PathBuf,
    /// Cores per case. 1 (the default) is the classic single-core loop
    /// with the emulator oracle; 2+ races that many kernels under
    /// `run_multicore` (policies must support coherence — see
    /// [`FuzzOptions::mt_policies`]).
    pub threads: usize,
}

impl FuzzOptions {
    /// Defaults: 100 kernels over the policies with distinct enforcement
    /// paths (resolve-time CAM, YLA filter, commit-time table global and
    /// local, associative checking queue) on config 2, no sabotage.
    pub fn new(seed: u64) -> FuzzOptions {
        FuzzOptions {
            seed,
            budget: 100,
            policies: vec![
                PolicyKind::Baseline,
                PolicyKind::Yla {
                    regs: 4,
                    line_interleaved: false,
                },
                PolicyKind::DmdcGlobal,
                PolicyKind::DmdcLocal,
                PolicyKind::CheckingQueue { entries: 16 },
            ],
            config: "2".to_string(),
            sabotage: None,
            out_dir: PathBuf::from("target/dmdc-fuzz"),
            threads: 1,
        }
    }

    /// The policies multi-threaded torture runs by default: the two that
    /// are built with coherence wired up. (Policies without coherence
    /// support would flag the delivered invalidations as audit failures,
    /// drowning the signal.)
    pub fn mt_policies() -> Vec<PolicyKind> {
        vec![PolicyKind::BaselineCoherent, PolicyKind::DmdcCoherent]
    }
}

/// Result of a [`fuzz`] run.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Policy × kernel cases executed (excluding shrink probes).
    pub cases: u64,
    /// The first failure, already shrunk, or `None` if the budget ran dry.
    pub failure: Option<Repro>,
    /// Where the repro was written, when there was one and `out_dir` was
    /// writable.
    pub repro_path: Option<PathBuf>,
}

fn config_from_token(token: &str) -> Result<CoreConfig, String> {
    match token {
        "1" | "config1" => Ok(CoreConfig::config1()),
        "2" | "config2" => Ok(CoreConfig::config2()),
        "3" | "config3" => Ok(CoreConfig::config3()),
        other => Err(format!("unknown config `{other}` (expected 1, 2 or 3)")),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs one kernel under one (possibly sabotaged) policy with the auditor
/// on, returning how it failed — or `None` when the case is clean.
fn run_case(
    kernel: &FuzzKernel,
    policy_kind: &PolicyKind,
    config: &CoreConfig,
    sabotage: Option<Sabotage>,
) -> Option<FuzzFailure> {
    // Building can itself panic on a degenerate kernel (e.g. one hand
    // edited into a corrupt repro file); that must come back as a failure
    // record, not take down the process.
    let workload = match panic::catch_unwind(AssertUnwindSafe(|| kernel.build())) {
        Ok(workload) => workload,
        Err(payload) => {
            return Some(FuzzFailure {
                kind: AuditKind::Panic.label().to_string(),
                detail: format!("kernel does not build: {}", panic_message(payload)),
            });
        }
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let real = policy_kind.build(config);
        let policy: Box<dyn MemDepPolicy> = match sabotage {
            Some(mode) => Box::new(SabotagedPolicy::new(real, mode)),
            None => real,
        };
        let mut sim = Simulator::new(&workload.program, config.clone(), policy);
        sim.run(SimOptions {
            audit: true,
            ..SimOptions::default()
        })
    }));
    let result = match outcome {
        Err(payload) => {
            return Some(FuzzFailure {
                kind: AuditKind::Panic.label().to_string(),
                detail: panic_message(payload),
            });
        }
        Ok(Err(e)) => {
            return Some(FuzzFailure {
                kind: AuditKind::Panic.label().to_string(),
                detail: format!("simulation error: {e}"),
            });
        }
        Ok(Ok(result)) => result,
    };
    if let Some(audit) = &result.audit {
        if !audit.is_clean() {
            let kind = audit.violations.first().map_or_else(
                || AuditKind::Panic.label().to_string(),
                |v| v.kind.label().to_string(),
            );
            return Some(FuzzFailure {
                kind,
                detail: audit.render(),
            });
        }
    }
    if result.halted {
        let mut emu = Emulator::new(&workload.program);
        if emu.run(u64::MAX).is_err() {
            return Some(FuzzFailure {
                kind: "state-divergence".to_string(),
                detail: "kernel does not halt under the emulator".to_string(),
            });
        }
        let expected = emu.state_checksum();
        if expected != result.checksum {
            return Some(FuzzFailure {
                kind: "state-divergence".to_string(),
                detail: format!(
                    "architectural checksum {got:#x}, emulator {expected:#x}",
                    got = result.checksum
                ),
            });
        }
    }
    None
}

/// Everything that must be bit-identical between two runs of the same
/// multi-core case: driver cycles, the shared-memory checksum, and each
/// core's architectural checksum.
fn mt_digest(r: &MultiCoreResult) -> (u64, u64, Vec<u64>) {
    (
        r.cycles,
        r.mem_checksum,
        r.cores.iter().map(|c| c.result.checksum).collect(),
    )
}

/// Runs one multi-threaded case — `kernels[i]` on core `i`, all racing on
/// the shared fuzz data region — under one (possibly sabotaged) policy
/// with the per-core auditors *and* the coherence auditor on.
///
/// Racy interleavings put the final state outside the single-core
/// emulator's reach, so failure here means: a panic or driver error, a
/// coherence-protocol violation, any core's audit report, or two
/// identical runs not being bit-identical.
fn run_case_mt(
    kernels: &[FuzzKernel],
    policy_kind: &PolicyKind,
    config: &CoreConfig,
    sabotage: Option<Sabotage>,
) -> Option<FuzzFailure> {
    let mut programs: Vec<Program> = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        match panic::catch_unwind(AssertUnwindSafe(|| kernel.build())) {
            Ok(workload) => programs.push(workload.program),
            Err(payload) => {
                return Some(FuzzFailure {
                    kind: AuditKind::Panic.label().to_string(),
                    detail: format!("kernel does not build: {}", panic_message(payload)),
                });
            }
        }
    }
    let run_once = || -> Result<MultiCoreResult, FuzzFailure> {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let refs: Vec<&Program> = programs.iter().collect();
            let policies: Vec<Box<dyn MemDepPolicy>> = programs
                .iter()
                .map(|_| {
                    let real = policy_kind.build(config);
                    match sabotage {
                        Some(mode) => {
                            Box::new(SabotagedPolicy::new(real, mode)) as Box<dyn MemDepPolicy>
                        }
                        None => real,
                    }
                })
                .collect();
            let opts = MultiCoreOptions {
                audit: true,
                ..MultiCoreOptions::default()
            };
            run_multicore(&refs, config, policies, &opts)
        }));
        match outcome {
            Err(payload) => Err(FuzzFailure {
                kind: AuditKind::Panic.label().to_string(),
                detail: panic_message(payload),
            }),
            Ok(Err(e)) => Err(FuzzFailure {
                kind: AuditKind::Panic.label().to_string(),
                detail: format!("multi-core simulation error: {e}"),
            }),
            Ok(Ok(result)) => Ok(result),
        }
    };
    let first = match run_once() {
        Ok(result) => result,
        Err(failure) => return Some(failure),
    };
    if !first.coherence_violations.is_empty() {
        return Some(FuzzFailure {
            kind: "coherence".to_string(),
            detail: first.coherence_violations.join("\n"),
        });
    }
    for (core, outcome) in first.cores.iter().enumerate() {
        if let Some(audit) = &outcome.result.audit {
            if !audit.is_clean() {
                let kind = audit.violations.first().map_or_else(
                    || AuditKind::Panic.label().to_string(),
                    |v| v.kind.label().to_string(),
                );
                return Some(FuzzFailure {
                    kind,
                    detail: format!("core {core}:\n{}", audit.render()),
                });
            }
        }
    }
    // Determinism differential: the multi-core driver promises the same
    // inputs produce the same run, bit for bit. Rerun and compare.
    match run_once() {
        Ok(second) if mt_digest(&second) == mt_digest(&first) => None,
        Ok(second) => Some(FuzzFailure {
            kind: "mt-divergence".to_string(),
            detail: format!(
                "two identical multi-core runs diverged: {:?} vs {:?}",
                mt_digest(&first),
                mt_digest(&second)
            ),
        }),
        Err(failure) => Some(failure),
    }
}

/// Single- vs multi-thread dispatch on the kernel count.
fn run_threaded_case(
    kernels: &[FuzzKernel],
    policy_kind: &PolicyKind,
    config: &CoreConfig,
    sabotage: Option<Sabotage>,
) -> Option<FuzzFailure> {
    match kernels {
        [one] => run_case(one, policy_kind, config, sabotage),
        many => run_case_mt(many, policy_kind, config, sabotage),
    }
}

fn fails_same(
    kernels: &[FuzzKernel],
    policy_kind: &PolicyKind,
    config: &CoreConfig,
    sabotage: Option<Sabotage>,
    target_kind: &str,
) -> bool {
    run_threaded_case(kernels, policy_kind, config, sabotage).is_some_and(|f| f.kind == target_kind)
}

/// Delta-debugs every thread's kernel to a locally minimal set that still
/// fails with `target_kind`: per thread, chunked op removal (halving chunk
/// sizes), iteration reduction, then per-op operand simplification
/// (`late`/`far`/`sub` off, width up to a full quad word). Threads are
/// shrunk one at a time with the others held fixed; the thread count
/// itself never changes (dropping a core changes the machine, not the
/// kernel).
fn shrink(
    mut kernels: Vec<FuzzKernel>,
    policy_kind: &PolicyKind,
    config: &CoreConfig,
    sabotage: Option<Sabotage>,
    target_kind: &str,
) -> Vec<FuzzKernel> {
    let keeps = |ks: &[FuzzKernel]| fails_same(ks, policy_kind, config, sabotage, target_kind);
    for t in 0..kernels.len() {
        kernels = shrink_thread(kernels, t, &keeps);
    }
    kernels
}

/// One thread's shrink pass: reduces `kernels[t]` while the other threads
/// stay fixed.
fn shrink_thread(
    mut kernels: Vec<FuzzKernel>,
    t: usize,
    keeps: &dyn Fn(&[FuzzKernel]) -> bool,
) -> Vec<FuzzKernel> {
    let mut chunk = (kernels[t].ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < kernels[t].ops.len() && kernels[t].ops.len() > 1 {
            let mut cand = kernels.clone();
            let end = (i + chunk).min(cand[t].ops.len());
            cand[t].ops.drain(i..end);
            if !cand[t].ops.is_empty() && keeps(&cand) {
                kernels = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    for iters in [1, 2, 4, 8, 16, 32, 64] {
        if iters >= kernels[t].iters {
            break;
        }
        let mut cand = kernels.clone();
        cand[t].iters = iters;
        if keeps(&cand) {
            kernels = cand;
            break;
        }
    }

    for i in 0..kernels[t].ops.len() {
        let simplifications: Vec<FuzzOp> = match kernels[t].ops[i] {
            FuzzOp::Store {
                width,
                slot,
                sub,
                late,
                far,
            } => vec![
                FuzzOp::Store {
                    width,
                    slot,
                    sub,
                    late: false,
                    far,
                },
                FuzzOp::Store {
                    width,
                    slot,
                    sub,
                    late,
                    far: false,
                },
                FuzzOp::Store {
                    width,
                    slot,
                    sub: false,
                    late,
                    far,
                },
                FuzzOp::Store {
                    width: 8,
                    slot,
                    sub,
                    late,
                    far,
                },
            ],
            FuzzOp::Load {
                width,
                slot,
                sub,
                far,
            } => vec![
                FuzzOp::Load {
                    width,
                    slot,
                    sub,
                    far: false,
                },
                FuzzOp::Load {
                    width,
                    slot,
                    sub: false,
                    far,
                },
                FuzzOp::Load {
                    width: 8,
                    slot,
                    sub,
                    far,
                },
            ],
            FuzzOp::Branch { .. } | FuzzOp::Alu => vec![],
        };
        for simpler in simplifications {
            if simpler == kernels[t].ops[i] {
                continue;
            }
            let mut cand = kernels.clone();
            cand[t].ops[i] = simpler;
            if keeps(&cand) {
                kernels = cand;
            }
        }
    }
    kernels
}

/// A self-contained, replayable failure record: the exact (shrunk) kernel,
/// the policy and configuration it broke, the planted bug if any, and the
/// failure class it must reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Stream seed the failure came from.
    pub seed: u64,
    /// Kernel index within the stream.
    pub index: u64,
    /// Policy token ([`PolicyKind::token`]).
    pub policy: String,
    /// Config token ("1", "2", "3").
    pub config: String,
    /// Planted bug, if the run was sabotaged.
    pub sabotage: Option<Sabotage>,
    /// Failure class ([`FuzzFailure::kind`]).
    pub kind: String,
    /// The shrunk kernel (thread 0 when multi-threaded).
    pub kernel: FuzzKernel,
    /// Threads 1.. of a multi-threaded case, already shrunk. Empty for
    /// the classic single-core repro (and absent from its file format).
    pub extra: Vec<FuzzKernel>,
}

impl Repro {
    /// Renders the repro file text (line-oriented; `#` comments).
    pub fn render(&self) -> String {
        let mut out = String::from("# dmdc fuzz repro v1\n");
        writeln!(out, "seed {}", self.seed).unwrap();
        writeln!(out, "index {}", self.index).unwrap();
        writeln!(out, "policy {}", self.policy).unwrap();
        writeln!(out, "config {}", self.config).unwrap();
        if let Some(s) = &self.sabotage {
            writeln!(out, "sabotage {}", s.token()).unwrap();
        }
        if !self.extra.is_empty() {
            writeln!(out, "threads {}", 1 + self.extra.len()).unwrap();
        }
        writeln!(out, "failure {}", self.kind).unwrap();
        writeln!(out, "iters {}", self.kernel.iters).unwrap();
        for op in &self.kernel.ops {
            writeln!(out, "op {}", op.token()).unwrap();
        }
        for (i, k) in self.extra.iter().enumerate() {
            writeln!(out, "thread {}", i + 1).unwrap();
            writeln!(out, "iters {}", k.iters).unwrap();
            for op in &k.ops {
                writeln!(out, "op {}", op.token()).unwrap();
            }
        }
        out
    }

    /// Parses [`Repro::render`] output.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut repro = Repro {
            seed: 0,
            index: 0,
            policy: String::new(),
            config: "2".to_string(),
            sabotage: None,
            kind: String::new(),
            kernel: FuzzKernel {
                ops: Vec::new(),
                iters: 1,
            },
            extra: Vec::new(),
        };
        // `iters` / `op` lines apply to the current thread: thread 0 until
        // a `thread N` line opens the next one.
        let mut cur = 0usize;
        let mut declared_threads: Option<usize> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or(format!("bad repro line `{line}`"))?;
            match key {
                "seed" => repro.seed = rest.parse().map_err(|_| format!("bad seed `{rest}`"))?,
                "index" => {
                    repro.index = rest.parse().map_err(|_| format!("bad index `{rest}`"))?;
                }
                "policy" => repro.policy = rest.to_string(),
                "config" => repro.config = rest.to_string(),
                "sabotage" => repro.sabotage = Some(Sabotage::parse_token(rest)?),
                "threads" => {
                    let n: usize = rest.parse().map_err(|_| format!("bad threads `{rest}`"))?;
                    if !(2..=8).contains(&n) {
                        return Err(format!("threads must be 2..=8, got {n}"));
                    }
                    declared_threads = Some(n);
                }
                "thread" => {
                    let n: usize = rest.parse().map_err(|_| format!("bad thread `{rest}`"))?;
                    if n != cur + 1 {
                        return Err(format!("thread sections out of order at `thread {n}`"));
                    }
                    repro.extra.push(FuzzKernel {
                        ops: Vec::new(),
                        iters: 1,
                    });
                    cur = n;
                }
                "failure" => repro.kind = rest.to_string(),
                "iters" => {
                    let iters = rest.parse().map_err(|_| format!("bad iters `{rest}`"))?;
                    repro.thread_mut(cur).iters = iters;
                }
                "op" => {
                    let op = FuzzOp::parse_token(rest)?;
                    repro.thread_mut(cur).ops.push(op);
                }
                other => return Err(format!("unknown repro key `{other}`")),
            }
        }
        if repro.policy.is_empty() {
            return Err("repro missing policy".to_string());
        }
        if let Some(n) = declared_threads {
            if 1 + repro.extra.len() != n {
                return Err(format!(
                    "repro declares {n} threads but has {} thread sections",
                    1 + repro.extra.len()
                ));
            }
        }
        if repro.kernel.ops.is_empty() || repro.extra.iter().any(|k| k.ops.is_empty()) {
            return Err("repro has a thread with no ops".to_string());
        }
        Ok(repro)
    }

    fn thread_mut(&mut self, i: usize) -> &mut FuzzKernel {
        if i == 0 {
            &mut self.kernel
        } else {
            &mut self.extra[i - 1]
        }
    }

    /// Re-runs the recorded case exactly; returns the failure it produced
    /// now, if any (replay of a fixed bug comes back clean).
    pub fn replay(&self) -> Result<Option<FuzzFailure>, String> {
        let policy_kind = PolicyKind::parse_token(&self.policy)?;
        let config = config_from_token(&self.config)?;
        let mut kernels = vec![self.kernel.clone()];
        kernels.extend(self.extra.iter().cloned());
        Ok(run_threaded_case(
            &kernels,
            &policy_kind,
            &config,
            self.sabotage,
        ))
    }
}

/// Runs the fuzz loop: for each case index in `0..budget`, generate the
/// kernel(s) — one per thread — and run them under every policy in turn.
/// On the first failure, shrink it across every thread's stream, write
/// `<out_dir>/<seed>.repro`, and stop.
pub fn fuzz(opts: &FuzzOptions) -> Result<FuzzOutcome, String> {
    let config = config_from_token(&opts.config)?;
    let threads = opts.threads.max(1) as u64;
    if threads > 8 {
        return Err(format!("--threads {threads} is past the 8-core cap"));
    }
    let mut cases = 0u64;
    for index in 0..opts.budget {
        // Thread t of case i draws kernel i*threads+t, so the streams stay
        // independent and every case is reproducible from (seed, index).
        let kernels: Vec<FuzzKernel> = (0..threads)
            .map(|t| FuzzKernel::generate(opts.seed, index * threads + t))
            .collect();
        for policy_kind in &opts.policies {
            cases += 1;
            let Some(failure) = run_threaded_case(&kernels, policy_kind, &config, opts.sabotage)
            else {
                continue;
            };
            let mut shrunk = shrink(kernels, policy_kind, &config, opts.sabotage, &failure.kind);
            let repro = Repro {
                seed: opts.seed,
                index,
                policy: policy_kind.token(),
                config: opts.config.clone(),
                sabotage: opts.sabotage,
                kind: failure.kind,
                kernel: shrunk.remove(0),
                extra: shrunk,
            };
            let repro_path = write_repro(&opts.out_dir, &repro);
            return Ok(FuzzOutcome {
                cases,
                failure: Some(repro),
                repro_path,
            });
        }
    }
    Ok(FuzzOutcome {
        cases,
        failure: None,
        repro_path: None,
    })
}

fn write_repro(out_dir: &Path, repro: &Repro) -> Option<PathBuf> {
    fs::create_dir_all(out_dir).ok()?;
    let path = out_dir.join(format!("{}.repro", repro.seed));
    fs::write(&path, repro.render()).ok()?;
    Some(path)
}

/// Loads and replays a repro file (CLI `dmdc fuzz --replay <path>`).
pub fn replay_file(path: &Path) -> Result<(Repro, Option<FuzzFailure>), String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let repro = Repro::parse(&text)?;
    let failure = repro.replay()?;
    Ok((repro, failure))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_sabotage_opts(seed: u64, budget: u64) -> FuzzOptions {
        FuzzOptions {
            budget,
            out_dir: std::env::temp_dir().join(format!("dmdc-fuzz-test-{seed}")),
            ..FuzzOptions::new(seed)
        }
    }

    #[test]
    fn real_policies_survive_a_small_budget() {
        let outcome = fuzz(&no_sabotage_opts(11, 6)).unwrap();
        assert!(
            outcome.failure.is_none(),
            "real policy failed the auditor:\n{}",
            outcome.failure.unwrap().render()
        );
        assert_eq!(outcome.cases, 6 * 5);
    }

    #[test]
    fn suppressed_replays_are_caught_and_shrunk() {
        let mut opts = no_sabotage_opts(5, 40);
        opts.policies = vec![PolicyKind::DmdcGlobal];
        opts.sabotage = Some(Sabotage::SuppressReplays { from: 0 });
        let outcome = fuzz(&opts).unwrap();
        let repro = outcome.failure.expect("sabotaged policy must fail");
        assert_eq!(repro.kind, AuditKind::MissedReplay.label());
        assert!(
            repro.kernel.ops.len() <= 8,
            "shrunk to {} ops:\n{}",
            repro.kernel.ops.len(),
            repro.render()
        );
        // The written repro replays to the same failure class.
        let path = outcome.repro_path.expect("repro written");
        let (parsed, failure) = replay_file(&path).unwrap();
        assert_eq!(parsed, repro);
        assert_eq!(failure.expect("still fails").kind, repro.kind);
        let _ = fs::remove_dir_all(&opts.out_dir);
    }

    #[test]
    fn repro_round_trips_through_text() {
        let repro = Repro {
            seed: 7,
            index: 3,
            policy: "dmdc-global".to_string(),
            config: "2".to_string(),
            sabotage: Some(Sabotage::SuppressReplays { from: 2 }),
            kind: "missed-replay".to_string(),
            kernel: FuzzKernel {
                ops: vec![
                    FuzzOp::Store {
                        width: 4,
                        slot: 3,
                        sub: true,
                        late: true,
                        far: false,
                    },
                    FuzzOp::Load {
                        width: 4,
                        slot: 3,
                        sub: true,
                        far: false,
                    },
                ],
                iters: 17,
            },
            extra: Vec::new(),
        };
        assert_eq!(Repro::parse(&repro.render()), Ok(repro));
        assert!(Repro::parse("seed 1\n").is_err(), "missing policy/ops");
        assert!(Repro::parse("warble 1\npolicy x\nop alu\n").is_err());
    }

    #[test]
    fn multi_threaded_repro_round_trips_through_text() {
        let store = FuzzOp::Store {
            width: 8,
            slot: 2,
            sub: false,
            late: false,
            far: false,
        };
        let load = FuzzOp::Load {
            width: 8,
            slot: 2,
            sub: false,
            far: false,
        };
        let repro = Repro {
            seed: 9,
            index: 1,
            policy: "dmdc-coherent".to_string(),
            config: "2".to_string(),
            sabotage: None,
            kind: "coherence".to_string(),
            kernel: FuzzKernel {
                ops: vec![store, load],
                iters: 3,
            },
            extra: vec![FuzzKernel {
                ops: vec![load],
                iters: 5,
            }],
        };
        let text = repro.render();
        assert!(text.contains("threads 2"), "{text}");
        assert!(text.contains("thread 1"), "{text}");
        assert_eq!(Repro::parse(&text), Ok(repro));
        // Thread sections must arrive in order, with every thread nonempty.
        assert!(Repro::parse("policy x\nop alu\nthread 2\nop alu\n").is_err());
        assert!(Repro::parse("policy x\nthreads 2\nop alu\n").is_err());
        assert!(Repro::parse("policy x\nop alu\nthread 1\niters 1\n").is_err());
    }

    #[test]
    fn mt_real_policies_survive_a_small_budget() {
        let opts = FuzzOptions {
            budget: 3,
            threads: 2,
            policies: FuzzOptions::mt_policies(),
            out_dir: std::env::temp_dir().join("dmdc-fuzz-test-mt-clean"),
            ..FuzzOptions::new(23)
        };
        let outcome = fuzz(&opts).unwrap();
        assert!(
            outcome.failure.is_none(),
            "coherent policy failed multi-core torture:\n{}",
            outcome.failure.unwrap().render()
        );
        assert_eq!(outcome.cases, 3 * 2);
    }

    #[test]
    fn sabotage_tokens_round_trip() {
        for s in [
            Sabotage::SuppressReplays { from: 0 },
            Sabotage::SuppressReplays { from: 9 },
            Sabotage::ForceSafeStores,
        ] {
            assert_eq!(Sabotage::parse_token(&s.token()), Ok(s));
        }
        assert!(Sabotage::parse_token("melt-the-rob").is_err());
    }
}
