//! Priority job queue for the simulation service.
//!
//! Orders pending work by priority (higher first) and, within a
//! priority, by submission order (FIFO). Every push returns a ticket
//! that can later cancel the entry if it has not yet been popped.
//!
//! The queue is a plain data structure — no locks, no condvars. The
//! service wraps it in a `Mutex` and pairs it with a `Condvar` for
//! blocking pops; keeping synchronization out of this type is what
//! makes the ordering invariants directly property-testable
//! (`crates/core/tests/queue_props.rs`).

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};

/// A pending entry's position: priority descending, then ticket
/// (submission order) ascending. `BTreeMap::pop_first` on this key
/// yields the highest-priority, oldest entry.
type Rank = (Reverse<u8>, u64);

/// FIFO-within-priority queue with cancellation. See the module docs.
#[derive(Debug, Default)]
pub struct JobQueue<T> {
    ordered: BTreeMap<Rank, T>,
    by_ticket: HashMap<u64, Rank>,
    next_ticket: u64,
}

impl<T> JobQueue<T> {
    /// An empty queue.
    pub fn new() -> JobQueue<T> {
        JobQueue {
            ordered: BTreeMap::new(),
            by_ticket: HashMap::new(),
            next_ticket: 0,
        }
    }

    /// Enqueues `item` at `priority` (255 = most urgent). Returns a
    /// ticket usable with [`cancel`](JobQueue::cancel); tickets are
    /// unique for the lifetime of the queue.
    pub fn push(&mut self, priority: u8, item: T) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let rank = (Reverse(priority), ticket);
        self.ordered.insert(rank, item);
        self.by_ticket.insert(ticket, rank);
        ticket
    }

    /// Removes and returns the highest-priority, oldest entry with its
    /// ticket, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let ((_, ticket), item) = self.ordered.pop_first()?;
        self.by_ticket.remove(&ticket);
        Some((ticket, item))
    }

    /// Removes a still-pending entry by ticket. Returns `None` if the
    /// ticket was already popped, cancelled, or never issued.
    pub fn cancel(&mut self, ticket: u64) -> Option<T> {
        let rank = self.by_ticket.remove(&ticket)?;
        self.ordered.remove(&rank)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Pending entries in pop order, without removing them.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.ordered
            .iter()
            .map(|(&(_, ticket), item)| (ticket, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_priority() {
        let mut q = JobQueue::new();
        q.push(1, "a");
        q.push(1, "b");
        q.push(1, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn higher_priority_pops_first() {
        let mut q = JobQueue::new();
        q.push(0, "low");
        q.push(9, "high");
        q.push(5, "mid");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, ["high", "mid", "low"]);
    }

    #[test]
    fn cancel_removes_only_pending() {
        let mut q = JobQueue::new();
        let a = q.push(1, "a");
        let b = q.push(1, "b");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.cancel(b), None, "double cancel is a no-op");
        let (ticket, item) = q.pop().unwrap();
        assert_eq!((ticket, item), (a, "a"));
        assert_eq!(q.cancel(a), None, "popped entries cannot be cancelled");
        assert!(q.is_empty());
    }

    #[test]
    fn tickets_never_repeat() {
        let mut q = JobQueue::new();
        let a = q.push(1, 1);
        q.pop();
        let b = q.push(1, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn iter_matches_pop_order() {
        let mut q = JobQueue::new();
        q.push(2, "x");
        q.push(7, "y");
        q.push(2, "z");
        let peeked: Vec<_> = q.iter().map(|(_, &v)| v).collect();
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(peeked, popped);
    }
}
