//! Single-flight coalescing: at most one computation per key in flight.
//!
//! When several threads want the result of the same expensive, pure
//! computation — in this repository, the simulation behind one cell cache
//! key — running it more than once is pure waste: the result is
//! deterministic and the cache will hold it the moment the first runner
//! stores it. [`SingleFlight`] makes the duplicates *wait* instead:
//!
//! * the first thread to [`join`](SingleFlight::join) a key becomes the
//!   **leader** and receives a [`LeaderGuard`]; it runs the computation
//!   and publishes the result (for cells: a [`CellCache`] store);
//! * every other thread joining the same key while the guard is alive is
//!   a **follower**: `join` blocks until the leader's guard drops, then
//!   returns [`Entry::Waited`] — the follower re-consults the shared
//!   store, which now holds the leader's result.
//!
//! The flight itself never carries the computed value; it only sequences
//! threads around an external store. That keeps it value-type-free and
//! means a leader that *fails* (panics, errors, cannot write the store)
//! simply releases its followers to compute for themselves — coalescing
//! can delay a result, never lose one.
//!
//! The guard releases on drop, so panics unwind cleanly: a leader that
//! dies wakes its followers rather than wedging them.
//!
//! [`CellCache`]: crate::cache::CellCache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// led/coalesced counters of one [`SingleFlight`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightCounters {
    /// Joins that became the leader (ran the computation).
    pub led: u64,
    /// Joins that waited on another thread's in-flight computation
    /// instead of starting their own.
    pub coalesced: u64,
}

/// What [`SingleFlight::join`] decided for this caller.
#[derive(Debug)]
pub enum Entry<'f> {
    /// This caller leads: run the computation, publish the result, then
    /// drop the guard to release any followers.
    Leader(LeaderGuard<'f>),
    /// Another caller led and has since finished (successfully or not);
    /// re-consult the shared store before computing.
    Waited,
}

impl Entry<'_> {
    /// Whether this entry waited on another caller's flight.
    pub fn waited(&self) -> bool {
        matches!(self, Entry::Waited)
    }
}

/// One in-flight key: `done` flips under the mutex when the leader's
/// guard drops, and the condvar wakes the followers.
#[derive(Debug)]
struct Flight {
    done: Mutex<bool>,
    finished: Condvar,
}

/// A per-key mutual-exclusion layer for concurrent computations of
/// shared, deterministic results. See the module docs for the protocol.
///
/// # Examples
///
/// ```
/// use dmdc_core::flight::{Entry, SingleFlight};
///
/// let flight = SingleFlight::new();
/// match flight.join(42) {
///     Entry::Leader(guard) => {
///         // compute and publish, then release followers
///         drop(guard);
///     }
///     Entry::Waited => {
///         // leader finished; re-read the shared store
///     }
/// }
/// assert_eq!(flight.counters().led, 1);
/// ```
#[derive(Debug, Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    led: AtomicU64,
    coalesced: AtomicU64,
}

impl SingleFlight {
    /// An empty flight table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Joins the flight for `key`. The first caller per key returns
    /// immediately as [`Entry::Leader`]; concurrent callers block until
    /// that leader's guard drops, then return [`Entry::Waited`].
    pub fn join(&self, key: u64) -> Entry<'_> {
        let flight = {
            let mut inflight = lock(&self.inflight);
            match inflight.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight {
                        done: Mutex::new(false),
                        finished: Condvar::new(),
                    });
                    inflight.insert(key, Arc::clone(&flight));
                    self.led.fetch_add(1, Ordering::Relaxed);
                    return Entry::Leader(LeaderGuard {
                        owner: self,
                        key,
                        flight,
                    });
                }
            }
        };
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        let mut done = lock(&flight.done);
        while !*done {
            done = match flight.finished.wait(done) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        Entry::Waited
    }

    /// Counters since this flight table was created.
    pub fn counters(&self) -> FlightCounters {
        FlightCounters {
            led: self.led.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Followers currently blocked across all keys — `coalesced` joins
    /// that have not yet been released. Pollable by tests and metrics to
    /// observe that a coalesce actually waited.
    pub fn waiting(&self) -> u64 {
        let inflight = lock(&self.inflight);
        inflight
            .values()
            .map(|f| Arc::strong_count(f).saturating_sub(2) as u64)
            .sum()
    }
}

/// Held by the leader while its computation runs; dropping it (normally
/// or by unwinding) removes the key from the flight table and wakes every
/// follower.
#[derive(Debug)]
pub struct LeaderGuard<'f> {
    owner: &'f SingleFlight,
    key: u64,
    flight: Arc<Flight>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        lock(&self.owner.inflight).remove(&self.key);
        *lock(&self.flight.done) = true;
        self.flight.finished.notify_all();
    }
}

/// Locks, surviving poisoning: a panicking leader must still release its
/// followers.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn sole_caller_leads_and_releases() {
        let flight = SingleFlight::new();
        let entry = flight.join(1);
        assert!(matches!(entry, Entry::Leader(_)));
        drop(entry);
        // The key is gone: joining again leads again.
        assert!(matches!(flight.join(1), Entry::Leader(_)));
        assert_eq!(
            flight.counters(),
            FlightCounters {
                led: 2,
                coalesced: 0
            }
        );
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let flight = SingleFlight::new();
        let a = flight.join(1);
        let b = flight.join(2);
        assert!(matches!(a, Entry::Leader(_)));
        assert!(matches!(b, Entry::Leader(_)));
    }

    #[test]
    fn follower_waits_until_leader_finishes() {
        let flight = Arc::new(SingleFlight::new());
        let Entry::Leader(guard) = flight.join(7) else {
            panic!("first join must lead");
        };
        let (tx, rx) = mpsc::channel();
        let f2 = Arc::clone(&flight);
        let follower = std::thread::spawn(move || {
            let entry = f2.join(7);
            tx.send(()).unwrap();
            entry.waited()
        });
        // The follower blocks while the guard is held.
        while flight.waiting() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "follower must not proceed while the leader runs"
        );
        drop(guard);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("dropping the guard releases the follower");
        assert!(follower.join().unwrap(), "second join coalesces");
        assert_eq!(
            flight.counters(),
            FlightCounters {
                led: 1,
                coalesced: 1
            }
        );
    }

    #[test]
    fn panicking_leader_releases_followers() {
        let flight = Arc::new(SingleFlight::new());
        let f2 = Arc::clone(&flight);
        let leader = std::thread::spawn(move || {
            let _guard = match f2.join(9) {
                Entry::Leader(g) => g,
                Entry::Waited => panic!("must lead"),
            };
            // Wait for the follower to be blocked, then die.
            while f2.waiting() == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            panic!("leader dies mid-computation");
        });
        let entry = flight.join(9);
        assert!(entry.waited(), "released by the unwinding leader");
        assert!(leader.join().is_err());
        // The key is free again.
        assert!(matches!(flight.join(9), Entry::Leader(_)));
    }
}
