//! Bloom-filter search filtering (Sethumadhavan et al. \[18\]) — the
//! address-only comparator of the paper's Figure 3.
//!
//! A counting bloom filter tracks the quad-word addresses of issued,
//! in-flight loads. A resolving store whose filter entry is zero provably
//! has no issued younger load to a conflicting address (no false
//! negatives), so the LQ search is skipped. Unlike YLA filtering, the
//! filter knows nothing about *timing*: a store is searched whenever any
//! in-flight load aliases its entry, even one that is older.

use dmdc_types::{Addr, Age, MemSpan};

use dmdc_ooo::{
    search_lq_for_premature_loads, CheckOutcome, CommitInfo, CommitKind, LoadQueue, MemDepPolicy,
    PolicyCtx, ReplayKind, StoreResolution,
};

/// A counting bloom filter over quad-word addresses with the H0 hash of
/// \[18\] (a plain bit-field selection of the block address).
///
/// # Examples
///
/// ```
/// use dmdc_core::CountingBloom;
/// use dmdc_types::Addr;
///
/// let mut bf = CountingBloom::new(64);
/// bf.insert(Addr(0x100));
/// assert!(bf.may_contain(Addr(0x100)));
/// bf.remove(Addr(0x100));
/// assert!(!bf.may_contain(Addr(0x100)));
/// ```
#[derive(Debug, Clone)]
pub struct CountingBloom {
    counters: Vec<u32>,
}

impl CountingBloom {
    /// Creates a filter with `entries` counters (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> CountingBloom {
        assert!(
            entries.is_power_of_two(),
            "bloom filter size must be a power of two"
        );
        CountingBloom {
            counters: vec![0; entries as usize],
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the filter has no counters (never true).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The H0 hash: low bits of the quad-word address.
    #[inline]
    fn index(&self, addr: Addr) -> usize {
        (addr.quad_word() as usize) & (self.counters.len() - 1)
    }

    /// Records an address.
    pub fn insert(&mut self, addr: Addr) {
        let i = self.index(addr);
        self.counters[i] += 1;
    }

    /// Removes one previously inserted occurrence.
    ///
    /// # Panics
    ///
    /// Panics on underflow — removing something never inserted is a
    /// tracking bug in the caller.
    pub fn remove(&mut self, addr: Addr) {
        let i = self.index(addr);
        assert!(
            self.counters[i] > 0,
            "counting bloom underflow at entry {i}"
        );
        self.counters[i] -= 1;
    }

    /// Whether any tracked address aliases `addr`'s entry.
    pub fn may_contain(&self, addr: Addr) -> bool {
        self.counters[self.index(addr)] > 0
    }
}

/// The bloom-filtered conventional design of \[18\], used as the Figure 3
/// comparison point against YLA filtering.
#[derive(Debug, Clone)]
pub struct BloomPolicy {
    filter: CountingBloom,
    /// Issued loads currently accounted in the filter, oldest first —
    /// the bookkeeping a real design keeps implicitly in the LQ.
    tracked: Vec<(Age, Addr)>,
    name: String,
}

impl BloomPolicy {
    /// A policy with a `entries`-counter filter.
    pub fn new(entries: u32) -> BloomPolicy {
        BloomPolicy {
            filter: CountingBloom::new(entries),
            tracked: Vec::new(),
            name: format!("bloom-{entries}"),
        }
    }
}

impl MemDepPolicy for BloomPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        _lq: &mut LoadQueue,
    ) -> Option<Age> {
        if safe {
            ctx.stats.safe_loads += 1;
        } else {
            ctx.stats.unsafe_loads += 1;
        }
        self.filter.insert(span.addr);
        ctx.energy.bloom_writes += 1;
        self.tracked.push((age, span.addr));
        None
    }

    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        lq: &LoadQueue,
    ) -> StoreResolution {
        ctx.energy.bloom_reads += 1;
        if !self.filter.may_contain(span.addr) {
            ctx.stats.safe_stores += 1;
            return StoreResolution {
                safe: true,
                replay_from: None,
            };
        }
        ctx.stats.unsafe_stores += 1;
        ctx.energy.lq_cam_searches += 1;
        let replay_from = search_lq_for_premature_loads(lq, age, span);
        if replay_from.is_some() {
            ctx.stats.replays.record(ReplayKind::TrueViolation);
        }
        StoreResolution {
            safe: false,
            replay_from,
        }
    }

    fn on_commit(&mut self, ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome {
        if info.kind == CommitKind::Load {
            debug_assert!(
                info.value_correct,
                "bloom filtering let a stale load commit"
            );
            // The committing load leaves the in-flight window.
            if let Some(pos) = self.tracked.iter().position(|&(a, _)| a == info.age) {
                let (_, addr) = self.tracked.remove(pos);
                self.filter.remove(addr);
                ctx.energy.bloom_writes += 1;
            }
        }
        CheckOutcome::Ok
    }

    fn on_squash(&mut self, ctx: &mut PolicyCtx<'_>, youngest_surviving: Age) {
        while let Some(&(age, addr)) = self.tracked.last() {
            if age.is_younger_than(youngest_surviving) {
                self.filter.remove(addr);
                ctx.energy.bloom_writes += 1;
                self.tracked.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_ooo::{EnergyCounters, PolicyStats};
    use dmdc_types::{AccessSize, Cycle};

    fn span(addr: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::B8)
    }

    #[test]
    fn counting_semantics() {
        let mut bf = CountingBloom::new(8);
        bf.insert(Addr(0x100));
        bf.insert(Addr(0x100));
        bf.remove(Addr(0x100));
        assert!(bf.may_contain(Addr(0x100)), "one occurrence remains");
        bf.remove(Addr(0x100));
        assert!(!bf.may_contain(Addr(0x100)));
    }

    #[test]
    fn aliasing_produces_false_positives_only() {
        let mut bf = CountingBloom::new(4);
        bf.insert(Addr(0x00)); // qw 0 -> entry 0
        assert!(bf.may_contain(Addr(0x00)));
        // qw 4 -> entry 0 as well: false positive, never a false negative.
        assert!(bf.may_contain(Addr(4 * 8)));
        assert!(!bf.may_contain(Addr(8)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_is_a_bug() {
        CountingBloom::new(4).remove(Addr(0));
    }

    #[test]
    fn policy_filters_when_no_alias() {
        let mut p = BloomPolicy::new(64);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut lq = LoadQueue::new(8);
        let mut ctx = PolicyCtx {
            cycle: Cycle(0),
            energy: &mut e,
            stats: &mut s,
        };
        lq.allocate(Age(10));
        lq.entry_mut(Age(10)).unwrap().issued = true;
        lq.entry_mut(Age(10)).unwrap().span = Some(span(0x100));
        p.on_load_issue(&mut ctx, Age(10), span(0x100), false, &mut lq);

        // Different address, no alias in a 64-entry filter: filtered.
        let r = p.on_store_resolve(&mut ctx, Age(5), span(0x108), &lq);
        assert!(r.safe);
        // Same address: must search, and — unlike YLA — even a *younger*
        // store is searched because the filter has no timing information.
        let r = p.on_store_resolve(&mut ctx, Age(11), span(0x100), &lq);
        assert!(!r.safe);
        assert_eq!(r.replay_from, None, "no younger issued load than age 11");
        let r = p.on_store_resolve(&mut ctx, Age(5), span(0x100), &lq);
        assert_eq!(r.replay_from, Some(Age(10)));
        assert_eq!(e.lq_cam_searches, 2);
    }

    #[test]
    fn commit_and_squash_drain_the_filter() {
        let mut p = BloomPolicy::new(64);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut lq = LoadQueue::new(8);
        let mut ctx = PolicyCtx {
            cycle: Cycle(0),
            energy: &mut e,
            stats: &mut s,
        };
        p.on_load_issue(&mut ctx, Age(10), span(0x100), true, &mut lq);
        p.on_load_issue(&mut ctx, Age(11), span(0x200), true, &mut lq);
        p.on_load_issue(&mut ctx, Age(12), span(0x310), true, &mut lq);

        // Squash kills ages > 10.
        p.on_squash(&mut ctx, Age(10));
        assert!(p.filter.may_contain(Addr(0x100)));
        assert!(!p.filter.may_contain(Addr(0x200)));
        assert!(!p.filter.may_contain(Addr(0x310)));

        // Commit removes the survivor.
        let info = CommitInfo {
            age: Age(10),
            kind: CommitKind::Load,
            span: Some(span(0x100)),
            safe_load: true,
            value_correct: true,
            issue_cycle: Some(Cycle(1)),
        };
        assert_eq!(p.on_commit(&mut ctx, &info), CheckOutcome::Ok);
        assert!(!p.filter.may_contain(Addr(0x100)));
    }
}
