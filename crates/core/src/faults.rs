//! Deterministic fault injection for exercising the recovery layer.
//!
//! The crash-safety machinery — retries, quarantine, journal resume,
//! cache integrity — is exactly the kind of code that silently rots
//! because nothing exercises it in an ordinary run. This module plants
//! cheap hooks at the fault sites (cell attempts, cache writes, journal
//! writes, worker loops) that do nothing unless a [`FaultPlan`] is
//! installed, and inject *deterministic* failures when one is:
//!
//! * **cell panics / hangs** — selected by a seeded hash of the workload
//!   name, so the same plan always breaks the same cells regardless of
//!   scheduling, and by default only on a cell's first attempt, so a
//!   retry demonstrably recovers it;
//! * **cache corruption** — every Nth freshly written cache entry gets a
//!   byte flipped in place, simulating bit rot the next lookup must
//!   quarantine;
//! * **journal truncation** — every Nth checkpoint is cut in half,
//!   simulating a crash landing mid-entry before atomic writes existed;
//! * **kill-after** — the process calls [`std::process::abort`] after N
//!   journal checkpoints, a reproducible stand-in for SIGKILL in
//!   crash/resume tests;
//! * **distributed modes** — `worker-kill-after` aborts a `dmdc worker`
//!   after N completed cells, `drop-heartbeats` silences its heartbeat
//!   thread, `stale-claim` delays its first completion past the lease
//!   TTL, and `partial-upload` truncates every Nth published result —
//!   together they exercise every reclaim path in
//!   [`distrib`](crate::distrib).
//!
//! Plans are spelled as compact `key=value` strings (see
//! [`FaultPlan::parse`]) so the CLI (`dmdc ... --inject-faults ...`), CI
//! smoke jobs and integration tests all share one vocabulary. Production
//! runs never install a plan; the hooks then cost one relaxed atomic
//! load.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache::Fnv64;

/// The installed plan, if any. `ACTIVE` mirrors `PLAN.is_some()` so the
/// hooks on hot paths skip the mutex entirely when injection is off.
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// A deterministic fault-injection schedule. All periods default to 0
/// (= never fire).
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Perturbs which workloads are selected for panics/hangs.
    pub seed: u64,
    /// Panic in 1-in-`panic_period` workloads' cells.
    pub panic_period: u64,
    /// Panic on attempts `< panic_attempts` of a selected cell
    /// (default 1: first attempt only, so a retry recovers it; set it
    /// above the retry budget to force quarantine).
    pub panic_attempts: u32,
    /// Hang in 1-in-`hang_period` workloads' cells (first attempt only).
    pub hang_period: u64,
    /// How long an injected hang sleeps, in milliseconds.
    pub hang_ms: u64,
    /// Flip a byte in every Nth freshly written cache entry.
    pub corrupt_period: u64,
    /// Truncate every Nth journal checkpoint.
    pub truncate_period: u64,
    /// Panic one worker thread outside the per-cell isolation, forcing
    /// the serial-degradation path.
    pub worker_panic: bool,
    /// Abort the process after this many journal checkpoints (0 = off).
    pub kill_after: u64,
    /// Distributed mode: abort a `dmdc worker` process after it has
    /// completed this many cells (0 = off) — a reproducible kill -9
    /// mid-run, forcing the coordinator to reclaim the forfeited lease.
    pub worker_kill_after: u64,
    /// Distributed mode: the worker's heartbeat thread goes silent, so
    /// its leases expire under it even though it keeps executing.
    pub drop_heartbeats: bool,
    /// Distributed mode: the worker sleeps this long (ms) before
    /// completing its first cell — past a short lease TTL, the completion
    /// arrives from a stale lease holder after the cell was re-issued.
    pub stale_claim_ms: u64,
    /// Distributed mode: truncate every Nth freshly written cache entry
    /// to half (0 = off) — a partial result upload the coordinator must
    /// detect by unsealing and re-issue.
    pub partial_upload_period: u64,

    cache_writes: AtomicU64,
    journal_writes: AtomicU64,
    worker_fired: AtomicBool,
    distrib_completed: AtomicU64,
    stale_claim_fired: AtomicBool,
}

impl FaultPlan {
    /// Parses a plan from a compact `key=value[,key=value...]` spec:
    ///
    /// ```text
    /// seed=7,panic=2,panic-attempts=9,hang=3,hang-ms=200,
    /// corrupt=2,truncate=2,worker-panic=1,kill-after=4,
    /// worker-kill-after=3,drop-heartbeats=1,stale-claim=400,partial-upload=2
    /// ```
    ///
    /// Unknown keys are rejected so a typo cannot silently disable the
    /// fault it meant to inject.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            panic_attempts: 1,
            hang_ms: 1_000,
            ..FaultPlan::default()
        };
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec '{part}' is not key=value"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("fault spec '{part}': '{value}' is not a number"))?;
            match key {
                "seed" => plan.seed = n,
                "panic" => plan.panic_period = n,
                "panic-attempts" => plan.panic_attempts = n as u32,
                "hang" => plan.hang_period = n,
                "hang-ms" => plan.hang_ms = n,
                "corrupt" => plan.corrupt_period = n,
                "truncate" => plan.truncate_period = n,
                "worker-panic" => plan.worker_panic = n != 0,
                "kill-after" => plan.kill_after = n,
                "worker-kill-after" => plan.worker_kill_after = n,
                "drop-heartbeats" => plan.drop_heartbeats = n != 0,
                "stale-claim" => plan.stale_claim_ms = n,
                "partial-upload" => plan.partial_upload_period = n,
                _ => return Err(format!("unknown fault key '{key}'")),
            }
        }
        Ok(plan)
    }

    /// Whether a workload is selected for a fault class: a pure seeded
    /// hash, so the choice is independent of scheduling order.
    fn selects(&self, period: u64, workload: &str, class: &str) -> bool {
        if period == 0 {
            return false;
        }
        let mut h = Fnv64::new();
        h.write_u64(self.seed);
        h.write(workload.as_bytes());
        h.write(class.as_bytes());
        h.finish().is_multiple_of(period)
    }
}

/// Installs (or, with `None`, removes) the process-wide fault plan.
pub fn set_fault_plan(plan: Option<FaultPlan>) {
    let mut slot = PLAN.lock().unwrap_or_else(|p| p.into_inner());
    ACTIVE.store(plan.is_some(), Ordering::Release);
    *slot = plan.map(Arc::new);
}

fn active() -> Option<Arc<FaultPlan>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Hook: start of one isolated cell attempt. May panic or sleep.
pub fn on_cell_attempt(workload: &str, attempt: u32) {
    let Some(plan) = active() else { return };
    if plan.selects(plan.panic_period, workload, "panic") && attempt < plan.panic_attempts {
        panic!("injected fault: cell panic (workload {workload}, attempt {attempt})");
    }
    if plan.selects(plan.hang_period, workload, "hang") && attempt == 0 {
        std::thread::sleep(std::time::Duration::from_millis(plan.hang_ms));
    }
}

/// Hook: a worker is about to claim cell `index`. Panics outside the
/// per-cell isolation exactly once per plan, killing the worker thread.
pub fn on_worker_cell(index: usize) {
    let Some(plan) = active() else { return };
    if plan.worker_panic && !plan.worker_fired.swap(true, Ordering::Relaxed) {
        panic!("injected fault: worker death at cell {index}");
    }
}

/// Hook: a sealed cache entry was just renamed into place. With
/// `corrupt=N`, every Nth entry gets one byte flipped, preserving length
/// (a checksum-mismatch quarantine, not a truncation). With
/// `partial-upload=N`, every Nth entry is cut in half instead — the
/// distributed worker's "result upload died midway", which the
/// coordinator must catch by unsealing and re-issue the lease for.
pub fn on_cache_entry_written(path: &Path) {
    let Some(plan) = active() else { return };
    if plan.corrupt_period == 0 && plan.partial_upload_period == 0 {
        return;
    }
    let n = plan.cache_writes.fetch_add(1, Ordering::Relaxed);
    if plan.corrupt_period > 0 && (n + plan.seed) % plan.corrupt_period == 0 {
        if let Ok(mut bytes) = std::fs::read(path) {
            if let Some(b) = bytes.last_mut() {
                *b ^= 0x01;
                let _ = std::fs::write(path, bytes);
            }
        }
    }
    if plan.partial_upload_period > 0 && (n + plan.seed) % plan.partial_upload_period == 0 {
        if let Ok(bytes) = std::fs::read(path) {
            let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
        }
    }
}

/// Hook: a distributed worker just completed (and published) one cell.
/// With `worker-kill-after=N`, the process aborts after the Nth — the
/// reproducible kill -9 the distributed recovery tests lean on.
pub fn on_distrib_cell_done() {
    let Some(plan) = active() else { return };
    if plan.worker_kill_after == 0 {
        return;
    }
    let n = plan.distrib_completed.fetch_add(1, Ordering::Relaxed) + 1;
    if n >= plan.worker_kill_after {
        eprintln!("injected fault: worker aborting after {n} completed cells");
        std::process::abort();
    }
}

/// Hook: should the distributed worker's heartbeat thread stay silent?
/// (`drop-heartbeats=1` — leases expire under a live worker.)
pub fn heartbeats_dropped() -> bool {
    active().map(|p| p.drop_heartbeats).unwrap_or(false)
}

/// Hook: one-shot stale-claim delay in milliseconds, taken by the
/// distributed worker before completing its first cell. With a lease TTL
/// shorter than the delay, the completion arrives from an expired lease
/// holder — the coordinator must reject it as stale while the re-issued
/// lease produces the result.
pub fn take_stale_claim_ms() -> Option<u64> {
    let plan = active()?;
    if plan.stale_claim_ms == 0 || plan.stale_claim_fired.swap(true, Ordering::Relaxed) {
        return None;
    }
    Some(plan.stale_claim_ms)
}

/// Hook: a journal checkpoint was just written. Every Nth entry is cut
/// in half (a torn write), and after `kill_after` checkpoints the
/// process aborts — the reproducible SIGKILL crash/resume tests lean on.
pub fn on_journal_entry_written(path: &Path) {
    let Some(plan) = active() else { return };
    let n = plan.journal_writes.fetch_add(1, Ordering::Relaxed) + 1;
    if plan.truncate_period > 0 && (n - 1 + plan.seed) % plan.truncate_period == 0 {
        if let Ok(bytes) = std::fs::read(path) {
            let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
        }
    }
    if plan.kill_after > 0 && n >= plan.kill_after {
        eprintln!("injected fault: aborting after {n} journal checkpoints");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_full_spec_and_rejects_typos() {
        let plan = FaultPlan::parse(
            "seed=7,panic=2,panic-attempts=9,hang=3,hang-ms=200,corrupt=2,truncate=2,\
             worker-panic=1,kill-after=4,worker-kill-after=3,drop-heartbeats=1,\
             stale-claim=400,partial-upload=2",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_period, 2);
        assert_eq!(plan.panic_attempts, 9);
        assert_eq!(plan.hang_period, 3);
        assert_eq!(plan.hang_ms, 200);
        assert_eq!(plan.corrupt_period, 2);
        assert_eq!(plan.truncate_period, 2);
        assert!(plan.worker_panic);
        assert_eq!(plan.kill_after, 4);
        assert_eq!(plan.worker_kill_after, 3);
        assert!(plan.drop_heartbeats);
        assert_eq!(plan.stale_claim_ms, 400);
        assert_eq!(plan.partial_upload_period, 2);
        assert!(FaultPlan::parse("panics=1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=x").is_err());
    }

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1,panic=2").unwrap();
        let b = FaultPlan::parse("seed=1,panic=2").unwrap();
        for w in ["histo", "saxpy", "bfs", "mcf"] {
            assert_eq!(
                a.selects(a.panic_period, w, "panic"),
                b.selects(b.panic_period, w, "panic")
            );
        }
        // With period 1 every workload is selected.
        let all = FaultPlan::parse("panic=1").unwrap();
        assert!(all.selects(all.panic_period, "histo", "panic"));
        // Period 0 selects nothing.
        let none = FaultPlan::default();
        assert!(!none.selects(none.panic_period, "histo", "panic"));
    }
}
