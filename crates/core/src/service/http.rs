//! A minimal std-only HTTP/1.1 layer for the simulation service.
//!
//! One request per connection (`Connection: close` both ways), bodies
//! framed by `Content-Length`, no chunked encoding, no TLS: exactly the
//! subset `dmdc serve`'s JSON wire format needs, in the offline-shim
//! spirit of the repository (vendoring a real server is off the table,
//! and the service's documents are all small). The same module provides
//! the blocking [`request`] helper the `dmdc submit`/`status`/`metrics`
//! client subcommands and the black-box test harness use, so both ends
//! of the wire are pinned by the same code.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest request the server will read, headers plus body. Submissions
/// are tiny; anything bigger is a confused or hostile client.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, e.g. `/jobs/job-1`.
    pub path: String,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// Reads one HTTP/1.1 request from a connection. Returns a human-readable
/// error for anything malformed; the caller turns that into a 400.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(i) = find_header_end(&buf) {
            break i;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before headers completed".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-utf8 headers")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err("request body too large".to_string());
    }
    let body_start = header_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        body: String::from_utf8(body).map_err(|_| "non-utf8 body")?,
    })
}

/// The `\r\n\r\n` boundary between headers and body, if received yet.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and closes the write side. Errors are swallowed —
/// a client that hung up mid-response is its own problem, not the
/// daemon's.
pub fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Response",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// One blocking HTTP exchange: connect, send, read to EOF, return
/// `(status, body)`. The client half of the wire — `dmdc submit` and the
/// service tests speak through this.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("{addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(10))
        .map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text = String::from_utf8(raw).map_err(|_| "non-utf8 response".to_string())?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response (no header boundary)".to_string())?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in `{head}`"))?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            respond(&mut stream, 200, &req.body);
        });
        let (status, body) = request(&addr, "POST", "/echo", Some("{\"x\": 1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"x\": 1}");
        server.join().unwrap();
    }

    #[test]
    fn get_without_body_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.body, "");
            respond(&mut stream, 404, "{\"error\": \"nope\"}");
        });
        let (status, body) = request(&addr, "GET", "/missing", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("nope"));
        server.join().unwrap();
    }
}
