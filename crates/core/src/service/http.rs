//! A minimal std-only HTTP/1.1 layer for the simulation service.
//!
//! One request per connection (`Connection: close` both ways), bodies
//! framed by `Content-Length`, no chunked encoding, no TLS: exactly the
//! subset `dmdc serve`'s JSON wire format needs, in the offline-shim
//! spirit of the repository (vendoring a real server is off the table,
//! and the service's documents are all small). The same module provides
//! the blocking [`request`] helper the `dmdc submit`/`status`/`metrics`
//! client subcommands and the black-box test harness use, so both ends
//! of the wire are pinned by the same code.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::cache::Fnv64;

/// Largest request body the server will read. Submissions are tiny;
/// anything bigger is a confused or hostile client.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Largest header block the server will accumulate. Headers carry a
/// request line and a content-length; 16 KiB is already generous.
pub const MAX_HEADER_BYTES: usize = 16 << 10;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, e.g. `/jobs/job-1`.
    pub path: String,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// Why a request could not be read, classified so the server can answer
/// with the right structured status instead of a blanket 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// Headers or body exceeded the size caps → 413.
    TooLarge(String),
    /// The client stalled past the connection's read deadline → 408.
    Timeout(String),
    /// Anything else malformed (truncation, bad framing, non-UTF-8) → 400.
    Malformed(String),
}

impl ReadError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ReadError::TooLarge(_) => 413,
            ReadError::Timeout(_) => 408,
            ReadError::Malformed(_) => 400,
        }
    }

    /// The human-readable specifics, for the structured error body.
    pub fn message(&self) -> &str {
        match self {
            ReadError::TooLarge(m) | ReadError::Timeout(m) | ReadError::Malformed(m) => m,
        }
    }
}

/// Classifies one socket read error: a deadline expiry (`WouldBlock` on
/// Unix timeouts, `TimedOut` elsewhere) is a stalled client, anything
/// else is a broken one.
fn classify_io(e: std::io::Error, during: &str) -> ReadError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            ReadError::Timeout(format!("read deadline expired {during}"))
        }
        _ => ReadError::Malformed(format!("read failed {during}: {e}")),
    }
}

fn malformed(msg: impl Into<String>) -> ReadError {
    ReadError::Malformed(msg.into())
}

/// Reads one HTTP/1.1 request from a connection, classifying every way
/// it can go wrong: oversized headers/bodies ([`ReadError::TooLarge`]),
/// a client that stalls past the socket's read deadline
/// ([`ReadError::Timeout`]), and plain malformation. The caller maps the
/// classes to 413/408/400 via [`ReadError::status`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(i) = find_header_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge(format!(
                "headers exceed {MAX_HEADER_BYTES} bytes"
            )));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| classify_io(e, "while reading headers"))?;
        if n == 0 {
            return Err(malformed("connection closed before headers completed"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| malformed("non-utf8 headers"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| malformed("missing path"))?
        .to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(ReadError::TooLarge(format!(
            "request body of {content_length} bytes exceeds {MAX_REQUEST_BYTES}"
        )));
    }
    let body_start = header_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| classify_io(e, "while reading the body"))?;
        if n == 0 {
            return Err(malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        body: String::from_utf8(body).map_err(|_| malformed("non-utf8 body"))?,
    })
}

/// The `\r\n\r\n` boundary between headers and body, if received yet.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and closes the write side. Errors are swallowed —
/// a client that hung up mid-response is its own problem, not the
/// daemon's.
pub fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Response",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// A failed client exchange, flagged with whether retrying could help
/// (the server refused or dropped the connection — it may simply not be
/// up yet) or not (a protocol-level failure that will repeat).
struct RequestError {
    retryable: bool,
    message: String,
}

impl RequestError {
    fn fatal(message: impl Into<String>) -> RequestError {
        RequestError {
            retryable: false,
            message: message.into(),
        }
    }
}

/// Classifies one client-side io error: connection refused/reset/aborted
/// are transient server absence; everything else is fatal.
fn classify_client_io(addr: &str, e: &std::io::Error) -> RequestError {
    use std::io::ErrorKind;
    RequestError {
        retryable: matches!(
            e.kind(),
            ErrorKind::ConnectionRefused
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
        ),
        message: format!("{addr}: {e}"),
    }
}

/// One blocking HTTP exchange: connect, send, read to EOF, return
/// `(status, body)`. The client half of the wire — `dmdc submit` and the
/// service tests speak through this. Fails on the first connection
/// error; see [`request_with_retry`] for the backoff variant.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    try_request(addr, method, path, body).map_err(|e| e.message)
}

/// Like [`request`], but retries connection-refused/reset with jittered
/// exponential backoff until `max_wait` has elapsed — the client half of
/// riding out a daemon that is still booting or briefly restarting.
/// Protocol-level failures (a reachable server sending garbage) stay
/// immediate. The terminal error names the attempts made and the time
/// spent, so a misconfigured address reads as exactly that.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    max_wait: Duration,
) -> Result<(u16, String), String> {
    let start = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        let err = match try_request(addr, method, path, body) {
            Ok(reply) => return Ok(reply),
            Err(e) if e.retryable => e,
            Err(e) => return Err(e.message),
        };
        attempt += 1;
        let delay = retry_backoff(addr, attempt);
        if start.elapsed() + delay > max_wait {
            return Err(format!(
                "{addr}: unreachable after {attempt} attempt(s) over {:.1}s \
                 (last error: {}); is the server up?",
                start.elapsed().as_secs_f64(),
                err.message
            ));
        }
        std::thread::sleep(delay);
    }
}

/// Exponential backoff with deterministic jitter: 50 ms doubling to a
/// 1.6 s cap, plus up to +50% derived from a hash of `(addr, attempt)` —
/// no RNG, so tests replay exactly, but distinct clients still spread
/// their reconnect storms.
fn retry_backoff(addr: &str, attempt: u32) -> Duration {
    let base = 50u64 << (attempt.saturating_sub(1)).min(5);
    let mut h = Fnv64::new();
    h.write(addr.as_bytes());
    h.write_u64(attempt as u64);
    let jitter = h.finish() % (base / 2 + 1);
    Duration::from_millis(base + jitter)
}

fn try_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), RequestError> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| RequestError::fatal(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| RequestError::fatal(format!("{addr}: no address")))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(10))
        .map_err(|e| classify_client_io(addr, &e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| RequestError::fatal(e.to_string()))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| classify_client_io(addr, &e))?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| classify_client_io(addr, &e))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| classify_client_io(addr, &e))?;
    let text =
        String::from_utf8(raw).map_err(|_| RequestError::fatal("non-utf8 response".to_string()))?;
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(|| {
        RequestError::fatal("malformed response (no header boundary)".to_string())
    })?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RequestError::fatal(format!("malformed status line in `{head}`")))?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            respond(&mut stream, 200, &req.body);
        });
        let (status, body) = request(&addr, "POST", "/echo", Some("{\"x\": 1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"x\": 1}");
        server.join().unwrap();
    }

    #[test]
    fn get_without_body_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.body, "");
            respond(&mut stream, 404, "{\"error\": \"nope\"}");
        });
        let (status, body) = request(&addr, "GET", "/missing", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("nope"));
        server.join().unwrap();
    }
}
