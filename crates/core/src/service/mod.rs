//! `dmdc serve` — the long-running simulation service.
//!
//! The daemon turns the experiment registry into a queryable HTTP/JSON
//! service: clients POST jobs (a single cell or a whole experiment),
//! poll their status, and fetch the finished report — the exact same
//! JSON documents the CLI's `--format json` emitters print. Everything
//! is std-only: the wire layer is the hand-rolled [`http`] module, the
//! documents go through the hand-rolled [`json`] parser, in the same
//! offline-shim spirit as the repo's proptest and criterion stand-ins.
//!
//! Layering:
//!
//! * [`json`] — a strict recursive-descent JSON parser + escaper;
//! * [`http`] — minimal HTTP/1.1 framing, server and client halves;
//! * [`jobs`] — the job model: spec parsing, quota accounting,
//!   job-level coalescing, sealed-envelope persistence, recovery, and
//!   execution through the ordinary [`Engine`](crate::runner::Engine);
//! * this module — the daemon itself: socket loop, routing, dispatcher
//!   thread, graceful drain on SIGTERM/`POST /shutdown`.
//!
//! Duplicate suppression happens twice, deliberately at two layers:
//! identical *submissions* merge onto one queued job here (see
//! [`jobs::JobManager::submit`]), and identical *cells* racing inside
//! the engine merge onto one simulation through the process-wide
//! [`SingleFlight`](crate::flight::SingleFlight) table. The first keeps
//! the queue and quota honest; the second protects even unrelated jobs
//! that happen to share cells.
//!
//! # Routes
//!
//! | Method, path            | Meaning                                       |
//! |-------------------------|-----------------------------------------------|
//! | `GET /health`           | liveness probe                                |
//! | `POST /jobs`            | submit a job (see [`jobs::JobSpec`])          |
//! | `GET /jobs`             | list all tracked jobs                         |
//! | `GET /jobs/<id>`        | one job's status document                     |
//! | `GET /jobs/<id>/result` | the stored result (202 while pending)         |
//! | `GET /metrics`          | service + cache + single-flight counters      |
//! | `POST /queue/pause`     | stop dispatching (submissions still enqueue)  |
//! | `POST /queue/resume`    | resume dispatching                            |
//! | `POST /shutdown`        | graceful drain, then exit                     |
//!
//! Status codes are part of the contract: 202 pending result, 404
//! unknown id, 405 wrong method, 408 stalled client (read deadline),
//! 409 draining, 413 oversized headers/body, 429 over quota, 500
//! failed job / internal error.

pub mod http;
pub mod jobs;
pub mod json;

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::CellCache;
use crate::flight::SingleFlight;
use crate::runner;
use crate::service::jobs::{JobManager, JobSpec, JobState, SubmitOutcome};

/// Process-wide stop flag: set by SIGTERM/SIGINT or `POST /shutdown`,
/// polled by the accept loop. A static because signal handlers can't
/// carry state.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Configuration for one [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port (printed at boot).
    pub addr: String,
    /// Root for durable state: `jobs/`, `results/` and the cell `cache/`.
    pub state_dir: PathBuf,
    /// Per-client in-flight (queued + running) job limit.
    pub quota: usize,
    /// Boot with the dispatcher paused (tests use this to stage
    /// deterministic queue states before anything runs).
    pub paused: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("target/dmdc-serve"),
            quota: 16,
            paused: false,
        }
    }
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_term as extern "C" fn(i32) as usize); // SIGTERM
        signal(2, on_term as extern "C" fn(i32) as usize); // SIGINT
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Runs the daemon until a graceful shutdown completes. Installs the
/// process-wide cell cache (under `state_dir/cache`, unless one is
/// already installed — `--cache` wins) and the single-flight table,
/// recovers any unfinished jobs from a previous life, prints the bound
/// address, and serves until SIGTERM/SIGINT or `POST /shutdown` drains
/// the queue.
pub fn serve(opts: &ServeOptions) -> Result<(), String> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    install_signal_handlers();

    if runner::global_cell_cache().is_none() {
        runner::set_global_cell_cache(Some(Arc::new(CellCache::new(opts.state_dir.join("cache")))));
    }
    if runner::global_flight().is_none() {
        runner::set_global_flight(Some(Arc::new(SingleFlight::new())));
    }

    let manager = Arc::new(JobManager::new(&opts.state_dir, opts.quota)?);
    manager.set_paused(opts.paused);
    let recovered = manager.recover();

    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("{}: {e}", opts.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    println!("dmdc serve: listening on {addr}");
    println!(
        "dmdc serve: state dir {} ({recovered} job(s) recovered)",
        opts.state_dir.display()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // One dispatcher: jobs run strictly one at a time in queue order
    // (each job is internally parallel through the engine's worker pool),
    // which is what makes killed-and-restarted runs byte-identical.
    let dispatcher = {
        let manager = Arc::clone(&manager);
        std::thread::spawn(move || {
            while let Some((id, spec)) = manager.next_job() {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| jobs::execute(&spec)))
                        .unwrap_or_else(|p| {
                            let msg = p
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| p.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "job panicked".to_string());
                            Err(format!("panic: {msg}"))
                        });
                manager.complete(&id, outcome);
            }
        })
    };

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let manager = Arc::clone(&manager);
                handlers.push(std::thread::spawn(move || handle(stream, &manager)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("accept: {e}")),
        }
        handlers.retain(|h| !h.is_finished());
    }

    // Graceful drain: stop accepting, finish every queued job, persist
    // every result, then exit.
    manager.begin_drain();
    for h in handlers {
        let _ = h.join();
    }
    dispatcher.join().map_err(|_| "dispatcher panicked")?;
    println!("dmdc serve: drained, exiting");
    Ok(())
}

/// Serves one connection: read a request, route it, write one response.
/// The per-connection read deadline plus the size caps in
/// [`http::read_request`] mean one slow, stalled or oversized client
/// costs a handler thread at most 30 seconds, answered with a structured
/// 408/413/400 — it can never pin the accept loop.
fn handle(mut stream: TcpStream, manager: &JobManager) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            http::respond(&mut stream, e.status(), &error_body(e.message()));
            return;
        }
    };
    let (status, body) = route(&request, manager);
    http::respond(&mut stream, status, &body);
}

fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", json::escape(message))
}

/// Routes one request to its `(status, body)`. Public so tests can pin
/// the wire contract without sockets.
pub fn route(request: &http::Request, manager: &JobManager) -> (u16, String) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/health") => (200, "{\"ok\": true}\n".to_string()),
        ("POST", "/jobs") => submit(request, manager),
        ("GET", "/jobs") => list_jobs(manager),
        ("GET", "/metrics") => (200, metrics_json(manager)),
        ("POST", "/queue/pause") => {
            manager.set_paused(true);
            (200, "{\"paused\": true}\n".to_string())
        }
        ("POST", "/queue/resume") => {
            manager.set_paused(false);
            (200, "{\"paused\": false}\n".to_string())
        }
        ("POST", "/shutdown") => {
            SHUTDOWN.store(true, Ordering::SeqCst);
            (200, "{\"draining\": true}\n".to_string())
        }
        ("GET", _) if path.starts_with("/jobs/") => job_route(path, manager),
        (_, "/health" | "/jobs" | "/metrics" | "/queue/pause" | "/queue/resume" | "/shutdown") => {
            (405, error_body(&format!("{method} not allowed on {path}")))
        }
        (_, _) if path.starts_with("/jobs/") => {
            (405, error_body(&format!("{method} not allowed on {path}")))
        }
        _ => (404, error_body(&format!("no route for {path}"))),
    }
}

/// `POST /jobs`: parse, validate, submit, answer with the job id.
fn submit(request: &http::Request, manager: &JobManager) -> (u16, String) {
    let doc = match json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&format!("bad JSON: {e}"))),
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(e) => return (400, error_body(&e)),
    };
    let priority = match doc.get("priority") {
        None => 100,
        Some(v) => match v.as_u64() {
            Some(p @ 0..=255) => p as u8,
            _ => return (400, error_body("`priority` must be an integer in 0..=255")),
        },
    };
    let client = match doc.get("client") {
        None => "anonymous",
        Some(v) => match v.as_str() {
            Some(c) if !c.is_empty() => c,
            _ => return (400, error_body("`client` must be a non-empty string")),
        },
    };
    match manager.submit(spec, priority, client) {
        Ok(SubmitOutcome::Created(id)) => (
            200,
            format!(
                "{{\"id\": \"{}\", \"state\": \"queued\", \"coalesced\": false}}\n",
                json::escape(&id)
            ),
        ),
        Ok(SubmitOutcome::Coalesced(id)) => {
            let state = manager.state(&id).map(|s| s.token()).unwrap_or("queued");
            (
                200,
                format!(
                    "{{\"id\": \"{}\", \"state\": \"{state}\", \"coalesced\": true}}\n",
                    json::escape(&id)
                ),
            )
        }
        Ok(SubmitOutcome::OverQuota {
            client,
            active,
            limit,
        }) => (
            429,
            format!(
                "{{\"error\": \"quota exceeded\", \"client\": \"{}\", \
                 \"active\": {active}, \"limit\": {limit}}}\n",
                json::escape(&client)
            ),
        ),
        Err(e) if e.contains("draining") => (409, error_body(&e)),
        Err(e) => (500, error_body(&e)),
    }
}

/// `GET /jobs`: every tracked job's status document, in id order.
fn list_jobs(manager: &JobManager) -> (u16, String) {
    let mut out = String::from("{\"jobs\": [");
    for (i, id) in manager.job_ids().iter().enumerate() {
        let Some(status) = manager.status_json(id) else {
            continue;
        };
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(status.trim_end());
    }
    out.push_str("]}\n");
    (200, out)
}

/// `GET /jobs/<id>` and `GET /jobs/<id>/result`.
fn job_route(path: &str, manager: &JobManager) -> (u16, String) {
    let rest = &path["/jobs/".len()..];
    if let Some(id) = rest.strip_suffix("/result") {
        return match manager.state(id) {
            None => (404, error_body(&format!("unknown job `{id}`"))),
            Some(JobState::Queued | JobState::Running) => {
                (202, manager.status_json(id).unwrap_or_default())
            }
            Some(JobState::Done | JobState::Failed) => match manager.load_result(id) {
                Some((JobState::Done, payload)) => (200, payload),
                Some((_, payload)) => (500, payload),
                None => (500, error_body("result envelope missing or corrupt")),
            },
        };
    }
    match manager.status_json(rest) {
        Some(status) => (200, status),
        None => (404, error_body(&format!("unknown job `{rest}`"))),
    }
}

/// `GET /metrics`: service, queue, cache and single-flight counters in
/// one document.
fn metrics_json(manager: &JobManager) -> String {
    let c = manager.counters();
    let mut out = format!(
        "{{\"jobs\": {{\"submitted\": {}, \"coalesced\": {}, \"rejected\": {}, \
         \"completed\": {}, \"failed\": {}, \"recovered\": {}, \"queue_depth\": {}, \
         \"paused\": {}}}",
        c.submitted,
        c.coalesced,
        c.rejected,
        c.completed,
        c.failed,
        c.recovered,
        manager.queue_depth(),
        manager.paused()
    );
    if let Some(cache) = runner::global_cell_cache() {
        let cc = cache.counters();
        out.push_str(&format!(
            ", \"cache\": {{\"hits\": {}, \"misses\": {}, \"stores\": {}, \
             \"corrupt\": {}, \"quarantined\": {}}}",
            cc.hits, cc.misses, cc.stores, cc.corrupt, cc.quarantined
        ));
    }
    if let Some(flight) = runner::global_flight() {
        let fc = flight.counters();
        out.push_str(&format!(
            ", \"flight\": {{\"led\": {}, \"coalesced\": {}, \"waiting\": {}}}",
            fc.led,
            fc.coalesced,
            flight.waiting()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::PolicyKind;
    use dmdc_workloads::Scale;

    fn manager(tag: &str) -> (JobManager, PathBuf) {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("dmdc-serve-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        (JobManager::new(&dir, 4).unwrap(), dir)
    }

    fn post_jobs(manager: &JobManager, body: &str) -> (u16, String) {
        route(
            &http::Request {
                method: "POST".to_string(),
                path: "/jobs".to_string(),
                body: body.to_string(),
            },
            manager,
        )
    }

    fn get(manager: &JobManager, path: &str) -> (u16, String) {
        route(
            &http::Request {
                method: "GET".to_string(),
                path: path.to_string(),
                body: String::new(),
            },
            manager,
        )
    }

    #[test]
    fn submit_poll_fetch_through_the_router() {
        let (m, dir) = manager("router");
        m.set_paused(true);
        let (status, body) = post_jobs(
            &m,
            r#"{"kind": "cell", "workload": "histo", "policy": "dmdc-global", "client": "t"}"#,
        );
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("job-1"));
        assert_eq!(doc.get("coalesced").unwrap().as_bool(), Some(false));

        // Pending result polls as 202 with the status document.
        let (status, body) = get(&m, "/jobs/job-1/result");
        assert_eq!(status, 202);
        assert!(body.contains("\"state\": \"queued\""));

        // Identical submission coalesces onto the same id.
        let (status, body) = post_jobs(
            &m,
            r#"{"kind": "cell", "workload": "histo", "policy": "dmdc-global", "client": "u"}"#,
        );
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("job-1"));
        assert_eq!(doc.get("coalesced").unwrap().as_bool(), Some(true));

        // Complete it; the result route now returns the stored payload.
        m.complete("job-1", Ok("{\"report\": 1}\n".to_string()));
        let (status, body) = get(&m, "/jobs/job-1/result");
        assert_eq!((status, body.as_str()), (200, "{\"report\": 1}\n"));

        // Unknown ids are 404, wrong methods 405, unknown routes 404.
        assert_eq!(get(&m, "/jobs/job-99").0, 404);
        assert_eq!(get(&m, "/jobs/job-99/result").0, 404);
        assert_eq!(post_jobs(&m, "{}").0, 400);
        assert_eq!(
            route(
                &http::Request {
                    method: "DELETE".to_string(),
                    path: "/jobs".to_string(),
                    body: String::new(),
                },
                &m,
            )
            .0,
            405
        );
        assert_eq!(get(&m, "/nope").0, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_rejection_is_a_structured_429() {
        let (m, dir) = manager("quota429");
        m.set_paused(true);
        let body = |w: &str| {
            format!(
                "{{\"kind\": \"cell\", \"workload\": \"{w}\", \
                 \"policy\": \"baseline\", \"client\": \"greedy\"}}"
            )
        };
        for w in ["histo", "saxpy", "crc", "mm"] {
            assert_eq!(post_jobs(&m, &body(w)).0, 200);
        }
        let (status, reply) = post_jobs(&m, &body("fir"));
        assert_eq!(status, 429);
        let doc = json::parse(&reply).unwrap();
        assert_eq!(doc.get("client").unwrap().as_str(), Some("greedy"));
        assert_eq!(doc.get("active").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("limit").unwrap().as_u64(), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_document_parses_and_counts() {
        let (m, dir) = manager("metrics");
        m.set_paused(true);
        let spec = JobSpec::Cell {
            workload: "histo".to_string(),
            policy: PolicyKind::Baseline,
            config: 2,
            scale: Scale::Smoke,
            inval_rate: 0.0,
            sampled: false,
        };
        m.submit(spec.clone(), 100, "c").unwrap();
        m.submit(spec, 100, "c").unwrap(); // coalesces
        let doc = json::parse(&metrics_json(&m)).unwrap();
        let jobs = doc.get("jobs").unwrap();
        assert_eq!(jobs.get("submitted").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("coalesced").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("queue_depth").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("paused").unwrap().as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
