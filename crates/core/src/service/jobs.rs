//! Job model, durable queue state and execution for `dmdc serve`.
//!
//! A **job** is one unit of simulation work a client submitted over
//! HTTP: either a single (workload, policy, config) cell or a whole
//! registry experiment. The [`JobManager`] owns the complete lifecycle:
//!
//! * **submit** — parse and validate the request, account it against the
//!   client's quota, coalesce it onto an identical in-flight job if one
//!   exists (single-flight at the job level; see below), persist a
//!   sealed `jobs/<id>.job` envelope, and enqueue;
//! * **dispatch** — a worker pops jobs in priority order (FIFO within a
//!   priority) and executes them through the ordinary
//!   [`Engine`](crate::runner::Engine), which consults the process-wide
//!   cell cache and [`SingleFlight`](crate::flight::SingleFlight) table;
//! * **complete** — the rendered report (the same JSON the CLI's
//!   `--format json` emits) is persisted as a sealed
//!   `results/<id>.result` envelope before the job is marked done, so a
//!   crash can never lose a finished result;
//! * **recover** — on restart, every job envelope without a matching
//!   result envelope is re-enqueued in id order. Execution is
//!   deterministic and ids are sequential, so a killed-and-restarted
//!   daemon produces byte-identical results for the same submissions.
//!
//! **Coalescing invariant:** two submissions are *identical* iff their
//! canonical descriptions — simulator fingerprint ‖ workload ‖ full spec
//! — hash to the same key. While a job for a key is queued or running,
//! identical submissions return the *same job id* instead of new work;
//! the `jobs_coalesced` counter counts exactly those merged submissions,
//! so N concurrent identical submissions perform 1 simulation and count
//! N−1 coalesces. Once the job completes, the key is released — a later
//! identical submission becomes a new job (and is answered from the cell
//! cache rather than re-simulated).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use dmdc_ooo::{CoreConfig, SampleSpec, SimOptions};
use dmdc_workloads::{full_suite, Scale, SyntheticKernel, Workload};

use crate::cache::{self, Fnv64};
use crate::experiments::{self, PolicyKind};
use crate::queue::JobQueue;
use crate::report::{fmt, Report, Table};
use crate::runner::{Engine, RunSpec};
use crate::service::json::{self, Json};

/// What one job simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// One (workload, policy, config) cell.
    Cell {
        /// Workload name (`histo`, `saxpy`, `synthetic`, ...).
        workload: String,
        /// Dependence-checking design.
        policy: PolicyKind,
        /// Machine configuration (1, 2 or 3).
        config: u8,
        /// Workload scale.
        scale: Scale,
        /// Injected invalidations per kilocycle (0 = none).
        inval_rate: f64,
        /// SMARTS-style sampled simulation instead of exact.
        sampled: bool,
    },
    /// A whole registry experiment.
    Experiment {
        /// Registry id (`fig2`, `table6`, ...).
        id: String,
        /// Workload scale.
        scale: Scale,
    },
}

/// Stable scale token (`smoke`/`default`/`large`/`full`).
pub fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Default => "default",
        Scale::Large => "large",
        Scale::Full => "full",
    }
}

/// Parses a [`scale_token`].
pub fn parse_scale(token: &str) -> Result<Scale, String> {
    match token {
        "smoke" => Ok(Scale::Smoke),
        "default" => Ok(Scale::Default),
        "large" => Ok(Scale::Large),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale `{other}`")),
    }
}

impl JobSpec {
    /// The canonical one-line description the coalescing key hashes.
    /// Everything that can influence the result appears here; the
    /// simulator fingerprint joins at hash time (see [`JobSpec::key`]).
    pub fn canonical(&self) -> String {
        match self {
            JobSpec::Cell {
                workload,
                policy,
                config,
                scale,
                inval_rate,
                sampled,
            } => format!(
                "cell workload={workload} policy={} config={config} scale={} inval={inval_rate} sampled={sampled}",
                policy.token(),
                scale_token(*scale),
            ),
            JobSpec::Experiment { id, scale } => {
                format!("experiment id={id} scale={}", scale_token(*scale))
            }
        }
    }

    /// The single-flight coalescing key: fingerprint ‖ canonical spec.
    pub fn key(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(cache::default_fingerprint().as_bytes());
        h.write(b"\0");
        h.write(self.canonical().as_bytes());
        h.finish()
    }

    /// The spec as a JSON object (the `spec` member of job documents).
    pub fn to_json(&self) -> String {
        match self {
            JobSpec::Cell {
                workload,
                policy,
                config,
                scale,
                inval_rate,
                sampled,
            } => format!(
                "{{\"kind\": \"cell\", \"workload\": \"{}\", \"policy\": \"{}\", \
                 \"config\": {config}, \"scale\": \"{}\", \"inval_rate\": {inval_rate}, \
                 \"sampled\": {sampled}}}",
                json::escape(workload),
                json::escape(&policy.token()),
                scale_token(*scale),
            ),
            JobSpec::Experiment { id, scale } => format!(
                "{{\"kind\": \"experiment\", \"id\": \"{}\", \"scale\": \"{}\"}}",
                json::escape(id),
                scale_token(*scale),
            ),
        }
    }

    /// Parses and validates a spec object (the body of `POST /jobs`, or
    /// the `spec` member of a persisted job document).
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing `kind` (cell or experiment)")?;
        let scale = parse_scale(
            doc.get("scale")
                .map(|s| s.as_str().ok_or("`scale` must be a string"))
                .transpose()?
                .unwrap_or("smoke"),
        )?;
        match kind {
            "cell" => {
                let workload = doc
                    .get("workload")
                    .and_then(Json::as_str)
                    .ok_or("cell jobs need a `workload`")?
                    .to_string();
                if !workload_exists(&workload) {
                    return Err(format!("unknown workload `{workload}`"));
                }
                let policy = PolicyKind::parse_token(
                    doc.get("policy")
                        .and_then(Json::as_str)
                        .ok_or("cell jobs need a `policy`")?,
                )?;
                let config = match doc.get("config") {
                    None => 2,
                    Some(v) => match v.as_u64() {
                        Some(c @ 1..=3) => c as u8,
                        _ => return Err("`config` must be 1, 2 or 3".to_string()),
                    },
                };
                let inval_rate = match doc.get("inval_rate") {
                    None => 0.0,
                    Some(v) => v
                        .as_f64()
                        .filter(|r| r.is_finite() && *r >= 0.0)
                        .ok_or("`inval_rate` must be a non-negative number")?,
                };
                let sampled = match doc.get("sampled") {
                    None => false,
                    Some(v) => v.as_bool().ok_or("`sampled` must be a boolean")?,
                };
                Ok(JobSpec::Cell {
                    workload,
                    policy,
                    config,
                    scale,
                    inval_rate,
                    sampled,
                })
            }
            "experiment" => {
                let id = doc
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("experiment jobs need an `id`")?
                    .to_string();
                if experiments::find_experiment(&id).is_none() {
                    return Err(format!("unknown experiment `{id}` (see `dmdc list`)"));
                }
                Ok(JobSpec::Experiment { id, scale })
            }
            other => Err(format!("unknown job kind `{other}` (cell or experiment)")),
        }
    }
}

/// Whether `name` resolves to a runnable workload. Checked against the
/// smoke-scale suite: the name set is scale-independent, and smoke-scale
/// construction is cheap.
fn workload_exists(name: &str) -> bool {
    name == "synthetic" || full_suite(Scale::Smoke).iter().any(|w| w.name == name)
}

/// Materializes the workload for a cell job (mirrors the CLI's
/// resolution, including the parameterized `synthetic` kernel).
fn build_workload(name: &str, scale: Scale) -> Result<Workload, String> {
    if name == "synthetic" {
        return Ok(SyntheticKernel::new(20_000 * scale.factor())
            .branch_noise(true)
            .build());
    }
    full_suite(scale)
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload `{name}`"))
}

fn build_config(config: u8) -> CoreConfig {
    match config {
        1 => CoreConfig::config1(),
        3 => CoreConfig::config3(),
        _ => CoreConfig::config2(),
    }
}

/// Executes one job to its result payload — the exact JSON document the
/// CLI's `--format json` emitters produce for the same work. `Err` is a
/// human-readable failure (quarantined cells, unknown ids) that becomes
/// a `failed` job, never a dead daemon.
pub fn execute(spec: &JobSpec) -> Result<String, String> {
    match spec {
        JobSpec::Cell {
            workload,
            policy,
            config,
            scale,
            inval_rate,
            sampled,
        } => {
            let w = build_workload(workload, *scale)?;
            let core = build_config(*config);
            // The sampling mode is set on the spec itself, never through
            // the process-wide default: the daemon is long-lived and
            // concurrent, and `RunSpec::opts` is what cache and journal
            // keys hash.
            let opts = SimOptions {
                inval_per_kcycle: *inval_rate,
                sampling: if *sampled {
                    SampleSpec::standard()
                } else {
                    SampleSpec::EXACT
                },
                ..SimOptions::default()
            };
            let workloads = [w];
            let engine = Engine::new(&workloads);
            let spec = RunSpec {
                workload: 0,
                config: core.clone(),
                policy: policy.clone(),
                opts,
            };
            let cell = engine
                .try_run_cell(&spec)
                .map_err(|f| format!("[{}] {}", f.kind, f.detail))?;
            let mut t = Table::new(format!(
                "cell {} under {policy:?} on {}",
                workloads[0].name, core.name
            ));
            t.headers([
                "workload",
                "group",
                "IPC",
                "replays/1M",
                "safe stores",
                "safe loads",
            ]);
            let s = &cell.stats;
            let row = if s.is_sampled() {
                let sp = &s.sampling;
                [
                    fmt::f2_ci(s.ipc(), sp.ipc_ci()),
                    fmt::f1_ci(
                        s.per_million(s.policy.replays.total()),
                        sp.replays_per_m_ci(),
                    ),
                    fmt::pct_ci(s.policy.store_filter_rate(), sp.filter_rate_ci()),
                    fmt::pct_ci(s.policy.safe_load_rate(), sp.safe_load_rate_ci()),
                ]
            } else {
                [
                    fmt::f2(s.ipc()),
                    fmt::f1(s.per_million(s.policy.replays.total())),
                    fmt::pct(s.policy.store_filter_rate()),
                    fmt::pct(s.policy.safe_load_rate()),
                ]
            };
            let [ipc, replays, stores, loads] = row;
            t.row([
                cell.workload.clone(),
                cell.group.to_string(),
                ipc,
                replays,
                stores,
                loads,
            ]);
            Ok(Report::single("cell", t).json())
        }
        JobSpec::Experiment { id, scale } => {
            let exp = experiments::find_experiment(id)
                .ok_or_else(|| format!("unknown experiment `{id}`"))?;
            let report = experiments::run_experiment(exp, *scale);
            if report.has_failures() {
                return Err(format!(
                    "{} cell(s) quarantined; report: {}",
                    report.failures().len(),
                    report.json()
                ));
            }
            Ok(report.json())
        }
    }
}

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Being executed right now.
    Running,
    /// Finished; the result envelope holds the report.
    Done,
    /// Finished unsuccessfully; the result envelope holds the error.
    Failed,
}

impl JobState {
    /// Stable wire token.
    pub fn token(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
struct JobRecord {
    spec: JobSpec,
    priority: u8,
    client: String,
    state: JobState,
    key: u64,
    ticket: Option<u64>,
}

/// The outcome of one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// A new job was enqueued.
    Created(String),
    /// An identical job was already in flight; this submission merged
    /// onto it (the returned id is the in-flight job's).
    Coalesced(String),
    /// The client is at its in-flight quota; nothing was enqueued.
    OverQuota {
        /// The rejected client.
        client: String,
        /// The client's current in-flight (queued + running) job count.
        active: usize,
        /// The configured per-client limit.
        limit: usize,
    },
}

/// Monotonic service counters (all since daemon start; persisted state
/// contributes through `recovered`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceCounters {
    /// Submissions that created a new job.
    pub submitted: u64,
    /// Submissions merged onto an identical in-flight job.
    pub coalesced: u64,
    /// Submissions rejected for quota.
    pub rejected: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that finished with a failure.
    pub failed: u64,
    /// Jobs re-enqueued from a previous daemon life at startup.
    pub recovered: u64,
}

#[derive(Debug, Default)]
struct Inner {
    queue: JobQueue<String>,
    jobs: HashMap<String, JobRecord>,
    active_by_key: HashMap<u64, String>,
    active_per_client: HashMap<String, usize>,
    next_id: u64,
    paused: bool,
    draining: bool,
    running: Option<String>,
}

/// The daemon's job table: durable, quota-accounted, coalescing. See the
/// module docs for the lifecycle.
pub struct JobManager {
    dir: PathBuf,
    quota: usize,
    inner: Mutex<Inner>,
    work: Condvar,
    submitted: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    recovered: AtomicU64,
}

impl JobManager {
    /// Opens (creating if needed) the job state under `dir`: sealed job
    /// envelopes in `dir/jobs/`, sealed result envelopes in
    /// `dir/results/`. `quota` is the per-client in-flight job limit.
    pub fn new(dir: impl Into<PathBuf>, quota: usize) -> Result<JobManager, String> {
        let dir = dir.into();
        for sub in ["jobs", "results"] {
            std::fs::create_dir_all(dir.join(sub))
                .map_err(|e| format!("{}: {e}", dir.join(sub).display()))?;
        }
        Ok(JobManager {
            dir,
            quota: quota.max(1),
            inner: Mutex::new(Inner {
                next_id: 1,
                ..Inner::default()
            }),
            work: Condvar::new(),
            submitted: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        })
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn job_path(&self, id: &str) -> PathBuf {
        self.dir.join("jobs").join(format!("{id}.job"))
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.dir.join("results").join(format!("{id}.result"))
    }

    /// Replays the previous daemon life's job state: every persisted job
    /// is reloaded; jobs without a result envelope are re-enqueued **in
    /// id order** with their recorded priorities, so a restarted daemon
    /// executes them in the same order the original would have. Returns
    /// the number of re-enqueued jobs.
    pub fn recover(&self) -> usize {
        let jobs_dir = self.dir.join("jobs");
        let mut entries: Vec<(u64, String)> = Vec::new();
        if let Ok(read) = std::fs::read_dir(&jobs_dir) {
            for entry in read.flatten() {
                let name = entry.file_name();
                let Some(id) = name.to_str().and_then(|n| n.strip_suffix(".job")) else {
                    continue;
                };
                let Some(seq) = id.strip_prefix("job-").and_then(|n| n.parse().ok()) else {
                    continue;
                };
                entries.push((seq, id.to_string()));
            }
        }
        entries.sort_unstable();
        let mut requeued = 0;
        let mut inner = self.lock();
        for (seq, id) in entries {
            let Some(record) = self.load_job_record(&id) else {
                continue; // corrupt envelope: skip, never crash the daemon
            };
            inner.next_id = inner.next_id.max(seq + 1);
            let finished = self.load_result(&id);
            let mut record = record;
            match finished {
                Some((state, _)) => {
                    record.state = state;
                    inner.jobs.insert(id, record);
                }
                None => {
                    record.state = JobState::Queued;
                    let ticket = inner.queue.push(record.priority, id.clone());
                    record.ticket = Some(ticket);
                    inner.active_by_key.insert(record.key, id.clone());
                    *inner
                        .active_per_client
                        .entry(record.client.clone())
                        .or_insert(0) += 1;
                    inner.jobs.insert(id, record);
                    requeued += 1;
                }
            }
        }
        drop(inner);
        self.recovered.fetch_add(requeued as u64, Ordering::Relaxed);
        if requeued > 0 {
            self.work.notify_all();
        }
        requeued
    }

    fn load_job_record(&self, id: &str) -> Option<JobRecord> {
        let text = std::fs::read_to_string(self.job_path(id)).ok()?;
        let body = cache::unseal(&text).ok()?;
        let doc = json::parse(body).ok()?;
        let spec = JobSpec::from_json(doc.get("spec")?).ok()?;
        let priority = doc.get("priority")?.as_u64()? as u8;
        let client = doc.get("client")?.as_str()?.to_string();
        let key = spec.key();
        Some(JobRecord {
            spec,
            priority,
            client,
            state: JobState::Queued,
            key,
            ticket: None,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Submits one parsed request. The sealed job envelope is on disk
    /// before the job becomes visible in the queue, so an accepted job
    /// survives any crash.
    pub fn submit(
        &self,
        spec: JobSpec,
        priority: u8,
        client: &str,
    ) -> Result<SubmitOutcome, String> {
        let key = spec.key();
        let mut inner = self.lock();
        if inner.draining {
            return Err("daemon is draining; not accepting jobs".to_string());
        }
        if let Some(id) = inner.active_by_key.get(&key) {
            let id = id.clone();
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ok(SubmitOutcome::Coalesced(id));
        }
        let active = inner.active_per_client.get(client).copied().unwrap_or(0);
        if active >= self.quota {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Ok(SubmitOutcome::OverQuota {
                client: client.to_string(),
                active,
                limit: self.quota,
            });
        }
        let id = format!("job-{}", inner.next_id);
        inner.next_id += 1;
        let body = format!(
            "{{\"id\": \"{}\", \"client\": \"{}\", \"priority\": {priority}, \"spec\": {}}}",
            json::escape(&id),
            json::escape(client),
            spec.to_json()
        );
        if !cache::write_sealed(&self.job_path(&id), &body, cache::tmp_tag(key)) {
            return Err(format!("could not persist job envelope for {id}"));
        }
        let ticket = inner.queue.push(priority, id.clone());
        inner.active_by_key.insert(key, id.clone());
        *inner
            .active_per_client
            .entry(client.to_string())
            .or_insert(0) += 1;
        inner.jobs.insert(
            id.clone(),
            JobRecord {
                spec,
                priority,
                client: client.to_string(),
                state: JobState::Queued,
                key,
                ticket: Some(ticket),
            },
        );
        drop(inner);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.work.notify_all();
        Ok(SubmitOutcome::Created(id))
    }

    /// Blocks until a job is available (or the manager is draining and
    /// empty, returning `None`). The returned job is marked running.
    pub fn next_job(&self) -> Option<(String, JobSpec)> {
        let mut inner = self.lock();
        loop {
            if !inner.paused {
                if let Some((_, id)) = inner.queue.pop() {
                    inner.running = Some(id.clone());
                    let record = inner.jobs.get_mut(&id).expect("queued job is tracked");
                    record.state = JobState::Running;
                    record.ticket = None;
                    return Some((id, record.spec.clone()));
                }
                if inner.draining {
                    return None;
                }
            } else if inner.draining {
                // Draining overrides a paused queue: finish the work.
                inner.paused = false;
                continue;
            }
            let (guard, _) = self
                .work
                .wait_timeout(inner, Duration::from_millis(100))
                .map(|(g, t)| (g, t.timed_out()))
                .unwrap_or_else(|poisoned| {
                    let (g, t) = poisoned.into_inner();
                    (g, t.timed_out())
                });
            inner = guard;
        }
    }

    /// Records a finished job: the sealed result envelope lands on disk
    /// first, then the job flips to done/failed and its key and quota
    /// slot are released.
    pub fn complete(&self, id: &str, outcome: Result<String, String>) {
        let (state, payload) = match outcome {
            Ok(report) => (JobState::Done, report),
            Err(error) => (
                JobState::Failed,
                format!("{{\"error\": \"{}\"}}\n", json::escape(&error)),
            ),
        };
        let body = format!("dmdc-result v1\nstate {}\n{payload}", state.token());
        let tag = cache::tmp_tag(Fnv64::new().write(id.as_bytes()).finish());
        cache::write_sealed(&self.result_path(id), &body, tag);
        let mut inner = self.lock();
        if inner.running.as_deref() == Some(id) {
            inner.running = None;
        }
        if let Some(record) = inner.jobs.get_mut(id) {
            record.state = state;
            let key = record.key;
            let client = record.client.clone();
            inner.active_by_key.remove(&key);
            if let Some(n) = inner.active_per_client.get_mut(&client) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    inner.active_per_client.remove(&client);
                }
            }
        }
        drop(inner);
        match state {
            JobState::Done => self.completed.fetch_add(1, Ordering::Relaxed),
            _ => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.work.notify_all();
    }

    /// Pauses or resumes dispatch. Paused, submissions still enqueue;
    /// nothing pops. (The black-box tests use this to make coalescing
    /// and quota behavior deterministic.)
    pub fn set_paused(&self, paused: bool) {
        self.lock().paused = paused;
        self.work.notify_all();
    }

    /// Whether dispatch is paused.
    pub fn paused(&self) -> bool {
        self.lock().paused
    }

    /// Switches to drain mode: no new submissions, the queue keeps
    /// popping (even if paused) until empty, then [`JobManager::next_job`]
    /// returns `None`.
    pub fn begin_drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        inner.paused = false;
        drop(inner);
        self.work.notify_all();
    }

    /// Whether drain mode is active.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Number of queued (not yet running) jobs.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Ids of all tracked jobs, in numeric id order.
    pub fn job_ids(&self) -> Vec<String> {
        let inner = self.lock();
        let mut ids: Vec<(u64, String)> = inner
            .jobs
            .keys()
            .filter_map(|id| {
                id.strip_prefix("job-")
                    .and_then(|n| n.parse().ok())
                    .map(|seq| (seq, id.clone()))
            })
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    /// The status document for one job, or `None` if unknown.
    pub fn status_json(&self, id: &str) -> Option<String> {
        let inner = self.lock();
        let record = inner.jobs.get(id)?;
        Some(format!(
            "{{\"id\": \"{}\", \"state\": \"{}\", \"priority\": {}, \"client\": \"{}\", \
             \"spec\": {}}}\n",
            json::escape(id),
            record.state.token(),
            record.priority,
            json::escape(&record.client),
            record.spec.to_json()
        ))
    }

    /// The state of one job, or `None` if unknown.
    pub fn state(&self, id: &str) -> Option<JobState> {
        self.lock().jobs.get(id).map(|r| r.state)
    }

    /// A finished job's persisted result: `(state, payload)`, where the
    /// payload is the byte-exact stored document (a report for done jobs,
    /// an error document for failed ones). `None` while unfinished or if
    /// the envelope is missing/corrupt.
    pub fn load_result(&self, id: &str) -> Option<(JobState, String)> {
        let text = std::fs::read_to_string(self.result_path(id)).ok()?;
        let body = cache::unseal(&text).ok()?;
        let rest = body.strip_prefix("dmdc-result v1\n")?;
        let (state_line, payload) = rest.split_once('\n')?;
        let state = match state_line.strip_prefix("state ")? {
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        };
        Some((state, payload.to_string()))
    }

    /// A snapshot of the service counters.
    pub fn counters(&self) -> ServiceCounters {
        ServiceCounters {
            submitted: self.submitted.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workload: &str) -> JobSpec {
        JobSpec::Cell {
            workload: workload.to_string(),
            policy: PolicyKind::DmdcGlobal,
            config: 2,
            scale: Scale::Smoke,
            inval_rate: 0.0,
            sampled: false,
        }
    }

    fn manager(tag: &str, quota: usize) -> (JobManager, PathBuf) {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("dmdc-jobs-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        (JobManager::new(&dir, quota).unwrap(), dir)
    }

    #[test]
    fn spec_json_roundtrip() {
        for s in [
            spec("histo"),
            JobSpec::Cell {
                workload: "synthetic".to_string(),
                policy: PolicyKind::Yla {
                    regs: 8,
                    line_interleaved: true,
                },
                config: 3,
                scale: Scale::Default,
                inval_rate: 2.5,
                sampled: true,
            },
            JobSpec::Experiment {
                id: "fig2".to_string(),
                scale: Scale::Smoke,
            },
        ] {
            let doc = json::parse(&s.to_json()).unwrap();
            assert_eq!(JobSpec::from_json(&doc).unwrap(), s);
        }
    }

    #[test]
    fn submission_validation_rejects_garbage() {
        for bad in [
            r#"{"kind": "cell"}"#,
            r#"{"kind": "cell", "workload": "nope", "policy": "baseline"}"#,
            r#"{"kind": "cell", "workload": "histo", "policy": "bogus"}"#,
            r#"{"kind": "cell", "workload": "histo", "policy": "baseline", "config": 9}"#,
            r#"{"kind": "experiment", "id": "not-an-experiment"}"#,
            r#"{"kind": "mystery"}"#,
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(
                JobSpec::from_json(&doc).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn identical_inflight_submissions_coalesce() {
        let (m, dir) = manager("coalesce", 16);
        let a = m.submit(spec("histo"), 100, "alice").unwrap();
        let SubmitOutcome::Created(id) = a else {
            panic!("first submission creates");
        };
        for _ in 0..3 {
            assert_eq!(
                m.submit(spec("histo"), 100, "bob").unwrap(),
                SubmitOutcome::Coalesced(id.clone())
            );
        }
        // A different spec is a new job.
        assert!(matches!(
            m.submit(spec("saxpy"), 100, "bob").unwrap(),
            SubmitOutcome::Created(_)
        ));
        let c = m.counters();
        assert_eq!((c.submitted, c.coalesced), (2, 3));
        // Completion releases the key: the next identical submission is new.
        m.set_paused(true);
        m.complete(&id, Ok("{}\n".to_string()));
        assert!(matches!(
            m.submit(spec("histo"), 100, "carol").unwrap(),
            SubmitOutcome::Created(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_limits_inflight_jobs_per_client() {
        let (m, dir) = manager("quota", 2);
        assert!(matches!(
            m.submit(spec("histo"), 100, "alice").unwrap(),
            SubmitOutcome::Created(_)
        ));
        assert!(matches!(
            m.submit(spec("saxpy"), 100, "alice").unwrap(),
            SubmitOutcome::Created(_)
        ));
        match m.submit(spec("crc"), 100, "alice").unwrap() {
            SubmitOutcome::OverQuota {
                client,
                active,
                limit,
            } => {
                assert_eq!((client.as_str(), active, limit), ("alice", 2, 2));
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // Another client is unaffected.
        assert!(matches!(
            m.submit(spec("crc"), 100, "bob").unwrap(),
            SubmitOutcome::Created(_)
        ));
        // Completing one of alice's jobs frees a slot. (A fresh spec —
        // `crc` would coalesce onto bob's in-flight job.)
        m.complete("job-1", Ok("{}\n".to_string()));
        assert!(matches!(
            m.submit(spec("mm"), 100, "alice").unwrap(),
            SubmitOutcome::Created(_)
        ));
        assert_eq!(m.counters().rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn priority_orders_dispatch_fifo_within() {
        let (m, dir) = manager("priority", 16);
        m.set_paused(true);
        m.submit(spec("histo"), 10, "c").unwrap(); // job-1
        m.submit(spec("saxpy"), 200, "c").unwrap(); // job-2
        m.submit(spec("crc"), 10, "c").unwrap(); // job-3
        m.set_paused(false);
        let order: Vec<String> = (0..3).map(|_| m.next_job().unwrap().0).collect();
        assert_eq!(order, ["job-2", "job-1", "job-3"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_requeues_unfinished_jobs_in_id_order() {
        let (m, dir) = manager("recover", 16);
        m.set_paused(true);
        m.submit(spec("histo"), 100, "alice").unwrap(); // job-1
        m.submit(spec("saxpy"), 100, "alice").unwrap(); // job-2
        m.submit(spec("crc"), 100, "bob").unwrap(); // job-3
        m.complete("job-2", Ok("{\"x\": 1}\n".to_string()));
        drop(m);
        // A fresh manager over the same state dir: job-2 is done on disk,
        // job-1 and job-3 come back queued, in id order.
        let m2 = JobManager::new(&dir, 16).unwrap();
        m2.set_paused(true);
        assert_eq!(m2.recover(), 2);
        assert_eq!(m2.counters().recovered, 2);
        assert_eq!(m2.state("job-2"), Some(JobState::Done));
        assert_eq!(
            m2.load_result("job-2"),
            Some((JobState::Done, "{\"x\": 1}\n".to_string()))
        );
        // Next ids continue after the recovered ones.
        let SubmitOutcome::Created(id) = m2.submit(spec("mm"), 100, "bob").unwrap() else {
            panic!("new job after recovery");
        };
        assert_eq!(id, "job-4");
        m2.set_paused(false);
        assert_eq!(m2.next_job().unwrap().0, "job-1");
        assert_eq!(m2.next_job().unwrap().0, "job-3");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_jobs_store_error_documents() {
        let (m, dir) = manager("failed", 16);
        m.submit(spec("histo"), 100, "c").unwrap();
        m.complete("job-1", Err("it broke".to_string()));
        let (state, payload) = m.load_result("job-1").unwrap();
        assert_eq!(state, JobState::Failed);
        let doc = json::parse(&payload).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("it broke"));
        assert_eq!(m.state("job-1"), Some(JobState::Failed));
        assert_eq!(m.counters().failed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_job_executes_to_report_json() {
        let s = spec("histo");
        let payload = execute(&s).unwrap();
        let doc = json::parse(&payload).unwrap();
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("cell"));
        let tables = doc.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        let rows = tables[0].get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("histo"));
    }
}
