//! Minimal JSON for the service wire format: a recursive-descent parser
//! into a small value model, plus the string escaper the emitters share.
//!
//! The repository is offline-only (no serde), and the service exchanges
//! small, flat documents — job submissions, status records, metrics — so
//! a few hundred lines of std-only JSON beats a vendored dependency. The
//! same parser doubles as the schema checker for the repository's
//! `BENCH_pr*.json` artifacts (`tests/bench_schema.rs`): anything it
//! rejects would also break a real consumer.
//!
//! Numbers are carried as `f64` (ample for every counter the service
//! exchanges; [`Json::as_u64`] refuses values that lost integer
//! precision). Object member order is preserved so round-trip tests can
//! compare structures deterministically.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` on other kinds.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal (the inverse
/// of what [`parse`] unescapes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document. Trailing non-whitespace is an
/// error, as is anything RFC 8259 would reject (with the usual lenience
/// of accepting any number `f64` can carry).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json: {what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("bad \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // One UTF-8 scalar: the input is a &str, so byte
                    // boundaries are valid; copy the whole char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ascii bytes");
        // Reject the shapes `f64::from_str` tolerates but JSON forbids:
        // a bare `-`, a leading/trailing dot, a dangling exponent.
        let digits = text.strip_prefix('-').unwrap_or(text);
        let ok = !text.is_empty()
            && text != "-"
            && !text.ends_with(['.', 'e', 'E', '+', '-'])
            && !text.contains("-.")
            && !text.starts_with('.')
            // JSON forbids leading zeros on a multi-digit integer part.
            && !(digits.len() > 1
                && digits.starts_with('0')
                && digits.as_bytes()[1].is_ascii_digit());
        if !ok {
            return Err(self.err("malformed number"));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let doc = parse(r#"{"b": [1, {"c": null}], "a": "x"}"#).unwrap();
        let members = doc.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(doc.get("a").unwrap().as_str(), Some("x"));
        let arr = doc.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("c"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndAé"));
        let pair = parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let doc = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(doc.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "-",
            "1.",
            ".5",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{\"a\":1} trailing",
            "[1 2]",
            "{\"a\" 1}",
            "\"\\ud800 lone\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn as_u64_guards_precision() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
