//! YLA-based filtering (paper §3): a small bank of *Youngest issued Load
//! Age* registers, interleaved by address bits, that lets most resolving
//! stores skip the associative load-queue search.

use dmdc_types::{Addr, Age, MemSpan};

use dmdc_ooo::{
    search_lq_for_premature_loads, CheckOutcome, CommitInfo, CommitKind, LoadQueue, MemDepPolicy,
    PolicyCtx, ReplayKind, StoreResolution,
};

/// How a YLA bank spreads addresses across its registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// By quad-word address bits — the paper's choice for store-load
    /// checking (Figure 2 shows it dominating line interleaving).
    QuadWord,
    /// By cache-line address bits (needed to bound invalidation-triggered
    /// checking windows, §4.3).
    CacheLine(u64),
}

/// A bank of YLA registers.
///
/// Register `i` holds the age of the youngest load issued so far whose
/// address maps to bank `i`; [`Age::OLDEST`] means "no load has issued".
/// A store is *safe* when it is younger than its bank's register: no
/// younger load to any conflicting address can have issued.
///
/// # Examples
///
/// ```
/// use dmdc_core::{Interleave, YlaBank};
/// use dmdc_types::{Addr, Age};
///
/// let mut bank = YlaBank::new(8, Interleave::QuadWord);
/// bank.update(Addr(0x100), Age(10));
/// assert!(!bank.is_safe_store(Addr(0x100), Age(5)), "younger load has issued");
/// assert!(bank.is_safe_store(Addr(0x100), Age(11)));
/// ```
#[derive(Debug, Clone)]
pub struct YlaBank {
    regs: Vec<Age>,
    interleave: Interleave,
}

impl YlaBank {
    /// Creates a bank of `count` registers (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `count` is not a power of two, or if a cache-line
    /// interleave has a non-power-of-two line size.
    pub fn new(count: u32, interleave: Interleave) -> YlaBank {
        assert!(
            count.is_power_of_two(),
            "YLA register count must be a power of two"
        );
        if let Interleave::CacheLine(bytes) = interleave {
            assert!(bytes.is_power_of_two(), "line size must be a power of two");
        }
        YlaBank {
            regs: vec![Age::OLDEST; count as usize],
            interleave,
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the bank has no registers (never true; see [`YlaBank::new`]).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    fn bank_of(&self, addr: Addr) -> usize {
        let block = match self.interleave {
            Interleave::QuadWord => addr.quad_word(),
            Interleave::CacheLine(bytes) => addr.cache_line(bytes),
        };
        (block as usize) & (self.regs.len() - 1)
    }

    /// Records an issuing load.
    pub fn update(&mut self, addr: Addr, age: Age) {
        let b = self.bank_of(addr);
        if age.is_younger_than(self.regs[b]) {
            self.regs[b] = age;
        }
    }

    /// The recorded youngest-load age for `addr`'s bank (the checking-window
    /// boundary DMDC uses).
    pub fn value_for(&self, addr: Addr) -> Age {
        self.regs[self.bank_of(addr)]
    }

    /// Whether a store resolving at `age` to `addr` is provably safe.
    pub fn is_safe_store(&self, addr: Addr, age: Age) -> bool {
        self.value_for(addr).is_older_than(age)
    }

    /// Squash repair (paper §3): clamp every register down to the age of
    /// the youngest surviving instruction. Registers older than that are
    /// left alone — lowering further would be unsound, not just
    /// ineffective.
    pub fn on_squash(&mut self, youngest_surviving: Age) {
        for r in &mut self.regs {
            if r.is_younger_than(youngest_surviving) {
                *r = youngest_surviving;
            }
        }
    }

    /// Audit-mode conservativeness check (invariant 3 of `dmdc_ooo::audit`):
    /// every issued in-flight load must be covered by its bank register —
    /// `value_for(addr)` at least as young as the load. A register that
    /// under-approximates would let a store between the two ages be
    /// declared safe unsoundly. Returns the first uncovered load.
    pub fn find_uncovered_load(&self, lq: &LoadQueue) -> Option<(Age, MemSpan)> {
        for e in lq.iter() {
            let Some(span) = e.span.filter(|_| e.issued) else {
                continue;
            };
            if self.value_for(span.addr).is_older_than(e.age) {
                return Some((e.age, span));
            }
        }
        None
    }
}

/// The YLA-filtered conventional design: an associative LQ whose searches
/// are gated by a [`YlaBank`]. This is the paper's §3 design, evaluated in
/// Figures 2 and 3.
///
/// # Examples
///
/// ```
/// use dmdc_core::{Interleave, YlaPolicy};
/// use dmdc_ooo::MemDepPolicy;
///
/// let p = YlaPolicy::new(8, Interleave::QuadWord);
/// assert!(p.needs_associative_lq());
/// assert!(p.name().contains("yla"));
/// ```
#[derive(Debug, Clone)]
pub struct YlaPolicy {
    bank: YlaBank,
    name: String,
}

impl YlaPolicy {
    /// A filter with `regs` registers and the given interleaving, in front
    /// of a conventional CAM load queue.
    pub fn new(regs: u32, interleave: Interleave) -> YlaPolicy {
        let kind = match interleave {
            Interleave::QuadWord => "qw",
            Interleave::CacheLine(_) => "line",
        };
        YlaPolicy {
            bank: YlaBank::new(regs, interleave),
            name: format!("yla-{regs}-{kind}"),
        }
    }
}

impl MemDepPolicy for YlaPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        _lq: &mut LoadQueue,
    ) -> Option<Age> {
        if safe {
            ctx.stats.safe_loads += 1;
        } else {
            ctx.stats.unsafe_loads += 1;
        }
        self.bank.update(span.addr, age);
        ctx.energy.yla_writes += 1;
        None
    }

    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        lq: &LoadQueue,
    ) -> StoreResolution {
        ctx.energy.yla_reads += 1;
        if self.bank.is_safe_store(span.addr, age) {
            ctx.stats.safe_stores += 1;
            return StoreResolution {
                safe: true,
                replay_from: None,
            };
        }
        ctx.stats.unsafe_stores += 1;
        ctx.energy.lq_cam_searches += 1;
        let replay_from = search_lq_for_premature_loads(lq, age, span);
        if replay_from.is_some() {
            ctx.stats.replays.record(ReplayKind::TrueViolation);
        }
        StoreResolution {
            safe: false,
            replay_from,
        }
    }

    fn on_commit(&mut self, _ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome {
        if info.kind == CommitKind::Load {
            debug_assert!(info.value_correct, "YLA filtering let a stale load commit");
        }
        CheckOutcome::Ok
    }

    fn on_squash(&mut self, _ctx: &mut PolicyCtx<'_>, youngest_surviving: Age) {
        self.bank.on_squash(youngest_surviving);
    }

    fn audit_self(&self, lq: &LoadQueue) -> Option<String> {
        let (age, span) = self.bank.find_uncovered_load(lq)?;
        Some(format!(
            "YLA register under-approximates issued load age {} at {:#x}",
            age.0, span.addr.0
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_ooo::{EnergyCounters, PolicyStats};
    use dmdc_types::{AccessSize, Cycle};

    fn span(addr: u64, bytes: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::from_bytes(bytes).unwrap())
    }

    #[test]
    fn bank_tracks_youngest_per_bank() {
        let mut b = YlaBank::new(4, Interleave::QuadWord);
        b.update(Addr(0x00), Age(10)); // qw 0 -> bank 0
        b.update(Addr(0x08), Age(20)); // qw 1 -> bank 1
        b.update(Addr(0x00), Age(5)); // older: must not regress
        assert_eq!(b.value_for(Addr(0x00)), Age(10));
        assert_eq!(b.value_for(Addr(0x08)), Age(20));
        assert_eq!(b.value_for(Addr(0x10)), Age::OLDEST, "bank 2 untouched");
    }

    #[test]
    fn safety_is_per_bank() {
        let mut b = YlaBank::new(4, Interleave::QuadWord);
        b.update(Addr(0x00), Age(10));
        // Bank 0: store older than 10 is unsafe, younger is safe.
        assert!(
            !b.is_safe_store(Addr(0x04), Age(9)),
            "same quad word, younger load issued"
        );
        assert!(b.is_safe_store(Addr(0x00), Age(11)));
        // Bank 1 never saw a load: everything is safe.
        assert!(b.is_safe_store(Addr(0x08), Age(1)));
    }

    #[test]
    fn aliasing_across_banks_is_conservative() {
        // With 2 banks, quad words 0 and 2 share bank 0: a load to qw 2
        // makes stores to qw 0 unsafe. Conservative, never unsound.
        let mut b = YlaBank::new(2, Interleave::QuadWord);
        b.update(Addr(0x10), Age(50)); // qw 2 -> bank 0
        assert!(!b.is_safe_store(Addr(0x00), Age(40)));
    }

    #[test]
    fn line_interleaving_groups_by_line() {
        let mut b = YlaBank::new(4, Interleave::CacheLine(128));
        b.update(Addr(0x100), Age(10)); // line 2 -> bank 2
        assert!(!b.is_safe_store(Addr(0x17F), Age(5)), "same 128B line");
        assert!(b.is_safe_store(Addr(0x180), Age(5)), "next line, bank 3");
    }

    #[test]
    fn squash_clamps_only_younger_registers() {
        let mut b = YlaBank::new(2, Interleave::QuadWord);
        b.update(Addr(0x00), Age(100));
        b.update(Addr(0x08), Age(10));
        b.on_squash(Age(50));
        assert_eq!(b.value_for(Addr(0x00)), Age(50), "clamped down");
        assert_eq!(b.value_for(Addr(0x08)), Age(10), "older register untouched");
    }

    #[test]
    fn more_registers_filter_no_less() {
        // Identical access stream: an 8-register bank must classify at
        // least as many stores safe as a 1-register bank.
        let stream: Vec<(u64, u64)> = (0..200)
            .map(|i| (0x1000 + (i * 37 % 64) * 8, i + 1))
            .collect();
        let mut safe1 = 0;
        let mut safe8 = 0;
        let mut b1 = YlaBank::new(1, Interleave::QuadWord);
        let mut b8 = YlaBank::new(8, Interleave::QuadWord);
        for &(addr, age) in &stream {
            if age % 3 == 0 {
                // a store resolving slightly older than current age
                let store_age = Age(age.saturating_sub(2).max(1));
                if b1.is_safe_store(Addr(addr), store_age) {
                    safe1 += 1;
                }
                if b8.is_safe_store(Addr(addr), store_age) {
                    safe8 += 1;
                }
            } else {
                b1.update(Addr(addr), Age(age));
                b8.update(Addr(addr), Age(age));
            }
        }
        assert!(
            safe8 >= safe1,
            "8 regs ({safe8}) must filter >= 1 reg ({safe1})"
        );
    }

    #[test]
    fn policy_filters_and_counts() {
        let mut p = YlaPolicy::new(8, Interleave::QuadWord);
        let mut e = EnergyCounters::default();
        let mut s = PolicyStats::default();
        let mut lq = LoadQueue::new(8);
        let mut ctx = PolicyCtx {
            cycle: Cycle(0),
            energy: &mut e,
            stats: &mut s,
        };

        // Load at age 10 to 0x100.
        lq.allocate(Age(10));
        lq.entry_mut(Age(10)).unwrap().issued = true;
        lq.entry_mut(Age(10)).unwrap().span = Some(span(0x100, 8));
        p.on_load_issue(&mut ctx, Age(10), span(0x100, 8), false, &mut lq);

        // Store younger than the load: safe, no search.
        let r = p.on_store_resolve(&mut ctx, Age(11), span(0x100, 8), &lq);
        assert!(r.safe);
        assert_eq!(r.replay_from, None);

        // Store older than the load, same bank: must search and find it.
        let r = p.on_store_resolve(&mut ctx, Age(5), span(0x100, 8), &lq);
        assert!(!r.safe);
        assert_eq!(r.replay_from, Some(Age(10)));
        assert_eq!(e.lq_cam_searches, 1, "only the unsafe store searched");
        assert_eq!(s.safe_stores, 1);
        assert_eq!(s.unsafe_stores, 1);
        assert_eq!(e.yla_writes, 1);
        assert_eq!(e.yla_reads, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bank_count_validated() {
        YlaBank::new(3, Interleave::QuadWord);
    }
}
