//! Distributed suite execution: a lease-based coordinator/worker fleet
//! over the shared content-addressed cell store.
//!
//! The coordinator publishes an experiment's cell list as leases; `dmdc
//! worker --connect <addr>` processes claim them over the PR9 HTTP
//! layer, execute cells through the ordinary [`Engine`], publish results
//! into the shared [`CellCache`], and heartbeat while they work. The
//! design follows the detectable-recoverability discipline the roadmap
//! cites: every operation is idempotent and keyed by durable state (the
//! content-addressed cell key), so a worker dying at any instant costs
//! nothing but a forfeited lease.
//!
//! The protocol, in one screen:
//!
//! * **`GET /plan`** — the plan descriptor (experiment id or suite
//!   parameters), the simulator fingerprint (a mismatched worker refuses
//!   to participate, exactly like journal resume) and the shared cache
//!   directory. Workers rebuild the *identical* spec list locally from
//!   the descriptor — specs never travel over the wire.
//! * **`POST /claim`** — a lease `{index, attempt, ttl_ms}`, or
//!   `{wait}` when everything is leased out, or `{done}`.
//! * **`POST /heartbeat`** — extends the lease; answers `{lost}` once
//!   the lease has expired under the worker.
//! * **`POST /complete`** — reports success (the result is already in
//!   the store; the coordinator *verifies* it unseals before accepting)
//!   or a structured failure. Completions from expired lease holders are
//!   rejected as stale — double publication into a content-addressed
//!   store is benign, double *accounting* is not.
//!
//! Expired leases (missed heartbeats, kill -9, hangs) are reclaimed and
//! re-issued with bounded retries and exponential backoff; a cell that
//! outlives [`LeaseConfig::poison_after`] distinct dying workers (or the
//! attempt bound) is **poisoned** — quarantined through the PR5 failure
//! table instead of wedging the run. When the whole fleet goes quiet for
//! a grace period the coordinator degrades to local serial execution on
//! its own thread, so the run terminates with zero workers, all workers
//! lost, or anything in between.
//!
//! The final report is assembled by running every cell through
//! [`Engine::try_run_cell`] in spec order — journal, then store, then
//! (for anything the fleet failed to publish) local simulation — so the
//! output is byte-identical to the single-process path by construction:
//! reducers consume the same verified [`CellResult`]s in the same order,
//! wherever they were computed.
//!
//! Every lease transition is recorded as a sealed envelope under the run
//! directory (`<run>/leases/<index>.lease`), the same tamper-evident
//! format as the journal, so a crashed run leaves an auditable trail of
//! which worker held what when.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dmdc_workloads::{full_suite, Scale};

use crate::cache::{default_fingerprint, seal, workload_digest, CellCache};
use crate::cell::{CellFailure, CellResult, FailureKind};
use crate::experiments::{Experiment, Plan, PolicyKind, Variant};
use crate::recovery::{self, RecoveryKind};
use crate::report::Report;
use crate::runner::{self, Engine};
use crate::service::http;
use crate::service::jobs::{parse_scale, scale_token};
use crate::service::json::{self, Json};

/// Configuration for one distributed run.
#[derive(Debug, Clone)]
pub struct DistribOptions {
    /// Coordinator bind address; port 0 picks an ephemeral port (the
    /// bound address is printed to stderr for external workers).
    pub bind: String,
    /// Worker processes the coordinator spawns itself (`dmdc worker
    /// --connect`). External workers can join at the printed address
    /// regardless.
    pub workers: usize,
    /// Lease time-to-live: a lease not heartbeated within this window is
    /// reclaimed and re-issued.
    pub lease_ttl: Duration,
    /// Distinct workers that must die holding a cell's lease before the
    /// cell is poisoned (quarantined as a structured failure).
    pub poison_after: u32,
    /// Fleet-silence grace period after which the coordinator claims
    /// leases itself and executes serially (the all-workers-lost
    /// degradation path).
    pub grace: Duration,
    /// Run id for the durable lease records (under
    /// `target/dmdc-runs/<id>/leases/`); the installed journal's run
    /// directory wins when one is present.
    pub run_id: String,
    /// `--inject-faults` spec forwarded verbatim to spawned workers, so
    /// the chaos harness reaches the processes where worker-side faults
    /// (kill-after, dropped heartbeats, stale claims, partial uploads)
    /// actually fire.
    pub worker_faults: Option<String>,
}

impl Default for DistribOptions {
    fn default() -> DistribOptions {
        DistribOptions {
            bind: "127.0.0.1:0".to_string(),
            workers: 0,
            lease_ttl: Duration::from_secs(5),
            poison_after: 3,
            grace: Duration::from_secs(10),
            run_id: "distrib".to_string(),
            worker_faults: None,
        }
    }
}

/// How a worker rebuilds the coordinator's exact cell list without specs
/// ever crossing the wire: both ends run the same binary (enforced by
/// the fingerprint check), so planning is deterministic from this small
/// descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDescriptor {
    /// A registry experiment at a scale.
    Experiment {
        /// Registry id (`fig2`, `table6`, ...).
        id: String,
        /// Workload scale.
        scale: Scale,
        /// Whether the process-wide default sampling mode is on.
        sampled: bool,
    },
    /// The `dmdc suite` matrix: every workload under one policy/config.
    Suite {
        /// Dependence-checking policy.
        policy: PolicyKind,
        /// Machine configuration (1, 2 or 3).
        config: u8,
        /// Workload scale.
        scale: Scale,
        /// Whether the process-wide default sampling mode is on.
        sampled: bool,
    },
}

impl PlanDescriptor {
    /// Whether sampled simulation is on for this plan.
    pub fn sampled(&self) -> bool {
        match self {
            PlanDescriptor::Experiment { sampled, .. } => *sampled,
            PlanDescriptor::Suite { sampled, .. } => *sampled,
        }
    }

    /// Serializes the descriptor for `GET /plan`.
    pub fn to_json(&self) -> String {
        match self {
            PlanDescriptor::Experiment { id, scale, sampled } => format!(
                "{{\"kind\": \"experiment\", \"id\": \"{}\", \"scale\": \"{}\", \
                 \"sampled\": {sampled}}}",
                json::escape(id),
                scale_token(*scale)
            ),
            PlanDescriptor::Suite {
                policy,
                config,
                scale,
                sampled,
            } => format!(
                "{{\"kind\": \"suite\", \"policy\": \"{}\", \"config\": {config}, \
                 \"scale\": \"{}\", \"sampled\": {sampled}}}",
                json::escape(&policy.token()),
                scale_token(*scale)
            ),
        }
    }

    /// Parses a descriptor back from the `GET /plan` document.
    pub fn from_json(doc: &Json) -> Result<PlanDescriptor, String> {
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("plan descriptor has no `kind`")?;
        let scale = parse_scale(
            doc.get("scale")
                .and_then(Json::as_str)
                .ok_or("plan descriptor has no `scale`")?,
        )?;
        let sampled = doc
            .get("sampled")
            .and_then(Json::as_bool)
            .ok_or("plan descriptor has no `sampled`")?;
        match kind {
            "experiment" => Ok(PlanDescriptor::Experiment {
                id: doc
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("experiment descriptor has no `id`")?
                    .to_string(),
                scale,
                sampled,
            }),
            "suite" => {
                let policy = PolicyKind::parse_token(
                    doc.get("policy")
                        .and_then(Json::as_str)
                        .ok_or("suite descriptor has no `policy`")?,
                )?;
                let config = match doc.get("config").and_then(Json::as_u64) {
                    Some(c @ 1..=3) => c as u8,
                    _ => return Err("suite descriptor `config` must be 1, 2 or 3".to_string()),
                };
                Ok(PlanDescriptor::Suite {
                    policy,
                    config,
                    scale,
                    sampled,
                })
            }
            other => Err(format!("unknown plan descriptor kind `{other}`")),
        }
    }

    /// Rebuilds the cell matrix this descriptor names. Deterministic:
    /// coordinator and workers call this with the same default-sampling
    /// state (see [`PlanDescriptor::sampled`]) and get byte-identical
    /// spec lists.
    pub fn plan(&self) -> Result<Plan, String> {
        match self {
            PlanDescriptor::Experiment { id, scale, .. } => {
                let exp = crate::experiments::find_experiment(id)
                    .ok_or_else(|| format!("unknown experiment `{id}`"))?;
                Ok(exp.plan(*scale))
            }
            PlanDescriptor::Suite {
                policy,
                config,
                scale,
                ..
            } => {
                let config = build_config(*config)?;
                let variants: Vec<Variant> =
                    vec![(config, policy.clone(), dmdc_ooo::SimOptions::default())];
                Ok(Plan::matrix(full_suite(*scale), variants))
            }
        }
    }
}

fn build_config(config: u8) -> Result<dmdc_ooo::CoreConfig, String> {
    match config {
        1 => Ok(dmdc_ooo::CoreConfig::config1()),
        2 => Ok(dmdc_ooo::CoreConfig::config2()),
        3 => Ok(dmdc_ooo::CoreConfig::config3()),
        other => Err(format!("unknown config `{other}` (1, 2 or 3)")),
    }
}

/// Lease bounds: TTL, poison threshold, and the absolute re-issue cap.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Milliseconds a lease lives without a heartbeat.
    pub ttl_ms: u64,
    /// Distinct dying workers that poison a cell.
    pub poison_after: u32,
    /// Absolute bound on issues of one cell's lease (backstop against a
    /// single pathological worker re-claiming forever).
    pub max_attempts: u32,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig {
            ttl_ms: 5_000,
            poison_after: 3,
            max_attempts: 8,
        }
    }
}

/// One cell's position in the lease lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellState {
    /// Claimable once the backoff deadline passes.
    Ready {
        /// Issues so far (0 = never leased).
        attempt: u32,
        /// Logical-clock ms before which the cell is not re-issued
        /// (exponential backoff after a reclaim).
        eligible_at: u64,
    },
    /// Held by a worker until `expires_at` (extended by heartbeats).
    Leased {
        /// The holder.
        worker: String,
        /// Which issue of this cell's lease this is.
        attempt: u32,
        /// Logical-clock ms at which the lease is forfeit.
        expires_at: u64,
    },
    /// Verified result in the store. Terminal.
    Done,
    /// A worker reported a structured [`CellFailure`] (the cell
    /// exhausted its retries *inside* a healthy worker). Terminal.
    Failed,
    /// Too many distinct workers died holding this cell (or the attempt
    /// bound hit); quarantined. Terminal.
    Poisoned,
}

impl CellState {
    fn terminal(&self) -> bool {
        matches!(
            self,
            CellState::Done | CellState::Failed | CellState::Poisoned
        )
    }
}

/// The answer to one claim request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claim {
    /// A lease on cell `index`.
    Lease {
        /// Spec index of the claimed cell.
        index: usize,
        /// Which issue of the lease this is (1-based).
        attempt: u32,
        /// Lease TTL the worker must heartbeat within.
        ttl_ms: u64,
    },
    /// Nothing claimable right now; retry after this many ms.
    Wait {
        /// Suggested poll delay.
        retry_ms: u64,
    },
    /// Every cell is terminal; the worker can exit.
    Done,
}

/// One reclaimed lease, reported by [`LeaseTable::expire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reclaim {
    /// Spec index of the cell.
    pub index: usize,
    /// The worker that lost the lease.
    pub worker: String,
    /// The lease issue that expired.
    pub attempt: u32,
    /// Whether this reclaim poisoned the cell.
    pub poisoned: bool,
}

/// The lease lifecycle as a pure state machine over an injected logical
/// clock (milliseconds). All policy — TTLs, backoff, poisoning — lives
/// here, socket-free, so the property tests can drive arbitrary
/// interleavings of claim/heartbeat/expire/complete deterministically.
#[derive(Debug)]
pub struct LeaseTable {
    cells: Vec<CellState>,
    /// Distinct workers that died holding each cell's lease.
    lost: Vec<Vec<String>>,
    /// Accepted completions per cell — the double-publish guard the
    /// property tests assert never exceeds one.
    completions: Vec<u32>,
    cfg: LeaseConfig,
}

impl LeaseTable {
    /// A table over `n` cells, all immediately claimable.
    pub fn new(n: usize, cfg: LeaseConfig) -> LeaseTable {
        LeaseTable {
            cells: vec![
                CellState::Ready {
                    attempt: 0,
                    eligible_at: 0
                };
                n
            ],
            lost: vec![Vec::new(); n],
            completions: vec![0; n],
            cfg,
        }
    }

    /// The state of cell `index`.
    pub fn state(&self, index: usize) -> &CellState {
        &self.cells[index]
    }

    /// Marks a cell terminal-done without leasing (the pre-sweep for
    /// cells already in the store).
    pub fn mark_done(&mut self, index: usize) {
        if !self.cells[index].terminal() {
            self.cells[index] = CellState::Done;
        }
    }

    /// Whether every cell is terminal.
    pub fn all_terminal(&self) -> bool {
        self.cells.iter().all(CellState::terminal)
    }

    /// Count of cells not yet terminal.
    pub fn outstanding(&self) -> usize {
        self.cells.iter().filter(|c| !c.terminal()).count()
    }

    /// Issues the lowest-indexed claimable lease to `worker`, or says
    /// when to retry, or that the run is over.
    pub fn claim(&mut self, worker: &str, now: u64) -> Claim {
        if self.all_terminal() {
            return Claim::Done;
        }
        let mut next_eligible: Option<u64> = None;
        for i in 0..self.cells.len() {
            if let CellState::Ready {
                attempt,
                eligible_at,
            } = self.cells[i]
            {
                if eligible_at <= now {
                    let attempt = attempt + 1;
                    self.cells[i] = CellState::Leased {
                        worker: worker.to_string(),
                        attempt,
                        expires_at: now + self.cfg.ttl_ms,
                    };
                    return Claim::Lease {
                        index: i,
                        attempt,
                        ttl_ms: self.cfg.ttl_ms,
                    };
                }
                next_eligible = Some(next_eligible.map_or(eligible_at, |e| e.min(eligible_at)));
            }
        }
        // Everything live is leased out (or backing off): poll again in
        // half a TTL, or as soon as the nearest backoff expires.
        let retry = next_eligible
            .map(|e| e.saturating_sub(now))
            .unwrap_or(self.cfg.ttl_ms / 2)
            .clamp(25, self.cfg.ttl_ms.max(50) / 2);
        Claim::Wait { retry_ms: retry }
    }

    /// Extends `worker`'s lease on `index`. `false` means the lease is
    /// no longer theirs (expired and possibly re-issued) — the worker
    /// may keep computing (publication is idempotent) but its completion
    /// will be rejected.
    pub fn heartbeat(&mut self, worker: &str, index: usize, now: u64) -> bool {
        match &mut self.cells[index] {
            CellState::Leased {
                worker: holder,
                expires_at,
                ..
            } if holder == worker => {
                *expires_at = now + self.cfg.ttl_ms;
                true
            }
            _ => false,
        }
    }

    /// Accepts `worker`'s completion of `index` iff it still holds the
    /// lease; a stale completion (expired, re-issued, or already done)
    /// is rejected. The result itself is already in the content-
    /// addressed store either way — rejecting here keeps the accounting
    /// single-writer.
    pub fn complete(&mut self, worker: &str, index: usize) -> bool {
        match &self.cells[index] {
            CellState::Leased { worker: holder, .. } if holder == worker => {
                self.cells[index] = CellState::Done;
                self.completions[index] += 1;
                true
            }
            _ => false,
        }
    }

    /// Records a structured failure from `worker` for `index` (the cell
    /// quarantined *inside* the worker after its own retry budget). Only
    /// the current lease holder may fail a cell.
    pub fn record_failure(&mut self, worker: &str, index: usize) -> bool {
        match &self.cells[index] {
            CellState::Leased { worker: holder, .. } if holder == worker => {
                self.cells[index] = CellState::Failed;
                true
            }
            _ => false,
        }
    }

    /// Takes the lease back from `worker` because its published result
    /// failed verification (a partial upload): the cell returns to the
    /// pool with backoff, but nobody *died*, so it does not count toward
    /// poisoning (the attempt bound still applies).
    pub fn fail_publish(&mut self, worker: &str, index: usize, now: u64) -> bool {
        match &self.cells[index] {
            CellState::Leased {
                worker: holder,
                attempt,
                ..
            } if holder == worker => {
                let attempt = *attempt;
                self.reissue(index, attempt, now);
                true
            }
            _ => false,
        }
    }

    /// Reclaims every expired lease, recording the lost worker and
    /// poisoning cells that have now killed `poison_after` distinct
    /// workers (or hit the attempt bound).
    pub fn expire(&mut self, now: u64) -> Vec<Reclaim> {
        let mut out = Vec::new();
        for i in 0..self.cells.len() {
            let (worker, attempt) = match &self.cells[i] {
                CellState::Leased {
                    worker,
                    attempt,
                    expires_at,
                } if *expires_at <= now => (worker.clone(), *attempt),
                _ => continue,
            };
            if !self.lost[i].contains(&worker) {
                self.lost[i].push(worker.clone());
            }
            self.reissue(i, attempt, now);
            out.push(Reclaim {
                index: i,
                worker,
                attempt,
                poisoned: self.cells[i] == CellState::Poisoned,
            });
        }
        out
    }

    /// Returns a cell to the pool after attempt `attempt`, with
    /// exponential backoff — or poisons it when the bounds are hit.
    fn reissue(&mut self, index: usize, attempt: u32, now: u64) {
        if self.lost[index].len() as u32 >= self.cfg.poison_after
            || attempt >= self.cfg.max_attempts
        {
            self.cells[index] = CellState::Poisoned;
            return;
        }
        // 50 ms doubling per re-issue, capped at 800 ms: long enough to
        // let a transiently sick store settle, short enough to not
        // matter against simulation times.
        let backoff = 50u64 << attempt.saturating_sub(1).min(4);
        self.cells[index] = CellState::Ready {
            attempt,
            eligible_at: now + backoff,
        };
    }

    /// The distinct workers that died holding cell `index`.
    pub fn lost_workers(&self, index: usize) -> &[String] {
        &self.lost[index]
    }

    /// Accepted completions of cell `index` (the property tests assert
    /// this never exceeds 1).
    pub fn completions(&self, index: usize) -> u32 {
        self.completions[index]
    }
}

/// Per-cell metadata the coordinator needs at the protocol layer.
struct CellMeta {
    key: u64,
    workload: String,
    desc: String,
}

/// Shared coordinator state: the lease table, the store handle, and the
/// pieces of the `GET /plan` document.
struct Coord {
    table: Mutex<LeaseTable>,
    meta: Vec<CellMeta>,
    cache: Arc<CellCache>,
    plan_doc: String,
    /// Worker-reported structured failures, index-aligned with specs.
    failures: Mutex<Vec<Option<CellFailure>>>,
    /// Last time any worker claimed/heartbeat/completed — the fleet
    /// liveness signal the degradation ladder watches.
    activity: Mutex<Instant>,
    start: Instant,
    lease_dir: PathBuf,
    done: AtomicBool,
}

impl Coord {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn touch(&self) {
        *self.activity.lock().unwrap_or_else(|p| p.into_inner()) = Instant::now();
    }

    fn idle_for(&self) -> Duration {
        self.activity
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .elapsed()
    }

    /// Durably records one cell's lease state as a sealed envelope —
    /// best-effort, like the journal: a record that cannot be written
    /// costs auditability, never correctness.
    fn record_lease(&self, index: usize, state: &CellState) {
        let mut body = render_lease(index, state);
        // Include the lost-worker trail for post-mortems.
        let lost = self
            .table
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .lost_workers(index)
            .join(",");
        if !lost.is_empty() {
            body.push_str(&format!("lost {lost}\n"));
        }
        let path = self.lease_dir.join(format!("{index}.lease"));
        let tmp = self.lease_dir.join(format!("{index}.lease.tmp"));
        if std::fs::write(&tmp, seal(&body)).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// The sealed lease-record body (`dmdc-lease v1`).
fn render_lease(index: usize, state: &CellState) -> String {
    let mut out = format!("dmdc-lease v1\nindex {index}\n");
    match state {
        CellState::Ready {
            attempt,
            eligible_at,
        } => out.push_str(&format!(
            "state ready\nattempt {attempt}\neligible {eligible_at}\n"
        )),
        CellState::Leased {
            worker,
            attempt,
            expires_at,
        } => out.push_str(&format!(
            "state leased\nworker {worker}\nattempt {attempt}\nexpires {expires_at}\n"
        )),
        CellState::Done => out.push_str("state done\n"),
        CellState::Failed => out.push_str("state failed\n"),
        CellState::Poisoned => out.push_str("state poisoned\n"),
    }
    out
}

/// Maps a [`FailureKind::label`] back to the kind (the complete wire
/// carries labels).
fn parse_failure_kind(label: &str) -> FailureKind {
    match label {
        "timeout" => FailureKind::Timeout,
        "sim-error" => FailureKind::SimError,
        "oracle-must-halt" => FailureKind::OracleMustHalt,
        "state-divergence" => FailureKind::StateDivergence,
        "audit-violation" => FailureKind::Audit,
        _ => FailureKind::Panic,
    }
}

/// Executes a plan across a worker fleet and returns `(cells, failures)`
/// in exactly the shape of [`Engine::run_all_recovered`], so suite and
/// experiment reducers downstream cannot tell the two paths apart.
pub fn execute_plan_distributed(
    desc: &PlanDescriptor,
    opts: &DistribOptions,
) -> Result<(Vec<Option<CellResult>>, Vec<CellFailure>), String> {
    let cache = runner::global_cell_cache()
        .ok_or("distributed execution publishes through the cell cache (drop --no-cache)")?;
    let plan = desc.plan()?;
    let specs = plan.specs();
    let engine = Engine::new(&plan.workloads);

    // The shared store's location travels as an absolute path: workers
    // may run from any directory on the shared filesystem.
    std::fs::create_dir_all(cache.dir())
        .map_err(|e| format!("cannot create cache dir {}: {e}", cache.dir().display()))?;
    let cache_dir = std::fs::canonicalize(cache.dir())
        .map_err(|e| format!("cannot resolve cache dir {}: {e}", cache.dir().display()))?;

    // Durable lease records live under the run journal when one is
    // installed, else under their own run id.
    let lease_dir = match runner::global_journal() {
        Some(j) => j.run_dir().join("leases"),
        None => crate::journal::default_runs_dir()
            .join(&opts.run_id)
            .join("leases"),
    };
    std::fs::create_dir_all(&lease_dir)
        .map_err(|e| format!("cannot create lease dir {}: {e}", lease_dir.display()))?;

    let cfg = LeaseConfig {
        ttl_ms: opts.lease_ttl.as_millis().max(50) as u64,
        poison_after: opts.poison_after.max(1),
        ..LeaseConfig::default()
    };
    let mut table = LeaseTable::new(specs.len(), cfg);

    // Metadata + pre-sweep: cells already in the store are done before a
    // single lease is issued.
    let mut meta = Vec::with_capacity(specs.len());
    let mut digests: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for (i, spec) in specs.iter().enumerate() {
        let digest = *digests
            .entry(spec.workload)
            .or_insert_with(|| workload_digest(&plan.workloads[spec.workload]));
        let desc_s = spec.desc();
        let key = cache.key(digest, &desc_s);
        let workload = plan.workloads[spec.workload].name.to_string();
        if cache.load(key, &workload).is_some() {
            table.mark_done(i);
        }
        meta.push(CellMeta {
            key,
            workload,
            desc: desc_s,
        });
    }

    let plan_doc = format!(
        "{{\"fingerprint\": \"{}\", \"cache_dir\": \"{}\", \"cells\": {}, \"plan\": {}}}\n",
        json::escape(&default_fingerprint()),
        json::escape(&cache_dir.display().to_string()),
        specs.len(),
        desc.to_json().trim_end()
    );

    let listener =
        std::net::TcpListener::bind(&opts.bind).map_err(|e| format!("{}: {e}", opts.bind))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    eprintln!(
        "[distrib] coordinator listening on {addr} ({} cells, {} already in store)",
        specs.len(),
        specs.len() - table.outstanding()
    );

    let coord = Arc::new(Coord {
        table: Mutex::new(table),
        meta,
        cache: Arc::clone(&cache),
        plan_doc,
        failures: Mutex::new(vec![None; specs.len()]),
        activity: Mutex::new(Instant::now()),
        start: Instant::now(),
        lease_dir,
        done: AtomicBool::new(false),
    });

    // The protocol thread: accept, serve, loop. Connections are handled
    // on their own threads so one slow worker cannot delay another's
    // heartbeat.
    let listener_thread = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || {
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !coord.done.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let coord = Arc::clone(&coord);
                        handlers.push(std::thread::spawn(move || serve_connection(stream, &coord)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        })
    };

    // Spawn the local fleet — unless the pre-sweep already satisfied
    // every cell, in which case there is nothing to shard.
    let outstanding = coord
        .table
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .outstanding();
    let mut children = Vec::new();
    if outstanding > 0 {
        for i in 0..opts.workers {
            match spawn_worker(&addr.to_string(), &format!("w{i}"), opts) {
                Ok(child) => children.push(child),
                Err(e) => eprintln!("[distrib] could not spawn worker w{i}: {e}"),
            }
        }
    }

    // The supervision loop: reclaim expired leases, and when the fleet
    // goes quiet past the grace period, execute cells locally — the
    // degradation ladder's bottom rung, which also serves the
    // zero-worker case.
    loop {
        {
            let now = coord.now_ms();
            let mut table = coord.table.lock().unwrap_or_else(|p| p.into_inner());
            let reclaims = table.expire(now);
            drop(table);
            for r in &reclaims {
                let m = &coord.meta[r.index];
                if r.poisoned {
                    recovery::record(
                        RecoveryKind::CellPoisoned,
                        m.workload.clone(),
                        format!(
                            "poisoned after losing worker {} (attempt {})",
                            r.worker, r.attempt
                        ),
                    );
                    eprintln!(
                        "[distrib] cell {} ({}) poisoned after worker {} died (attempt {})",
                        r.index, m.workload, r.worker, r.attempt
                    );
                } else {
                    recovery::record(
                        RecoveryKind::LeaseReclaimed,
                        m.workload.clone(),
                        format!(
                            "lease of worker {} expired (attempt {})",
                            r.worker, r.attempt
                        ),
                    );
                    eprintln!(
                        "[distrib] reclaimed cell {} ({}) from worker {} (attempt {})",
                        r.index, m.workload, r.worker, r.attempt
                    );
                }
                let state = coord
                    .table
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .state(r.index)
                    .clone();
                coord.record_lease(r.index, &state);
            }
            if coord
                .table
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .all_terminal()
            {
                break;
            }
        }

        // Reap any dead children so their loss is visible promptly.
        children.retain_mut(|c| match c.try_wait() {
            Ok(Some(status)) => {
                if !status.success() {
                    eprintln!("[distrib] worker exited with {status}");
                }
                false
            }
            _ => true,
        });

        if coord.idle_for() >= opts.grace {
            // Nobody out there is making progress: claim and execute one
            // cell locally, then re-check.
            let now = coord.now_ms();
            let claim = coord
                .table
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .claim("coordinator", now);
            match claim {
                Claim::Lease { index, .. } => {
                    let m = &coord.meta[index];
                    eprintln!(
                        "[distrib] fleet quiet for {:?}; running cell {index} ({}) locally",
                        opts.grace, m.workload
                    );
                    match engine.try_run_cell(&specs[index]) {
                        Ok(_) => {
                            let mut table = coord.table.lock().unwrap_or_else(|p| p.into_inner());
                            table.complete("coordinator", index);
                        }
                        Err(f) => {
                            let mut table = coord.table.lock().unwrap_or_else(|p| p.into_inner());
                            if table.record_failure("coordinator", index) {
                                coord.failures.lock().unwrap_or_else(|p| p.into_inner())[index] =
                                    Some(f);
                            }
                        }
                    }
                    let state = coord
                        .table
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .state(index)
                        .clone();
                    coord.record_lease(index, &state);
                }
                Claim::Done => {}
                Claim::Wait { .. } => std::thread::sleep(Duration::from_millis(25)),
            }
        } else {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // Reap the fleet while the listener still answers: each worker's
    // next claim returns `{done}` and it exits on its own. Only then
    // stop the protocol thread. Stragglers past the deadline are killed.
    let deadline = Instant::now() + Duration::from_secs(3);
    for mut child in children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                _ if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
    coord.done.store(true, Ordering::SeqCst);
    let _ = listener_thread.join();

    // Assembly: every cell goes back through the engine in spec order —
    // journal replay, then the store the fleet published into, then (for
    // poisoned/evicted cells) local simulation. Structured failures the
    // workers reported stand in for their cells, exactly as the
    // single-process quarantine path would have produced them.
    let table = coord.table.lock().unwrap_or_else(|p| p.into_inner());
    let worker_failures = coord.failures.lock().unwrap_or_else(|p| p.into_inner());
    let mut cells: Vec<Option<CellResult>> = Vec::with_capacity(specs.len());
    let mut failures: Vec<CellFailure> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        match table.state(i) {
            CellState::Poisoned => {
                let m = &coord.meta[i];
                let lost = table.lost_workers(i);
                failures.push(CellFailure {
                    workload: m.workload.clone(),
                    spec: m.desc.clone(),
                    kind: FailureKind::Panic,
                    detail: format!(
                        "cell poisoned: {} distinct worker(s) died holding its lease ({})",
                        lost.len(),
                        lost.join(", ")
                    ),
                    attempts: lost.len() as u32,
                });
                cells.push(None);
            }
            CellState::Failed => {
                let f = worker_failures[i].clone().unwrap_or_else(|| CellFailure {
                    workload: coord.meta[i].workload.clone(),
                    spec: coord.meta[i].desc.clone(),
                    kind: FailureKind::Panic,
                    detail: "worker reported a failure without detail".to_string(),
                    attempts: 1,
                });
                failures.push(f);
                cells.push(None);
            }
            _ => match engine.try_run_cell(spec) {
                Ok(cell) => cells.push(Some(cell)),
                Err(f) => {
                    failures.push(f);
                    cells.push(None);
                }
            },
        }
    }
    eprintln!(
        "[distrib] run complete: {} cells, {} failures, {} reclaims, {} poisoned",
        specs.len(),
        failures.len(),
        recovery::counters().leases_reclaimed,
        recovery::counters().cells_poisoned,
    );
    Ok((cells, failures))
}

/// Runs one registry experiment across a worker fleet: the distributed
/// twin of [`crate::experiments::run_experiment`], producing the
/// byte-identical [`Report`].
pub fn run_experiment_distributed(
    exp: &dyn Experiment,
    scale: Scale,
    sampled: bool,
    opts: &DistribOptions,
) -> Result<Report, String> {
    let desc = PlanDescriptor::Experiment {
        id: exp.id().to_string(),
        scale,
        sampled,
    };
    let (cells, failures) = execute_plan_distributed(&desc, opts)?;
    if failures.is_empty() {
        let cells: Vec<CellResult> = cells
            .into_iter()
            .map(|c| c.expect("no failures, so every cell is present"))
            .collect();
        Ok(exp.reduce(&cells))
    } else {
        let mut report = Report::new(exp.id());
        for f in failures {
            report.push_failure(f);
        }
        Ok(report)
    }
}

/// Spawns one `dmdc worker --connect` child, stdout silenced (stdout
/// belongs to the coordinator's report), stderr shared.
fn spawn_worker(
    addr: &str,
    id: &str,
    opts: &DistribOptions,
) -> Result<std::process::Child, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("worker")
        .arg("--connect")
        .arg(addr)
        .arg("--id")
        .arg(id)
        .stdout(std::process::Stdio::null());
    if let Some(spec) = &opts.worker_faults {
        cmd.arg("--inject-faults").arg(spec);
    }
    cmd.spawn().map_err(|e| e.to_string())
}

/// Serves one coordinator connection.
fn serve_connection(mut stream: std::net::TcpStream, coord: &Coord) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            http::respond(
                &mut stream,
                e.status(),
                &format!("{{\"error\": \"{}\"}}\n", json::escape(e.message())),
            );
            return;
        }
    };
    let (status, body) = route(&request, coord);
    http::respond(&mut stream, status, &body);
}

/// Routes one coordinator request to its `(status, body)`.
fn route(request: &http::Request, coord: &Coord) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/plan") => (200, coord.plan_doc.clone()),
        ("POST", "/claim") => handle_claim(&request.body, coord),
        ("POST", "/heartbeat") => handle_heartbeat(&request.body, coord),
        ("POST", "/complete") => handle_complete(&request.body, coord),
        (method, path) => (
            404,
            format!(
                "{{\"error\": \"no route for {} {}\"}}\n",
                json::escape(method),
                json::escape(path)
            ),
        ),
    }
}

/// Parses `worker` (and optionally `index`) out of a protocol body.
fn parse_actor(body: &str) -> Result<(String, Option<usize>), String> {
    let doc = json::parse(body).map_err(|e| format!("bad JSON: {e}"))?;
    let worker = doc
        .get("worker")
        .and_then(Json::as_str)
        .filter(|w| !w.is_empty())
        .ok_or("`worker` must be a non-empty string")?
        .to_string();
    let index = doc.get("index").and_then(Json::as_u64).map(|i| i as usize);
    Ok((worker, index))
}

fn handle_claim(body: &str, coord: &Coord) -> (u16, String) {
    let (worker, _) = match parse_actor(body) {
        Ok(a) => a,
        Err(e) => return (400, format!("{{\"error\": \"{}\"}}\n", json::escape(&e))),
    };
    coord.touch();
    let now = coord.now_ms();
    let claim = coord
        .table
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .claim(&worker, now);
    match claim {
        Claim::Lease {
            index,
            attempt,
            ttl_ms,
        } => {
            let state = coord
                .table
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .state(index)
                .clone();
            coord.record_lease(index, &state);
            (
                200,
                format!(
                    "{{\"lease\": {{\"index\": {index}, \"attempt\": {attempt}, \
                     \"ttl_ms\": {ttl_ms}}}}}\n"
                ),
            )
        }
        Claim::Wait { retry_ms } => (200, format!("{{\"wait\": {retry_ms}}}\n")),
        Claim::Done => (200, "{\"done\": true}\n".to_string()),
    }
}

fn handle_heartbeat(body: &str, coord: &Coord) -> (u16, String) {
    let (worker, index) = match parse_actor(body) {
        Ok(a) => a,
        Err(e) => return (400, format!("{{\"error\": \"{}\"}}\n", json::escape(&e))),
    };
    let Some(index) = index.filter(|i| *i < coord.meta.len()) else {
        return (400, "{\"error\": \"`index` out of range\"}\n".to_string());
    };
    coord.touch();
    let now = coord.now_ms();
    let alive = coord
        .table
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .heartbeat(&worker, index, now);
    if alive {
        (200, "{\"ok\": true}\n".to_string())
    } else {
        (200, "{\"lost\": true}\n".to_string())
    }
}

fn handle_complete(body: &str, coord: &Coord) -> (u16, String) {
    let doc = match json::parse(body) {
        Ok(d) => d,
        Err(e) => {
            return (
                400,
                format!("{{\"error\": \"bad JSON: {}\"}}\n", json::escape(&e)),
            )
        }
    };
    let (worker, index) = match parse_actor(body) {
        Ok(a) => a,
        Err(e) => return (400, format!("{{\"error\": \"{}\"}}\n", json::escape(&e))),
    };
    let Some(index) = index.filter(|i| *i < coord.meta.len()) else {
        return (400, "{\"error\": \"`index` out of range\"}\n".to_string());
    };
    let ok = doc.get("ok").and_then(Json::as_bool).unwrap_or(false);
    coord.touch();
    let now = coord.now_ms();
    let m = &coord.meta[index];

    let accepted = if ok {
        // Trust nothing: the result must actually unseal from the shared
        // store before the lease is retired. A partial upload reads as a
        // missing/corrupt entry and re-issues the lease.
        if coord.cache.load(m.key, &m.workload).is_some() {
            coord
                .table
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .complete(&worker, index)
        } else {
            let reissued = coord
                .table
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .fail_publish(&worker, index, now);
            if reissued {
                recovery::record(
                    RecoveryKind::LeaseReclaimed,
                    m.workload.clone(),
                    format!("worker {worker}'s published result failed verification"),
                );
                eprintln!(
                    "[distrib] cell {index} ({}): result from {worker} failed \
                     verification; lease re-issued",
                    m.workload
                );
            }
            false
        }
    } else {
        let failure = CellFailure {
            workload: m.workload.clone(),
            spec: m.desc.clone(),
            kind: parse_failure_kind(doc.get("kind").and_then(Json::as_str).unwrap_or("panic")),
            detail: doc
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("worker reported a failure without detail")
                .to_string(),
            attempts: doc.get("attempts").and_then(Json::as_u64).unwrap_or(1) as u32,
        };
        let recorded = coord
            .table
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .record_failure(&worker, index);
        if recorded {
            coord.failures.lock().unwrap_or_else(|p| p.into_inner())[index] = Some(failure);
        }
        recorded
    };
    let state = coord
        .table
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .state(index)
        .clone();
    coord.record_lease(index, &state);
    (200, format!("{{\"accepted\": {accepted}}}\n"))
}

/// How long a worker waits for the coordinator before giving up — both
/// at startup (the coordinator may still be binding) and mid-run (it may
/// be briefly saturated).
const WORKER_MAX_WAIT: Duration = Duration::from_secs(20);

/// The `dmdc worker --connect <addr>` loop: fetch the plan, verify the
/// fingerprint, rebuild the spec list, then claim → execute → publish →
/// complete until the coordinator says `{done}`. Heartbeats run on a
/// side thread at a third of the lease TTL. Every cell executes through
/// the ordinary [`Engine`] against the shared store, so a worker's
/// results are bit-identical to anyone else's.
pub fn run_worker(addr: &str, id: &str) -> Result<(), String> {
    let (status, body) = http::request_with_retry(addr, "GET", "/plan", None, WORKER_MAX_WAIT)?;
    if status != 200 {
        return Err(format!("coordinator {addr} returned {status} for /plan"));
    }
    let doc = json::parse(&body).map_err(|e| format!("bad /plan document: {e}"))?;
    let fingerprint = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("/plan document has no fingerprint")?;
    let ours = default_fingerprint();
    if fingerprint != ours {
        return Err(format!(
            "coordinator runs simulator fingerprint '{fingerprint}' but this \
             binary is '{ours}'; refusing to publish mismatched results"
        ));
    }
    let cache_dir = doc
        .get("cache_dir")
        .and_then(Json::as_str)
        .ok_or("/plan document has no cache_dir")?;
    let desc = PlanDescriptor::from_json(doc.get("plan").ok_or("/plan document has no plan")?)?;
    runner::set_default_sampling(if desc.sampled() {
        dmdc_ooo::SampleSpec::standard()
    } else {
        dmdc_ooo::SampleSpec::EXACT
    });
    let plan = desc.plan()?;
    let specs = plan.specs();
    let engine = Engine::new(&plan.workloads)
        .with_cache(Some(Arc::new(CellCache::new(Path::new(cache_dir)))))
        .with_journal(None);
    eprintln!(
        "[worker {id}] joined {addr}: {} cells, store at {cache_dir}",
        specs.len()
    );

    loop {
        let claim_body = format!("{{\"worker\": \"{}\"}}", json::escape(id));
        let (status, reply) =
            http::request_with_retry(addr, "POST", "/claim", Some(&claim_body), WORKER_MAX_WAIT)?;
        if status != 200 {
            return Err(format!("coordinator {addr} returned {status} for /claim"));
        }
        let doc = json::parse(&reply).map_err(|e| format!("bad /claim reply: {e}"))?;
        if doc.get("done").and_then(Json::as_bool) == Some(true) {
            eprintln!("[worker {id}] coordinator reports done; exiting");
            return Ok(());
        }
        if let Some(ms) = doc.get("wait").and_then(Json::as_u64) {
            std::thread::sleep(Duration::from_millis(ms.clamp(10, 2_000)));
            continue;
        }
        let lease = doc.get("lease").ok_or("claim reply has no lease")?;
        let index = lease
            .get("index")
            .and_then(Json::as_u64)
            .ok_or("lease has no index")? as usize;
        let ttl_ms = lease.get("ttl_ms").and_then(Json::as_u64).unwrap_or(5_000);
        if index >= specs.len() {
            return Err(format!("lease index {index} out of range"));
        }

        // Chaos: a stale-claim worker sits on its first lease past the
        // TTL before doing any work, so the cell is re-issued while this
        // worker still intends to finish it.
        if let Some(ms) = crate::faults::take_stale_claim_ms() {
            eprintln!("[worker {id}] injected stale-claim: sleeping {ms} ms on cell {index}");
            std::thread::sleep(Duration::from_millis(ms));
        }

        // Heartbeat thread: every ttl/3 until the cell is finished (or
        // the chaos plan silences it).
        let stop = Arc::new(AtomicBool::new(false));
        let hb = {
            let stop = Arc::clone(&stop);
            let addr = addr.to_string();
            let id = id.to_string();
            std::thread::spawn(move || {
                if crate::faults::heartbeats_dropped() {
                    return;
                }
                let interval = Duration::from_millis((ttl_ms / 3).max(25));
                let body = format!(
                    "{{\"worker\": \"{}\", \"index\": {index}}}",
                    json::escape(&id)
                );
                // Sleep in short slices so the post-cell join returns in
                // ~a slice, not a full heartbeat interval.
                let slice = Duration::from_millis(10);
                let mut slept = Duration::ZERO;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                    if slept < interval {
                        continue;
                    }
                    slept = Duration::ZERO;
                    match http::request(&addr, "POST", "/heartbeat", Some(&body)) {
                        Ok((200, reply)) if reply.contains("\"lost\"") => {
                            eprintln!(
                                "[worker {id}] lease on cell {index} expired under us; \
                                 finishing anyway (publication is idempotent)"
                            );
                            return;
                        }
                        Ok(_) => {}
                        Err(_) => return,
                    }
                }
            })
        };

        let outcome = engine.try_run_cell(&specs[index]);
        stop.store(true, Ordering::SeqCst);
        let _ = hb.join();

        // Chaos: a kill-after worker aborts here — cell executed and
        // (on success) already published, but the lease still held and
        // the completion unsent. The coordinator reclaims the lease
        // after the TTL and the next claimant hits the store.
        crate::faults::on_distrib_cell_done();

        let complete_body = match &outcome {
            Ok(_) => format!(
                "{{\"worker\": \"{}\", \"index\": {index}, \"ok\": true}}",
                json::escape(id)
            ),
            Err(f) => format!(
                "{{\"worker\": \"{}\", \"index\": {index}, \"ok\": false, \
                 \"kind\": \"{}\", \"detail\": \"{}\", \"attempts\": {}}}",
                json::escape(id),
                f.kind.label(),
                json::escape(&f.detail),
                f.attempts
            ),
        };
        let (status, reply) = http::request_with_retry(
            addr,
            "POST",
            "/complete",
            Some(&complete_body),
            WORKER_MAX_WAIT,
        )?;
        if status != 200 {
            return Err(format!(
                "coordinator {addr} returned {status} for /complete"
            ));
        }
        let accepted = json::parse(&reply)
            .ok()
            .and_then(|d| d.get("accepted").and_then(Json::as_bool))
            .unwrap_or(false);
        match &outcome {
            Ok(_) => eprintln!(
                "[worker {id}] cell {index} published ({})",
                if accepted { "accepted" } else { "stale" }
            ),
            Err(f) => eprintln!(
                "[worker {id}] cell {index} failed: [{}] {}",
                f.kind, f.detail
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;

    fn cfg(ttl: u64, poison: u32) -> LeaseConfig {
        LeaseConfig {
            ttl_ms: ttl,
            poison_after: poison,
            max_attempts: 8,
        }
    }

    #[test]
    fn lease_lifecycle_claims_heartbeats_completes() {
        let mut t = LeaseTable::new(2, cfg(100, 3));
        let Claim::Lease { index, attempt, .. } = t.claim("a", 0) else {
            panic!("first claim must lease");
        };
        assert_eq!((index, attempt), (0, 1));
        assert!(matches!(t.claim("b", 0), Claim::Lease { index: 1, .. }));
        // Everything is leased out: a third worker waits.
        assert!(matches!(t.claim("c", 0), Claim::Wait { .. }));
        // Heartbeats extend; completion finishes.
        assert!(t.heartbeat("a", 0, 50));
        assert!(!t.heartbeat("c", 0, 50), "not the holder");
        assert!(t.complete("a", 0));
        assert!(!t.complete("a", 0), "double-complete rejected");
        assert!(t.complete("b", 1));
        assert!(t.all_terminal());
        assert!(matches!(t.claim("a", 200), Claim::Done));
        assert_eq!(t.completions(0), 1);
    }

    #[test]
    fn expiry_reclaims_and_backoff_delays_reissue() {
        let mut t = LeaseTable::new(1, cfg(100, 3));
        assert!(matches!(t.claim("a", 0), Claim::Lease { .. }));
        // A heartbeat at 80 pushes expiry to 180.
        assert!(t.heartbeat("a", 0, 80));
        assert!(t.expire(150).is_empty(), "lease extended by heartbeat");
        let reclaims = t.expire(180);
        assert_eq!(reclaims.len(), 1);
        assert_eq!(reclaims[0].worker, "a");
        assert!(!reclaims[0].poisoned);
        // Stale actions from the old holder bounce.
        assert!(!t.heartbeat("a", 0, 181));
        assert!(!t.complete("a", 0));
        // Backoff: not immediately claimable, then claimable.
        assert!(matches!(t.claim("b", 181), Claim::Wait { .. }));
        let Claim::Lease { attempt, .. } = t.claim("b", 181 + 60) else {
            panic!("reissue after backoff");
        };
        assert_eq!(attempt, 2);
        assert!(t.complete("b", 0));
        assert_eq!(t.completions(0), 1, "only the live holder published");
    }

    #[test]
    fn poisoning_after_distinct_worker_deaths() {
        let mut t = LeaseTable::new(1, cfg(10, 2));
        // Worker a dies.
        assert!(matches!(t.claim("a", 0), Claim::Lease { .. }));
        let r = t.expire(10);
        assert!(!r[0].poisoned);
        // Worker b dies: second distinct death poisons.
        let Claim::Lease { .. } = t.claim("b", 100) else {
            panic!("reissued after backoff");
        };
        let r = t.expire(200);
        assert!(r[0].poisoned, "{r:?}");
        assert_eq!(*t.state(0), CellState::Poisoned);
        assert!(t.all_terminal());
        assert_eq!(t.lost_workers(0), ["a".to_string(), "b".to_string()]);
        // The same worker dying twice does not double-count.
        let mut t = LeaseTable::new(1, cfg(10, 2));
        for round in 0..2 {
            let now = round * 100;
            assert!(matches!(t.claim("a", now), Claim::Lease { .. }));
            let r = t.expire(now + 50);
            assert!(!r[0].poisoned, "one distinct worker is below the bar");
        }
        assert_eq!(t.lost_workers(0).len(), 1);
    }

    #[test]
    fn failed_publish_reissues_without_poison_credit() {
        let mut t = LeaseTable::new(1, cfg(100, 2));
        assert!(matches!(t.claim("a", 0), Claim::Lease { .. }));
        assert!(t.fail_publish("a", 0, 0));
        assert!(t.lost_workers(0).is_empty(), "nobody died");
        let Claim::Lease { attempt, .. } = t.claim("a", 60) else {
            panic!("reissued");
        };
        assert_eq!(attempt, 2);
        assert!(!t.fail_publish("b", 0, 60), "only the holder");
    }

    #[test]
    fn attempt_bound_poisons_runaway_cells() {
        let mut t = LeaseTable::new(1, cfg(100, 99));
        let mut now = 0;
        for _ in 0..8 {
            now += 10_000;
            match t.claim("a", now) {
                Claim::Lease { .. } => {
                    assert!(t.fail_publish("a", 0, now));
                }
                other => panic!("expected lease, got {other:?}"),
            }
        }
        assert_eq!(*t.state(0), CellState::Poisoned, "attempt bound hit");
    }

    #[test]
    fn descriptor_roundtrips_through_json() {
        let descs = [
            PlanDescriptor::Experiment {
                id: "fig2".to_string(),
                scale: Scale::Smoke,
                sampled: false,
            },
            PlanDescriptor::Suite {
                policy: PolicyKind::DmdcGlobal,
                config: 2,
                scale: Scale::Default,
                sampled: true,
            },
        ];
        for d in descs {
            let doc = json::parse(&d.to_json()).unwrap();
            assert_eq!(PlanDescriptor::from_json(&doc).unwrap(), d);
        }
        assert!(PlanDescriptor::from_json(&json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn suite_descriptor_plans_the_suite_matrix() {
        let d = PlanDescriptor::Suite {
            policy: PolicyKind::Baseline,
            config: 2,
            scale: Scale::Smoke,
            sampled: false,
        };
        let plan = d.plan().unwrap();
        assert_eq!(plan.variants.len(), 1);
        assert_eq!(plan.workloads.len(), full_suite(Scale::Smoke).len());
        // The spec list matches what `dmdc suite` builds by hand.
        let config = dmdc_ooo::CoreConfig::config2();
        let by_hand: Vec<RunSpec> = (0..plan.workloads.len())
            .map(|i| RunSpec::new(i, &config, PolicyKind::Baseline))
            .collect();
        let planned = plan.specs();
        assert_eq!(planned.len(), by_hand.len());
        for (a, b) in planned.iter().zip(&by_hand) {
            assert_eq!(a.desc(), b.desc());
        }
    }
}
