//! Crash-safe run journal: checkpoint/resume for experiment runs.
//!
//! A long `dmdc suite` run that dies — OOM kill, power loss, ^C — should
//! not cost the cells it already finished. When journaling is on, the
//! engine checkpoints every completed cell into
//! `target/dmdc-runs/<run-id>/journal/<key>.entry`, each wrapped in the
//! same checksummed [`seal`](crate::cache::seal) envelope the cell cache
//! uses and written atomically (tmp + rename), so a crash mid-write can
//! only ever lose the cell in flight, never corrupt a completed one.
//! A sealed `manifest` beside the journal records the run's command line
//! and simulator fingerprint.
//!
//! `dmdc run --resume <run-id>` reopens the journal, verifies that the
//! binary's fingerprint still matches the manifest (a rebuilt simulator
//! must not splice stale numbers into a fresh run), re-dispatches the
//! recorded command line and replays every journaled cell instead of
//! re-simulating it — the resumed report is byte-identical to what the
//! uninterrupted run would have produced.
//!
//! Two deliberate asymmetries versus the [cache](crate::cache):
//!
//! * **replay consults only keys that existed when the journal was
//!   opened.** Cells completed *during* this run are recorded but never
//!   read back, so a fresh (non-resumed) run behaves — in counters and in
//!   output — exactly as if journaling were off.
//! * **the journal is scoped to one run id**, not content-shared across
//!   runs; it is a crash record, not a dedup layer. Sharing is the
//!   cache's job.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::{tmp_tag, unseal, write_sealed, Fnv64};
use crate::cell::CellResult;
use crate::recovery::{self, RecoveryKind};

/// First line of the sealed manifest body.
const MANIFEST_MAGIC: &str = "dmdc-manifest v1";

/// The default root for per-run journals, `target/dmdc-runs/` under the
/// current working directory (next to build artifacts, like the cache).
pub fn default_runs_dir() -> PathBuf {
    PathBuf::from("target").join("dmdc-runs")
}

/// Replay/record/drop counters of one [`RunJournal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalCounters {
    /// Cells served from the journal on resume (simulation skipped).
    pub replayed: u64,
    /// Cells checkpointed during this run.
    pub recorded: u64,
    /// Journaled entries rejected on replay (corrupt, truncated, stale)
    /// and deleted; the cell re-simulates.
    pub dropped: u64,
}

/// A crash-safe, per-run checkpoint log of completed cells.
#[derive(Debug)]
pub struct RunJournal {
    run_id: String,
    run_dir: PathBuf,
    journal_dir: PathBuf,
    fingerprint: String,
    /// Keys present on disk when the journal was opened — the only keys
    /// [`RunJournal::replay`] will serve, so a fresh run never reads its
    /// own writes back.
    preexisting: HashSet<u64>,
    replayed: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl RunJournal {
    /// Starts journaling a fresh run: creates
    /// `<runs_dir>/<run_id>/journal/` and writes the sealed manifest
    /// recording `argv` and `fingerprint`. If the run id already has a
    /// journal (a crashed run being re-launched by id rather than via
    /// `--resume`), its completed cells are picked up for replay.
    pub fn create(
        runs_dir: &Path,
        run_id: &str,
        fingerprint: &str,
        argv: &[String],
    ) -> Result<RunJournal, String> {
        let run_dir = runs_dir.join(run_id);
        let journal_dir = run_dir.join("journal");
        std::fs::create_dir_all(&journal_dir)
            .map_err(|e| format!("cannot create journal {}: {e}", journal_dir.display()))?;
        let manifest = manifest_body(fingerprint, argv);
        let path = run_dir.join("manifest");
        if !write_sealed(&path, &manifest, tmp_tag(0)) {
            return Err(format!("cannot write manifest {}", path.display()));
        }
        Ok(RunJournal::open(run_id, run_dir, journal_dir, fingerprint))
    }

    /// Reopens the journal of an interrupted run and returns it together
    /// with the recorded command line, ready to re-dispatch. Fails with a
    /// clear message if the run id is unknown, the manifest is corrupt,
    /// or the binary's fingerprint no longer matches the one the run was
    /// started under.
    pub fn resume(
        runs_dir: &Path,
        run_id: &str,
        fingerprint: &str,
    ) -> Result<(RunJournal, Vec<String>), String> {
        let run_dir = runs_dir.join(run_id);
        let path = run_dir.join("manifest");
        let text = std::fs::read_to_string(&path).map_err(|_| {
            format!(
                "no journal for run '{run_id}' under {} (nothing to resume)",
                runs_dir.display()
            )
        })?;
        let body = unseal(&text)
            .map_err(|e| format!("manifest of run '{run_id}' is damaged ({})", e.label()))?;
        let (recorded_fp, argv) = parse_manifest(body)
            .ok_or_else(|| format!("manifest of run '{run_id}' is malformed"))?;
        if recorded_fp != fingerprint {
            return Err(format!(
                "run '{run_id}' was produced by simulator fingerprint '{recorded_fp}', \
                 but this binary is '{fingerprint}'; its journal cannot be trusted — \
                 re-run from scratch"
            ));
        }
        let journal_dir = run_dir.join("journal");
        let journal = RunJournal::open(run_id, run_dir, journal_dir, fingerprint);
        Ok((journal, argv))
    }

    fn open(run_id: &str, run_dir: PathBuf, journal_dir: PathBuf, fingerprint: &str) -> RunJournal {
        let mut preexisting = HashSet::new();
        if let Ok(entries) = std::fs::read_dir(&journal_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(hex) = name
                    .to_str()
                    .and_then(|n| n.strip_suffix(".entry"))
                    .filter(|h| h.len() == 16)
                {
                    if let Ok(key) = u64::from_str_radix(hex, 16) {
                        preexisting.insert(key);
                    }
                }
            }
        }
        RunJournal {
            run_id: run_id.to_string(),
            run_dir,
            journal_dir,
            fingerprint: fingerprint.to_string(),
            preexisting,
            replayed: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The run's identifier.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The run's directory (`<runs_dir>/<run_id>`).
    pub fn run_dir(&self) -> &Path {
        &self.run_dir
    }

    /// How many completed cells the journal held when it was opened.
    pub fn preexisting_len(&self) -> usize {
        self.preexisting.len()
    }

    /// The cell key for a (workload digest, spec description) pair —
    /// the same formula as [`CellCache::key`](crate::cache::CellCache::key),
    /// so a journal and a cache opened under the same fingerprint agree
    /// on cell identity.
    pub fn key(&self, workload_digest: u64, spec_desc: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.fingerprint.as_bytes());
        h.write_u64(workload_digest);
        h.write(spec_desc.as_bytes());
        h.finish()
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.journal_dir.join(format!("{key:016x}.entry"))
    }

    /// Replays a cell checkpointed by the interrupted run. Only keys that
    /// were on disk when this journal was opened are served; an entry
    /// that fails integrity or schema verification is deleted (the crash
    /// may have landed mid-write before the rename barrier existed, or
    /// the file rotted) and the cell re-simulates.
    pub fn replay(&self, key: u64, expected_workload: &str) -> Option<CellResult> {
        if !self.preexisting.contains(&key) {
            return None;
        }
        let path = self.path_of(key);
        let text = std::fs::read_to_string(&path).ok()?;
        let cell = match unseal(&text) {
            Ok(body) => {
                CellResult::from_record(body).filter(|cell| cell.workload == expected_workload)
            }
            Err(_) => None,
        };
        match cell {
            Some(cell) => {
                self.replayed.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&path);
                recovery::record(
                    RecoveryKind::JournalDropped,
                    format!("{key:016x}.entry"),
                    "journal entry failed verification; cell re-simulates",
                );
                None
            }
        }
    }

    /// Checkpoints a completed cell, sealed and via tmp + rename. A key
    /// already served by replay is not rewritten. I/O failures are
    /// swallowed — a journal that cannot write costs resume coverage,
    /// never a wrong result.
    pub fn record(&self, key: u64, cell: &CellResult) {
        if self.preexisting.contains(&key) {
            return;
        }
        let path = self.path_of(key);
        if write_sealed(&path, &cell.to_record(), tmp_tag(key)) {
            self.recorded.fetch_add(1, Ordering::Relaxed);
            crate::faults::on_journal_entry_written(&path);
        }
    }

    /// Counters since this journal handle was opened.
    pub fn counters(&self) -> JournalCounters {
        JournalCounters {
            replayed: self.replayed.load(Ordering::Relaxed),
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Renders the manifest body: fingerprint plus one `arg` line per
/// command-line argument.
fn manifest_body(fingerprint: &str, argv: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{MANIFEST_MAGIC}");
    let _ = writeln!(out, "fingerprint {fingerprint}");
    for arg in argv {
        // Newlines in argv would corrupt the line-oriented format; no
        // dmdc flag value can legitimately contain one.
        let _ = writeln!(out, "arg {}", arg.replace('\n', " "));
    }
    out
}

/// Parses a manifest body back into `(fingerprint, argv)`.
fn parse_manifest(body: &str) -> Option<(String, Vec<String>)> {
    let mut lines = body.lines();
    if lines.next()? != MANIFEST_MAGIC {
        return None;
    }
    let fingerprint = lines.next()?.strip_prefix("fingerprint ")?.to_string();
    let mut argv = Vec::new();
    for line in lines {
        argv.push(line.strip_prefix("arg ")?.to_string());
    }
    Some((fingerprint, argv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_ooo::SimStats;
    use dmdc_workloads::Group;

    fn sample_cell(workload: &str) -> CellResult {
        let values: Vec<u64> = (1..=SimStats::EXPORT_LEN as u64).collect();
        CellResult {
            workload: workload.to_string(),
            group: Group::Int,
            stats: SimStats::from_export_values(&values).unwrap(),
        }
    }

    fn temp_runs_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dmdc-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_roundtrips() {
        let argv = vec![
            "suite".to_string(),
            "--scale".to_string(),
            "smoke".to_string(),
        ];
        let body = manifest_body("fp-x", &argv);
        assert_eq!(parse_manifest(&body), Some(("fp-x".to_string(), argv)));
        assert!(parse_manifest("garbage").is_none());
    }

    #[test]
    fn fresh_run_records_but_never_replays_its_own_writes() {
        let runs = temp_runs_dir("fresh");
        let j = RunJournal::create(&runs, "r1", "fp", &["suite".to_string()]).unwrap();
        let cell = sample_cell("histo");
        let key = j.key(7, "spec");
        j.record(key, &cell);
        assert_eq!(j.replay(key, "histo"), None, "own writes must not replay");
        assert_eq!(
            j.counters(),
            JournalCounters {
                replayed: 0,
                recorded: 1,
                dropped: 0
            }
        );
        let _ = std::fs::remove_dir_all(&runs);
    }

    #[test]
    fn reopened_journal_replays_and_drops_damage() {
        let runs = temp_runs_dir("reopen");
        let argv = vec!["suite".to_string()];
        let first = RunJournal::create(&runs, "r1", "fp", &argv).unwrap();
        let good = sample_cell("histo");
        let bad = sample_cell("saxpy");
        let (good_key, bad_key) = (first.key(1, "a"), first.key(2, "b"));
        first.record(good_key, &good);
        first.record(bad_key, &bad);
        // Corrupt the second entry on disk, as a crash or bit rot would.
        let bad_path = runs
            .join("r1/journal")
            .join(format!("{bad_key:016x}.entry"));
        std::fs::write(&bad_path, "torn").unwrap();
        drop(first);

        let (second, stored_argv) = RunJournal::resume(&runs, "r1", "fp").unwrap();
        assert_eq!(stored_argv, argv);
        assert_eq!(second.preexisting_len(), 2);
        assert_eq!(second.replay(good_key, "histo"), Some(good));
        assert_eq!(second.replay(bad_key, "saxpy"), None);
        assert!(!bad_path.exists(), "damaged entry is deleted");
        let c = second.counters();
        assert_eq!((c.replayed, c.dropped), (1, 1));

        // Fingerprint mismatch refuses to resume.
        let err = RunJournal::resume(&runs, "r1", "other-fp").unwrap_err();
        assert!(err.contains("fingerprint"), "unexpected error: {err}");
        // Unknown run id refuses with a clear message.
        let err = RunJournal::resume(&runs, "nope", "fp").unwrap_err();
        assert!(err.contains("nothing to resume"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&runs);
    }
}
