//! Plain-text table rendering for experiment output, aligned to be
//! compared side by side with the paper's tables and figure data.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use dmdc_core::report::Table;
///
/// let mut t = Table::new("demo");
/// t.headers(["name", "value"]);
/// t.row(["x".to_string(), "1".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("name"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the headers.
    pub fn row<I>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = String>,
    {
        let row: Vec<String> = cells.into_iter().collect();
        assert!(
            self.headers.is_empty() || row.len() == self.headers.len(),
            "row has {} cells, headers have {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Exports the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes or newlines), headers first. Handy for plotting the
    /// regenerated figures.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            out.push_str(
                &self
                    .headers
                    .iter()
                    .map(|h| field(h))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        if !self.headers.is_empty() {
            for (i, h) in self.headers.iter().enumerate() {
                write!(f, "{:<w$}  ", h, w = widths[i])?;
            }
            writeln!(f)?;
            for (i, _) in self.headers.iter().enumerate() {
                write!(f, "{}  ", "-".repeat(widths[i]))?;
            }
            writeln!(f)?;
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", c, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage, e.g. `0.953 -> "95.3%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Mean / min / max of a sample (the paper's bars with "I-beam" ranges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl GroupStat {
    /// Computes the statistic over a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> GroupStat {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        GroupStat { mean, min, max }
    }

    /// Renders as `mean [min, max]` percentages.
    pub fn pct_range(&self) -> String {
        format!("{} [{}, {}]", pct(self.mean), pct(self.min), pct(self.max))
    }
}

impl fmt::Display for GroupStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} [{:.3}, {:.3}]", self.mean, self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t");
        t.headers(["a", "bbbb"]);
        t.row(["xxxxx".to_string(), "1".to_string()]);
        t.row(["y".to_string(), "22".to_string()]);
        let s = t.to_string();
        assert!(s.contains("== t =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "{s}");
        assert!(lines[1].starts_with("a    "), "{s}");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t");
        t.headers(["a", "b"]);
        t.row(["only-one".to_string()]);
    }

    #[test]
    fn group_stat_math() {
        let g = GroupStat::of(&[0.1, 0.5, 0.3]);
        assert!((g.mean - 0.3).abs() < 1e-12);
        assert_eq!(g.min, 0.1);
        assert_eq!(g.max, 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        GroupStat::of(&[]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9534), "95.3%");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(2.34), "2.3");
        let g = GroupStat::of(&[0.5]);
        assert_eq!(g.pct_range(), "50.0% [50.0%, 50.0%]");
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut t = Table::new("t");
        t.headers(["a", "b"]);
        t.row(["plain".to_string(), "with, comma".to_string()]);
        t.row(["has \"quote\"".to_string(), "x".to_string()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with, comma\"");
        assert_eq!(lines[2], "\"has \"\"quote\"\"\",x");
    }

    #[test]
    fn table_len_and_empty() {
        let mut t = Table::new("t");
        assert!(t.is_empty());
        t.row(["x".to_string()]);
        assert_eq!(t.len(), 1);
    }
}
