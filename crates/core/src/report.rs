//! Experiment output: tables, the [`Report`] emitter layer (text, JSON,
//! CSV) and the shared number-formatting helpers.
//!
//! Every experiment reducer produces a [`Report`] — one or more [`Table`]s
//! under an experiment id. The text emitter is byte-identical to the
//! historical per-experiment `render()` output; JSON and CSV are
//! structured exports of the same cells for plotting and CI artifacts.
//! All percentage/ratio formatting funnels through [`fmt`], so every
//! table rounds the same way.

pub use self::fmt::{f1, f1_ci, f2, f2_ci, pct, pct_ci};

use crate::cell::CellFailure;

/// The one place experiment output formats numbers.
///
/// Historically each `render()` implementation formatted its own
/// percentages and ratios, and the rounding drifted between output paths
/// (Fig. 4 vs Fig. 5). Reducers and the CLI now share these helpers; a
/// rounding rule changes here or nowhere.
pub mod fmt {
    use super::GroupStat;

    /// Formats a fraction as a percentage, e.g. `0.953 -> "95.3%"`.
    pub fn pct(x: f64) -> String {
        format!("{:.1}%", x * 100.0)
    }

    /// Formats with two decimals.
    pub fn f2(x: f64) -> String {
        format!("{x:.2}")
    }

    /// Formats with one decimal.
    pub fn f1(x: f64) -> String {
        format!("{x:.1}")
    }

    /// Formats a sampled estimate as `value ±ci` with two decimals. The
    /// half-width is the 95% confidence interval the sampling engine
    /// attached to the cell.
    pub fn f2_ci(x: f64, ci: f64) -> String {
        format!("{x:.2} ±{ci:.2}")
    }

    /// Formats a sampled estimate as `value ±ci` with one decimal.
    pub fn f1_ci(x: f64, ci: f64) -> String {
        format!("{x:.1} ±{ci:.1}")
    }

    /// Formats a sampled fraction as a percentage with its 95% CI, e.g.
    /// `(0.953, 0.01) -> "95.3% ±1.0%"`.
    pub fn pct_ci(x: f64, ci: f64) -> String {
        format!("{:.1}% ±{:.1}%", x * 100.0, ci * 100.0)
    }

    /// Renders a [`GroupStat`] as `mean [min, max]` percentages — the
    /// paper's bar-with-I-beam notation. Sampled estimates additionally
    /// carry the propagated 95% CI half-width as ` ±x.x%`.
    pub fn pct_range(g: &GroupStat) -> String {
        match g.ci {
            Some(ci) => format!(
                "{} [{}, {}] ±{:.1}%",
                pct(g.mean),
                pct(g.min),
                pct(g.max),
                ci * 100.0
            ),
            None => format!("{} [{}, {}]", pct(g.mean), pct(g.min), pct(g.max)),
        }
    }

    /// Escapes a string for inclusion in a JSON string literal.
    pub(super) fn json_escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
}

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use dmdc_core::report::Table;
///
/// let mut t = Table::new("demo");
/// t.headers(["name", "value"]);
/// t.row(["x".to_string(), "1".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("name"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the headers.
    pub fn row<I>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = String>,
    {
        let row: Vec<String> = cells.into_iter().collect();
        assert!(
            self.headers.is_empty() || row.len() == self.headers.len(),
            "row has {} cells, headers have {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The header cells (empty if none were set).
    pub fn header_cells(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn data_rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Exports the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes or newlines), headers first. Handy for plotting the
    /// regenerated figures.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            out.push_str(
                &self
                    .headers
                    .iter()
                    .map(|h| field(h))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        if !self.headers.is_empty() {
            for (i, h) in self.headers.iter().enumerate() {
                write!(f, "{:<w$}  ", h, w = widths[i])?;
            }
            writeln!(f)?;
            for (i, _) in self.headers.iter().enumerate() {
                write!(f, "{}  ", "-".repeat(widths[i]))?;
            }
            writeln!(f)?;
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", c, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Which serialization [`Report::emit`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned plain-text tables (the historical default, byte-identical
    /// to the pre-registry `render()` output).
    Text,
    /// One JSON document per report.
    Json,
    /// RFC-4180-style CSV, tables separated by a blank line.
    Csv,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<OutputFormat, String> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown format `{other}` (text, json or csv)")),
        }
    }
}

/// The output of one experiment reduction: an id plus rendered tables,
/// emittable as text, JSON or CSV — and, when cells were quarantined by
/// the fault-tolerant runner, the structured [`CellFailure`]s that
/// explain what is missing and why.
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    tables: Vec<Table>,
    failures: Vec<CellFailure>,
}

impl Report {
    /// An empty report for the given experiment id.
    pub fn new(id: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            tables: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// A single-table report.
    pub fn single(id: impl Into<String>, table: Table) -> Report {
        let mut r = Report::new(id);
        r.push(table);
        r
    }

    /// Appends a table.
    pub fn push(&mut self, table: Table) -> &mut Report {
        self.tables.push(table);
        self
    }

    /// Appends a quarantined-cell record.
    pub fn push_failure(&mut self, failure: CellFailure) -> &mut Report {
        self.failures.push(failure);
        self
    }

    /// The experiment id this report came from.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The rendered tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Cells quarantined while producing this report.
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// Whether any cell was quarantined (the report is then partial).
    pub fn has_failures(&self) -> bool {
        !self.failures.is_empty()
    }

    /// The quarantined-cells table appended to text/CSV output, or `None`
    /// for a clean report (keeping clean output byte-identical to
    /// pre-recovery builds).
    fn failure_table(&self) -> Option<Table> {
        if self.failures.is_empty() {
            return None;
        }
        let mut t = Table::new("quarantined cells");
        t.headers(["workload", "failure", "attempts", "detail"]);
        for f in &self.failures {
            t.row([
                f.workload.clone(),
                f.kind.label().to_string(),
                f.attempts.to_string(),
                f.summary(),
            ]);
        }
        Some(t)
    }

    /// Emits in the requested format.
    pub fn emit(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Text => self.text(),
            OutputFormat::Json => self.json(),
            OutputFormat::Csv => self.csv(),
        }
    }

    /// Plain text: each table's aligned rendering followed by a blank
    /// line — exactly what `println!("{table}")` produced before the
    /// emitter layer existed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.to_string());
            out.push('\n');
        }
        if let Some(t) = self.failure_table() {
            out.push_str(&t.to_string());
            out.push('\n');
        }
        out
    }

    /// One JSON document: `{"experiment": id, "tables": [{title, headers,
    /// rows}, ...]}`, rows as arrays of cell strings.
    pub fn json(&self) -> String {
        use self::fmt::json_escape;
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"experiment\": \"{}\",\n  \"tables\": [",
            json_escape(&self.id)
        ));
        for (ti, t) in self.tables.iter().enumerate() {
            if ti > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"title\": \"{}\",\n      \"headers\": [",
                json_escape(t.title())
            ));
            for (i, h) in t.header_cells().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(h)));
            }
            out.push_str("],\n      \"rows\": [");
            for (ri, row) in t.data_rows().iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                out.push_str("\n        [");
                for (i, c) in row.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\"", json_escape(c)));
                }
                out.push(']');
            }
            if !t.data_rows().is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.tables.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        if !self.failures.is_empty() {
            out.push_str(",\n  \"failures\": [");
            for (i, fl) in self.failures.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"workload\": \"{}\", \"kind\": \"{}\", \"attempts\": {}, \
                     \"spec\": \"{}\", \"detail\": \"{}\"}}",
                    json_escape(&fl.workload),
                    json_escape(fl.kind.label()),
                    fl.attempts,
                    json_escape(&fl.spec),
                    json_escape(&fl.detail)
                ));
            }
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// CSV: each table's [`Table::to_csv`] preceded by a `# title`
    /// comment line, tables separated by a blank line.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let extra = self.failure_table();
        for (i, t) in self.tables.iter().chain(extra.iter()).enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("# {}\n", t.title()));
            out.push_str(&t.to_csv());
        }
        out
    }
}

/// Mean / min / max of a sample (the paper's bars with "I-beam" ranges).
///
/// Exact runs leave `ci` at `None` and render exactly as before. Sampled
/// runs attach the 95% confidence half-width of the *mean*, propagated
/// from the per-cell half-widths the sampling engine reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// 95% CI half-width of the mean, when the inputs were sampled.
    pub ci: Option<f64>,
}

impl GroupStat {
    /// Computes the statistic over a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> GroupStat {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        GroupStat {
            mean,
            min,
            max,
            ci: None,
        }
    }

    /// Like [`GroupStat::of`], but each value carries an optional per-cell
    /// 95% CI half-width (None = the cell ran exactly, zero uncertainty).
    /// When at least one cell was sampled, the group mean's half-width is
    /// the sum of the cell half-widths divided by the count. Summing
    /// (rather than root-sum-square) is deliberately conservative: a
    /// sampled cell that observed no events reports its full value range
    /// as the half-width, and interval uncertainty composes linearly.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or mismatched lengths.
    pub fn of_ci(values: &[f64], cis: &[Option<f64>]) -> GroupStat {
        assert_eq!(values.len(), cis.len(), "one CI slot per value");
        let mut g = GroupStat::of(values);
        if cis.iter().any(Option::is_some) {
            let sum: f64 = cis.iter().flatten().sum();
            g.ci = Some(sum / values.len() as f64);
        }
        g
    }

    /// Renders as `mean [min, max]` percentages (see [`fmt::pct_range`]).
    pub fn pct_range(&self) -> String {
        fmt::pct_range(self)
    }
}

impl std::fmt::Display for GroupStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} [{:.3}, {:.3}]", self.mean, self.min, self.max)?;
        if let Some(ci) = self.ci {
            write!(f, " ±{ci:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t");
        t.headers(["a", "bbbb"]);
        t.row(["xxxxx".to_string(), "1".to_string()]);
        t.row(["y".to_string(), "22".to_string()]);
        let s = t.to_string();
        assert!(s.contains("== t =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "{s}");
        assert!(lines[1].starts_with("a    "), "{s}");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t");
        t.headers(["a", "b"]);
        t.row(["only-one".to_string()]);
    }

    #[test]
    fn group_stat_math() {
        let g = GroupStat::of(&[0.1, 0.5, 0.3]);
        assert!((g.mean - 0.3).abs() < 1e-12);
        assert_eq!(g.min, 0.1);
        assert_eq!(g.max, 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        GroupStat::of(&[]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9534), "95.3%");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(2.34), "2.3");
        let g = GroupStat::of(&[0.5]);
        assert_eq!(g.pct_range(), "50.0% [50.0%, 50.0%]");
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut t = Table::new("t");
        t.headers(["a", "b"]);
        t.row(["plain".to_string(), "with, comma".to_string()]);
        t.row(["has \"quote\"".to_string(), "x".to_string()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with, comma\"");
        assert_eq!(lines[2], "\"has \"\"quote\"\"\",x");
    }

    #[test]
    fn report_text_matches_println_of_each_table() {
        let mut t = Table::new("t");
        t.headers(["a"]);
        t.row(["1".to_string()]);
        let expected = format!("{t}\n");
        let report = Report::single("demo", t);
        assert_eq!(report.text(), expected);
        assert_eq!(report.emit(OutputFormat::Text), expected);
    }

    #[test]
    fn report_json_is_wellformed_and_escaped() {
        let mut t = Table::new("ti\"tle");
        t.headers(["h1", "h2"]);
        t.row(["a\\b".to_string(), "c".to_string()]);
        let report = Report::single("x", t);
        let json = report.json();
        assert!(json.contains("\"experiment\": \"x\""));
        assert!(json.contains("ti\\\"tle"));
        assert!(json.contains("a\\\\b"));
        assert!(json.ends_with("}\n"));
        // Balanced braces/brackets (cheap well-formedness check; cells
        // contain no braces).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn report_csv_carries_titles() {
        let mut t1 = Table::new("first");
        t1.headers(["a"]);
        t1.row(["1".to_string()]);
        let mut t2 = Table::new("second");
        t2.headers(["b"]);
        t2.row(["2".to_string()]);
        let mut report = Report::new("multi");
        report.push(t1).push(t2);
        let csv = report.csv();
        assert!(csv.starts_with("# first\na\n1\n"));
        assert!(csv.contains("\n# second\nb\n2\n"));
    }

    #[test]
    fn output_format_parses() {
        assert_eq!("text".parse::<OutputFormat>(), Ok(OutputFormat::Text));
        assert_eq!("json".parse::<OutputFormat>(), Ok(OutputFormat::Json));
        assert_eq!("csv".parse::<OutputFormat>(), Ok(OutputFormat::Csv));
        assert!("xml".parse::<OutputFormat>().is_err());
    }

    #[test]
    fn fmt_helpers_round_once() {
        assert_eq!(
            fmt::pct_range(&GroupStat::of(&[0.5])),
            "50.0% [50.0%, 50.0%]"
        );
    }

    #[test]
    fn table_len_and_empty() {
        let mut t = Table::new("t");
        assert!(t.is_empty());
        t.row(["x".to_string()]);
        assert_eq!(t.len(), 1);
    }
}
