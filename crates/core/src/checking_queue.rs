//! The associative checking-queue variant of DMDC (paper §4.4): unsafe
//! stores park their *full* addresses in a small associative queue instead
//! of hashing into a table. No hashing conflicts — but the queue can
//! overflow, forcing a conservative replay, and each load's commit-time
//! check is an associative search.

use dmdc_types::{Age, MemSpan};

use dmdc_ooo::{
    CheckOutcome, CommitInfo, CommitKind, CoreConfig, LoadQueue, MemDepPolicy, PolicyCtx,
    ReplayKind, StoreResolution,
};

use crate::yla::{Interleave, YlaBank};

#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    span: MemSpan,
    resolve_cycle: dmdc_types::Cycle,
    own_end: Age,
}

#[derive(Debug, Clone, Copy)]
struct PendingStore {
    span: MemSpan,
    own_end: Age,
    resolve_cycle: dmdc_types::Cycle,
}

/// DMDC with an `entries`-deep associative checking queue (paper §4.4).
/// The paper estimates a 16-entry queue roughly matches the 2K-entry table
/// in replay rate; the ablation bench reproduces that comparison.
///
/// # Examples
///
/// ```
/// use dmdc_core::CheckingQueuePolicy;
/// use dmdc_ooo::{CoreConfig, MemDepPolicy};
///
/// let p = CheckingQueuePolicy::new(&CoreConfig::config2(), 16);
/// assert!(!p.needs_associative_lq());
/// ```
#[derive(Debug, Clone)]
pub struct CheckingQueuePolicy {
    ylas: YlaBank,
    queue: Vec<QueueEntry>,
    capacity: usize,
    pending: std::collections::BTreeMap<Age, PendingStore>,
    active: bool,
    end_check: Age,
    /// Set when the queue overflowed: the next unsafe-load commit replays
    /// conservatively and flushes the queue.
    overflowed: bool,
    cur_window_stores: u64,
    name: String,
}

impl CheckingQueuePolicy {
    /// Builds the policy with the paper's 8 quad-word YLA registers and an
    /// `entries`-deep queue.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(_core: &CoreConfig, entries: u32) -> CheckingQueuePolicy {
        assert!(entries > 0, "checking queue needs at least one entry");
        CheckingQueuePolicy {
            ylas: YlaBank::new(8, Interleave::QuadWord),
            queue: Vec::with_capacity(entries as usize),
            capacity: entries as usize,
            pending: std::collections::BTreeMap::new(),
            active: false,
            end_check: Age::OLDEST,
            overflowed: false,
            cur_window_stores: 0,
            name: format!("checking-queue-{entries}"),
        }
    }

    fn terminate(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.active = false;
        self.queue.clear();
        self.overflowed = false;
        if self.cur_window_stores == 1 {
            ctx.stats.single_store_windows += 1;
        }
        self.end_check = Age::OLDEST;
    }
}

impl MemDepPolicy for CheckingQueuePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn needs_associative_lq(&self) -> bool {
        false
    }

    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        _lq: &mut LoadQueue,
    ) -> Option<Age> {
        if safe {
            ctx.stats.safe_loads += 1;
        } else {
            ctx.stats.unsafe_loads += 1;
        }
        self.ylas.update(span.addr, age);
        ctx.energy.yla_writes += 1;
        None
    }

    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        _lq: &LoadQueue,
    ) -> StoreResolution {
        ctx.energy.yla_reads += 1;
        if self.ylas.is_safe_store(span.addr, age) {
            ctx.stats.safe_stores += 1;
            return StoreResolution {
                safe: true,
                replay_from: None,
            };
        }
        ctx.stats.unsafe_stores += 1;
        let own_end = self.ylas.value_for(span.addr);
        self.end_check = self.end_check.max(own_end);
        self.pending.insert(
            age,
            PendingStore {
                span,
                own_end,
                resolve_cycle: ctx.cycle,
            },
        );
        StoreResolution {
            safe: false,
            replay_from: None,
        }
    }

    fn on_commit(&mut self, ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome {
        if self.active && info.age.is_younger_than(self.end_check) {
            self.terminate(ctx);
        }
        let mut outcome = CheckOutcome::Ok;
        match info.kind {
            CommitKind::Store => {
                if let Some(ps) = self.pending.remove(&info.age) {
                    // Expire entries whose windows have closed before
                    // considering capacity.
                    self.queue.retain(|e| !info.age.is_younger_than(e.own_end));
                    if self.queue.len() < self.capacity {
                        self.queue.push(QueueEntry {
                            span: ps.span,
                            resolve_cycle: ps.resolve_cycle,
                            own_end: ps.own_end,
                        });
                        ctx.energy.cq_writes += 1;
                    } else {
                        self.overflowed = true;
                    }
                    if !self.active {
                        self.active = true;
                        self.cur_window_stores = 0;
                        ctx.stats.checking_windows += 1;
                    }
                    self.cur_window_stores += 1;
                    ctx.stats.window_unsafe_stores += 1;
                }
            }
            CommitKind::Load if self.active => {
                ctx.stats.window_loads += 1;
                if info.safe_load {
                    ctx.stats.window_safe_loads += 1;
                }
                if info.safe_load {
                    ctx.stats.safe_load_check_bypasses += 1;
                } else {
                    let span = info.span.expect("loads carry a span");
                    ctx.energy.cq_searches += 1;
                    if self.overflowed {
                        // Lost track of some store: conservative replay,
                        // after which everything younger re-executes with
                        // the offending stores already in memory.
                        ctx.stats.replays.record(ReplayKind::Coherence);
                        self.queue.clear();
                        self.overflowed = false;
                        outcome = CheckOutcome::Replay;
                    } else if let Some(hit) =
                        self.queue.iter().find(|e| e.span.overlaps(span)).copied()
                    {
                        let kind = if !info.value_correct {
                            ReplayKind::TrueViolation
                        } else {
                            // Full addresses: only the timing approximation
                            // can fire. X if inside the store's own window.
                            let issue = info.issue_cycle.expect("committed loads issued");
                            if issue < hit.resolve_cycle {
                                // Should have been a true violation unless a
                                // silent store; fold into the X column.
                                ReplayKind::FalseAddrMatchX
                            } else if info.age <= hit.own_end {
                                ReplayKind::FalseAddrMatchX
                            } else {
                                ReplayKind::FalseAddrMatchY
                            }
                        };
                        ctx.stats.replays.record(kind);
                        outcome = CheckOutcome::Replay;
                    }
                }
            }
            _ => {}
        }
        if self.active {
            ctx.stats.window_instructions += 1;
        }
        if self.active && !info.age.is_older_than(self.end_check) {
            self.terminate(ctx);
        }
        outcome
    }

    fn on_squash(&mut self, _ctx: &mut PolicyCtx<'_>, youngest_surviving: Age) {
        self.ylas.on_squash(youngest_surviving);
        self.pending
            .retain(|&age, _| !age.is_younger_than(youngest_surviving));
    }

    fn audit_self(&self, lq: &LoadQueue) -> Option<String> {
        if let Some((age, span)) = self.ylas.find_uncovered_load(lq) {
            return Some(format!(
                "YLA register under-approximates issued load age {} at {:#x}",
                age.0, span.addr.0
            ));
        }
        if self.queue.len() > self.capacity {
            return Some(format!(
                "checking queue holds {} > {} entries",
                self.queue.len(),
                self.capacity
            ));
        }
        if !self.active && (!self.queue.is_empty() || self.overflowed) {
            return Some("checking queue carries entries outside a window".to_string());
        }
        None
    }

    fn on_cycle(&mut self, ctx: &mut PolicyCtx<'_>) {
        if self.active {
            ctx.stats.checking_mode_cycles += 1;
        }
    }

    fn has_cycle_hook(&self) -> bool {
        true
    }

    fn on_idle_cycles(&mut self, ctx: &mut PolicyCtx<'_>, n: u64) {
        // `active` cannot change across idle cycles (no other hook fires),
        // so the per-cycle count batches exactly.
        if self.active {
            ctx.stats.checking_mode_cycles += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_ooo::{EnergyCounters, PolicyStats};
    use dmdc_types::{AccessSize, Addr, Cycle};

    fn span(addr: u64, bytes: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::from_bytes(bytes).unwrap())
    }

    struct H {
        p: CheckingQueuePolicy,
        e: EnergyCounters,
        s: PolicyStats,
        lq: LoadQueue,
        cycle: Cycle,
    }

    impl H {
        fn new(entries: u32) -> H {
            H {
                p: CheckingQueuePolicy::new(&CoreConfig::config2(), entries),
                e: EnergyCounters::default(),
                s: PolicyStats::default(),
                lq: LoadQueue::new(64),
                cycle: Cycle(0),
            }
        }

        fn parts(&mut self) -> (&mut CheckingQueuePolicy, PolicyCtx<'_>, &mut LoadQueue) {
            self.cycle.tick();
            (
                &mut self.p,
                PolicyCtx {
                    cycle: self.cycle,
                    energy: &mut self.e,
                    stats: &mut self.s,
                },
                &mut self.lq,
            )
        }

        fn load_issue(&mut self, age: u64, sp: MemSpan) {
            let (p, mut ctx, lq) = self.parts();
            p.on_load_issue(&mut ctx, Age(age), sp, false, lq);
        }

        fn store_resolve(&mut self, age: u64, sp: MemSpan) -> bool {
            let (p, mut ctx, lq) = self.parts();
            p.on_store_resolve(&mut ctx, Age(age), sp, lq).safe
        }

        fn commit(
            &mut self,
            age: u64,
            kind: CommitKind,
            sp: Option<MemSpan>,
            safe: bool,
            correct: bool,
        ) -> CheckOutcome {
            let (p, mut ctx, _) = self.parts();
            let info = CommitInfo {
                age: Age(age),
                kind,
                span: sp,
                safe_load: safe,
                value_correct: correct,
                issue_cycle: Some(Cycle(1_000)),
            };
            p.on_commit(&mut ctx, &info)
        }
    }

    #[test]
    fn detects_violation_via_full_addresses() {
        let mut h = H::new(4);
        h.load_issue(10, span(0x100, 8));
        assert!(!h.store_resolve(5, span(0x100, 8)));
        h.commit(5, CommitKind::Store, Some(span(0x100, 8)), false, true);
        let out = h.commit(10, CommitKind::Load, Some(span(0x100, 8)), false, false);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(h.s.replays.true_violation, 1);
    }

    #[test]
    fn no_hash_conflicts_at_all() {
        let mut h = H::new(4);
        h.load_issue(10, span(0x100, 8));
        h.store_resolve(5, span(0x900, 8)); // different address, same-ish hash irrelevant
        h.commit(5, CommitKind::Store, Some(span(0x900, 8)), false, true);
        let out = h.commit(10, CommitKind::Load, Some(span(0x100, 8)), false, true);
        assert_eq!(
            out,
            CheckOutcome::Ok,
            "full-address compare: no false hash replays"
        );
    }

    #[test]
    fn overflow_forces_conservative_replay() {
        let mut h = H::new(1);
        // Two unsafe stores to distinct addresses within one window.
        h.load_issue(20, span(0x100, 8));
        h.load_issue(21, span(0x200, 8));
        h.store_resolve(5, span(0x100, 8));
        h.store_resolve(6, span(0x200, 8));
        h.commit(5, CommitKind::Store, Some(span(0x100, 8)), false, true);
        h.commit(6, CommitKind::Store, Some(span(0x200, 8)), false, true);
        // A load to an unrelated address still replays: the queue lost a store.
        let out = h.commit(9, CommitKind::Load, Some(span(0x900, 8)), false, true);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(
            h.s.replays.coherence, 1,
            "overflow replays are tallied separately"
        );
    }

    #[test]
    fn safe_loads_bypass_queue_search() {
        let mut h = H::new(4);
        h.load_issue(10, span(0x100, 8));
        h.store_resolve(5, span(0x100, 8));
        h.commit(5, CommitKind::Store, Some(span(0x100, 8)), false, true);
        let out = h.commit(9, CommitKind::Load, Some(span(0x100, 8)), true, true);
        assert_eq!(out, CheckOutcome::Ok);
        assert_eq!(h.e.cq_searches, 0);
        assert_eq!(h.s.safe_load_check_bypasses, 1);
    }

    #[test]
    fn entries_expire_when_their_window_passes() {
        let mut h = H::new(1);
        // First store's window ends at age 10.
        h.load_issue(10, span(0x100, 8));
        h.store_resolve(5, span(0x100, 8));
        h.commit(5, CommitKind::Store, Some(span(0x100, 8)), false, true);
        // The boundary load commits (safe), closing nothing yet — but by
        // the time a second unsafe store commits at a later age, the first
        // entry has expired, so no overflow.
        h.commit(10, CommitKind::Load, Some(span(0x100, 8)), true, true);
        h.load_issue(30, span(0x300, 8));
        h.store_resolve(25, span(0x300, 8));
        h.commit(25, CommitKind::Store, Some(span(0x300, 8)), false, true);
        assert!(!h.p.overflowed, "expired entry must have made room");
        let out = h.commit(29, CommitKind::Load, Some(span(0x800, 8)), false, true);
        assert_eq!(out, CheckOutcome::Ok);
    }

    #[test]
    fn timing_false_replay_classified() {
        let mut h = H::new(4);
        h.load_issue(10, span(0x100, 8));
        h.store_resolve(5, span(0x100, 8));
        h.commit(5, CommitKind::Store, Some(span(0x100, 8)), false, true);
        // Value-correct load to the same address inside the window.
        let out = h.commit(10, CommitKind::Load, Some(span(0x100, 8)), false, true);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(h.s.replays.false_addr_x, 1);
    }
}
