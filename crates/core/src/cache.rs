//! Persistent content-addressed cache of verified experiment cells.
//!
//! Re-running `dmdc suite` or `dmdc experiment` repeats mostly identical
//! simulations: the cell matrix is deterministic, and a cell's entire
//! output — its [`CellResult`] — is a pure function of the run
//! specification, the workload's program bytes and the simulator's
//! semantics. This module keys each cell on exactly those three inputs:
//!
//! ```text
//! key = fnv64( fingerprint ‖ workload digest ‖ RunSpec description )
//! ```
//!
//! * **fingerprint** — [`dmdc_ooo::SIM_FINGERPRINT`] combined with this
//!   crate's [`POLICY_FINGERPRINT`]; bumped by hand whenever a change
//!   alters any number a simulation reports. Bumping invalidates every
//!   cached cell at once.
//! * **workload digest** — [`workload_digest`]: the workload's name,
//!   group, entry point, encoded instruction words and initial data
//!   segments. Editing one byte of one kernel invalidates exactly that
//!   kernel's cells.
//! * **RunSpec description** — the `Debug` rendering of the cell's
//!   [`CoreConfig`](dmdc_ooo::CoreConfig),
//!   [`PolicyKind`](crate::experiments::PolicyKind) and
//!   [`SimOptions`](dmdc_ooo::SimOptions), which spells out every field
//!   value; any config/policy/option change moves the key.
//!
//! Cells are stored one file per key (`<key>.cell`), each wrapped in the
//! checksummed [`seal`] envelope — a format-version header plus an fnv64
//! content checksum — around the versioned [`CellResult::to_record`]
//! body. Writes go through a temporary file plus rename, so concurrent
//! processes never observe a torn record. On load the envelope is
//! verified first: a truncated, bit-flipped, checksum-mismatched or
//! version-mismatched file is **quarantined** to `quarantine/` under the
//! cache root (never silently deserialized), recorded in the
//! [recovery ledger](crate::recovery), counted in [`CacheCounters`], and
//! the cell transparently regenerated. Hits skip both the simulation and
//! its emulator-oracle verification — the cache stores only verified
//! results.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dmdc_isa::encode;
use dmdc_workloads::Workload;

use crate::cell::CellResult;
use crate::recovery::{self, RecoveryKind};
use crate::sampling::Checkpoint;

/// Version tag of the dependence-policy implementations in this crate
/// (DMDC, YLA, bloom, checking queue). Bump together with semantic
/// changes here, as [`dmdc_ooo::SIM_FINGERPRINT`] is bumped for the
/// substrate.
pub const POLICY_FINGERPRINT: &str = "dmdc-core-v1";

/// The combined simulator fingerprint cache keys incorporate by default.
pub fn default_fingerprint() -> String {
    format!("{}+{}", dmdc_ooo::SIM_FINGERPRINT, POLICY_FINGERPRINT)
}

/// The default on-disk location, `target/dmdc-cache/` under the current
/// working directory (the cache lives next to build artifacts: `cargo
/// clean` clears both).
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target").join("dmdc-cache")
}

/// Streaming 64-bit FNV-1a. Deterministic across processes and builds —
/// unlike `std`'s `DefaultHasher`, whose algorithm is unspecified — which
/// is what makes the keys stable enough to persist.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds bytes into the running hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the running hash.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Format-version header line of the sealed on-disk envelope. Bumping the
/// version invalidates (quarantines) every previously written file.
const SEAL_MAGIC: &str = "dmdc-seal v1";

/// Why a sealed record failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// No recognizable seal header (foreign or pre-integrity file).
    Header,
    /// Seal header present but with a different format version.
    Version,
    /// Body shorter or longer than the header declares (truncation).
    Length,
    /// fnv64 of the body disagrees with the header (bit rot).
    Checksum,
}

impl IntegrityError {
    /// Stable label used in quarantine records and test assertions.
    pub fn label(&self) -> &'static str {
        match self {
            IntegrityError::Header => "bad-header",
            IntegrityError::Version => "version-mismatch",
            IntegrityError::Length => "truncated",
            IntegrityError::Checksum => "checksum-mismatch",
        }
    }
}

/// Wraps `body` in the checksummed envelope persisted records use:
///
/// ```text
/// dmdc-seal v1 <body-bytes> <fnv64-of-body, 16 hex digits>
/// <body>
/// ```
pub fn seal(body: &str) -> String {
    let mut h = Fnv64::new();
    h.write(body.as_bytes());
    format!("{SEAL_MAGIC} {} {:016x}\n{body}", body.len(), h.finish())
}

/// Verifies a [`seal`]ed envelope and returns the body. Every failure
/// mode is classified so callers can report *why* a file was rejected.
pub fn unseal(text: &str) -> Result<&str, IntegrityError> {
    let (header, body) = text.split_once('\n').ok_or(IntegrityError::Header)?;
    let rest = match header.strip_prefix(SEAL_MAGIC) {
        Some(rest) => rest,
        None => {
            // Distinguish "other seal version" from "not a seal at all".
            return Err(if header.starts_with("dmdc-seal ") {
                IntegrityError::Version
            } else {
                IntegrityError::Header
            });
        }
    };
    let mut words = rest.split_whitespace();
    let len: usize = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or(IntegrityError::Header)?;
    let sum = words
        .next()
        .and_then(|w| u64::from_str_radix(w, 16).ok())
        .ok_or(IntegrityError::Header)?;
    if words.next().is_some() {
        return Err(IntegrityError::Header);
    }
    if body.len() != len {
        return Err(IntegrityError::Length);
    }
    let mut h = Fnv64::new();
    h.write(body.as_bytes());
    if h.finish() != sum {
        return Err(IntegrityError::Checksum);
    }
    Ok(body)
}

/// Writes `body` to `path` sealed and atomically: the envelope goes to a
/// sibling temporary file first and is renamed into place, so no reader
/// (or crash) ever observes a torn record. Returns `false` on I/O errors
/// (the temp file is cleaned up best-effort).
pub fn write_sealed(path: &Path, body: &str, tmp_tag: u64) -> bool {
    let Some(dir) = path.parent() else {
        return false;
    };
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let tmp = dir.join(format!("{name}.tmp.{tmp_tag:x}"));
    if std::fs::write(&tmp, seal(body)).is_ok() && std::fs::rename(&tmp, path).is_ok() {
        true
    } else {
        let _ = std::fs::remove_file(&tmp);
        false
    }
}

/// A per-process tag making temporary file names unique across
/// concurrent writers of the same key.
pub(crate) fn tmp_tag(key: u64) -> u64 {
    std::process::id() as u64 ^ key.rotate_left(32)
}

/// Content digest of a workload: name, group, entry point, encoded text
/// and initial data segments. Two workloads digest equal iff the
/// simulator would see identical programs under identical labels.
pub fn workload_digest(w: &Workload) -> u64 {
    let mut h = Fnv64::new();
    h.write(w.name.as_bytes());
    h.write(format!("{:?}", w.group).as_bytes());
    h.write_u64(w.program.entry() as u64);
    h.write_u64(w.program.insts().len() as u64);
    for &inst in w.program.insts() {
        h.write(&encode(inst).to_le_bytes());
    }
    h.write_u64(w.program.data_segments().len() as u64);
    for (base, bytes) in w.program.data_segments() {
        h.write_u64(base.0);
        h.write_u64(bytes.len() as u64);
        h.write(bytes);
    }
    h.finish()
}

/// Hit/miss/store/integrity counters of one [`CellCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from disk (simulation skipped).
    pub hits: u64,
    /// Lookups that found no usable record.
    pub misses: u64,
    /// Freshly simulated cells persisted.
    pub stores: u64,
    /// Entries that failed integrity or schema verification (each also
    /// counts as a miss — the cell regenerates).
    pub corrupt: u64,
    /// Rejected entries successfully moved to `quarantine/` (the rest
    /// were deleted when the move failed).
    pub quarantined: u64,
}

/// A content-addressed, persistent store of verified [`CellResult`]s.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    fingerprint: String,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
}

impl CellCache {
    /// A cache rooted at `dir` with the default simulator fingerprint.
    pub fn new(dir: impl Into<PathBuf>) -> CellCache {
        CellCache::with_fingerprint(dir, default_fingerprint())
    }

    /// A cache rooted at `dir` keying on an explicit fingerprint (tests
    /// use this to prove that bumping the fingerprint re-runs every cell).
    pub fn with_fingerprint(dir: impl Into<PathBuf>, fingerprint: impl Into<String>) -> CellCache {
        CellCache {
            dir: dir.into(),
            fingerprint: fingerprint.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cell key for a (workload digest, spec description) pair.
    pub fn key(&self, workload_digest: u64, spec_desc: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.fingerprint.as_bytes());
        h.write_u64(workload_digest);
        h.write(spec_desc.as_bytes());
        h.finish()
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.cell"))
    }

    /// Where rejected entries are preserved for post-mortem inspection.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Moves a rejected entry aside (best-effort: falls back to deleting
    /// it so a broken file can never be consulted twice) and records the
    /// rejection.
    fn quarantine(&self, path: &Path, reason: &str) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        if quarantine_into(&self.quarantine_dir(), path, reason) {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a cell. The sealed envelope is verified before any
    /// deserialization; corrupt, truncated, version-mismatched or stale
    /// (schema/workload-mismatched) entries are quarantined and degrade
    /// to misses, so the cell regenerates. `expected_workload` guards
    /// against the astronomically unlikely key collision (and mislabeled
    /// files placed by hand).
    pub fn load(&self, key: u64, expected_workload: &str) -> Option<CellResult> {
        let path = self.path_of(key);
        let loaded = match std::fs::read_to_string(&path) {
            Err(_) => None, // absent (or unreadable): a plain miss
            Ok(text) => match unseal(&text) {
                Err(e) => {
                    self.quarantine(&path, e.label());
                    None
                }
                Ok(body) => {
                    let cell = CellResult::from_record(body)
                        .filter(|cell| cell.workload == expected_workload);
                    if cell.is_none() {
                        // Checksum-valid but undeserializable: a stale
                        // schema or a mislabeled record.
                        self.quarantine(&path, "stale-record");
                    }
                    cell
                }
            },
        };
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Persists a freshly computed cell, sealed and via tmp+rename.
    /// I/O failures are swallowed: a cache that cannot write (read-only
    /// checkout, full disk) costs a re-simulation later, never a wrong
    /// result now.
    pub fn store(&self, key: u64, cell: &CellResult) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path_of(key);
        if write_sealed(&path, &cell.to_record(), tmp_tag(key)) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            crate::faults::on_cache_entry_written(&path);
        }
    }

    /// Counters since this cache handle was created.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// Shared quarantine mechanics: move the rejected file into `qdir`
/// (best-effort — delete it when the move fails, so a broken file can
/// never be consulted twice) and record the rejection in the recovery
/// ledger. Returns whether the move succeeded.
fn quarantine_into(qdir: &Path, path: &Path, reason: &str) -> bool {
    let moved = std::fs::create_dir_all(qdir).is_ok()
        && path
            .file_name()
            .is_some_and(|name| std::fs::rename(path, qdir.join(name)).is_ok());
    if !moved {
        let _ = std::fs::remove_file(path);
    }
    recovery::record(
        RecoveryKind::CacheQuarantined,
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string()),
        reason,
    );
    moved
}

/// Format-version line of a persisted sampling checkpoint body. Bumping
/// it quarantines every previously stored checkpoint at once.
const CKPT_MAGIC: &str = "dmdc-ckpt v1";

/// A content-addressed, persistent store of sampling [`Checkpoint`]s —
/// the warm-run counterpart of [`CellCache`].
///
/// A sampled cell's checkpoints are a pure function of the simulator
/// fingerprint, the workload's program bytes, the core config, the
/// [`SampleSpec`](dmdc_ooo::SampleSpec) placement and the warming
/// horizon — notably **not** of the dependence policy under test, whose
/// structures a detailed window builds from scratch after the restore.
/// The store keys on exactly those inputs (the caller passes them
/// pre-rendered as `sample_desc`) plus the window index:
///
/// ```text
/// key = fnv64( fingerprint ‖ workload digest ‖ sample_desc ‖ window )
/// ```
///
/// Excluding the policy from the key is what makes checkpoints shareable:
/// within one cold suite run, the first policy to fast-forward a workload
/// populates the store and every other policy's cells restore from it. On
/// a fully warm run no fast-forward happens at all.
///
/// Files live under `checkpoints/` beside the cell cache, one per key
/// (`<key>.ckpt`), wrapped in the same [`seal`] envelope and held to the
/// same discipline: verify before deserializing, quarantine anything
/// damaged or stale to `checkpoints/quarantine/`, and regenerate
/// transparently (the fast-forward simply runs).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: String,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
}

impl CheckpointStore {
    /// A store under `root` (the cache root — checkpoints live in its
    /// `checkpoints/` subdirectory) with the default fingerprint.
    pub fn new(root: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore::with_fingerprint(root, default_fingerprint())
    }

    /// A store under `root` keying on an explicit fingerprint (tests use
    /// this to prove a fingerprint bump re-runs every fast-forward).
    pub fn with_fingerprint(
        root: impl Into<PathBuf>,
        fingerprint: impl Into<String>,
    ) -> CheckpointStore {
        CheckpointStore {
            dir: root.into().join("checkpoints"),
            fingerprint: fingerprint.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The store's directory (`<cache-root>/checkpoints`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The key for one window's checkpoint. `sample_desc` must render
    /// every input the checkpoint depends on besides the program: core
    /// config, sampling spec, population and warming horizon.
    pub fn key(&self, workload_digest: u64, sample_desc: &str, window: u32) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.fingerprint.as_bytes());
        h.write_u64(workload_digest);
        h.write(sample_desc.as_bytes());
        h.write_u64(window as u64);
        h.finish()
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.ckpt"))
    }

    /// Where rejected checkpoints are preserved for post-mortem
    /// inspection.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn quarantine(&self, path: &Path, reason: &str) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        if quarantine_into(&self.quarantine_dir(), path, reason) {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up window `window`'s checkpoint. The sealed envelope is
    /// verified before any deserialization; damaged or stale entries
    /// (wrong magic, wrong workload, undecodable body, window mismatch)
    /// are quarantined and degrade to misses, so the fast-forward simply
    /// re-runs.
    pub fn load(&self, key: u64, expected_workload: &str, window: u32) -> Option<Checkpoint> {
        let path = self.path_of(key);
        let loaded = match std::fs::read_to_string(&path) {
            Err(_) => None, // absent (or unreadable): a plain miss
            Ok(text) => match unseal(&text) {
                Err(e) => {
                    self.quarantine(&path, e.label());
                    None
                }
                Ok(body) => {
                    let ck = decode_checkpoint_body(body, expected_workload, window);
                    if ck.is_none() {
                        self.quarantine(&path, "stale-record");
                    }
                    ck
                }
            },
        };
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Persists a freshly captured checkpoint, sealed and via tmp+rename.
    /// I/O failures are swallowed: a store that cannot write costs a
    /// re-fast-forward later, never a wrong result now.
    pub fn store(&self, key: u64, workload: &str, checkpoint: &Checkpoint) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let body = format!("{CKPT_MAGIC}\nworkload {workload}\n{}", checkpoint.encode());
        let path = self.path_of(key);
        if write_sealed(&path, &body, tmp_tag(key)) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            crate::faults::on_cache_entry_written(&path);
        }
    }

    /// Counters since this store handle was created.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// Parses a stored checkpoint body: magic line, `workload <name>` guard,
/// then [`Checkpoint::encode`] output, with the window index required to
/// match and no trailing lines tolerated.
fn decode_checkpoint_body(body: &str, expected_workload: &str, window: u32) -> Option<Checkpoint> {
    let mut lines = body.lines();
    if lines.next()? != CKPT_MAGIC {
        return None;
    }
    if lines.next()?.strip_prefix("workload ")? != expected_workload {
        return None;
    }
    let ck = Checkpoint::decode(&mut lines)?;
    if ck.window != window || lines.next().is_some() {
        return None;
    }
    Some(ck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_workloads::{int_suite, Scale};

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        // Reference value: FNV-1a 64 of "hello" is fixed by the algorithm.
        let mut h = Fnv64::new();
        h.write(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
        let mut ab = Fnv64::new();
        ab.write(b"ab");
        let mut ba = Fnv64::new();
        ba.write(b"ba");
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn workload_digest_tracks_content() {
        let a = int_suite(Scale::Smoke).remove(0);
        let b = int_suite(Scale::Smoke).remove(0);
        assert_eq!(workload_digest(&a), workload_digest(&b));
        let bigger = int_suite(Scale::Default).remove(0);
        assert_ne!(workload_digest(&a), workload_digest(&bigger));
    }

    #[test]
    fn seal_roundtrips_and_classifies_damage() {
        let body = "workload histo\n1 2 3\n";
        let sealed = seal(body);
        assert_eq!(unseal(&sealed), Ok(body));
        // Truncation: body shorter than declared.
        let truncated = &sealed[..sealed.len() - 3];
        assert_eq!(unseal(truncated), Err(IntegrityError::Length));
        // Bit flip in the body: length intact, checksum off.
        let flipped = sealed.replace("histo", "hists");
        assert_eq!(unseal(&flipped), Err(IntegrityError::Checksum));
        // Foreign file and other seal versions.
        assert_eq!(unseal("not a seal\nbody"), Err(IntegrityError::Header));
        assert_eq!(
            unseal(&sealed.replace("dmdc-seal v1", "dmdc-seal v9")),
            Err(IntegrityError::Version)
        );
        assert_eq!(unseal(""), Err(IntegrityError::Header));
    }

    #[test]
    fn keys_separate_fingerprints_and_specs() {
        let c1 = CellCache::with_fingerprint("target/unused", "fp-a");
        let c2 = CellCache::with_fingerprint("target/unused", "fp-b");
        assert_ne!(c1.key(7, "spec"), c2.key(7, "spec"));
        assert_ne!(c1.key(7, "spec"), c1.key(7, "other-spec"));
        assert_ne!(c1.key(7, "spec"), c1.key(8, "spec"));
    }
}
