//! Persistent content-addressed cache of verified experiment cells.
//!
//! Re-running `dmdc suite` or `dmdc experiment` repeats mostly identical
//! simulations: the cell matrix is deterministic, and a cell's entire
//! output — its [`CellResult`] — is a pure function of the run
//! specification, the workload's program bytes and the simulator's
//! semantics. This module keys each cell on exactly those three inputs:
//!
//! ```text
//! key = fnv64( fingerprint ‖ workload digest ‖ RunSpec description )
//! ```
//!
//! * **fingerprint** — [`dmdc_ooo::SIM_FINGERPRINT`] combined with this
//!   crate's [`POLICY_FINGERPRINT`]; bumped by hand whenever a change
//!   alters any number a simulation reports. Bumping invalidates every
//!   cached cell at once.
//! * **workload digest** — [`workload_digest`]: the workload's name,
//!   group, entry point, encoded instruction words and initial data
//!   segments. Editing one byte of one kernel invalidates exactly that
//!   kernel's cells.
//! * **RunSpec description** — the `Debug` rendering of the cell's
//!   [`CoreConfig`](dmdc_ooo::CoreConfig),
//!   [`PolicyKind`](crate::experiments::PolicyKind) and
//!   [`SimOptions`](dmdc_ooo::SimOptions), which spells out every field
//!   value; any config/policy/option change moves the key.
//!
//! Cells are stored one file per key (`<key>.cell`) in the versioned
//! [`CellResult::to_record`] format; unreadable, truncated or
//! schema-mismatched files degrade to misses. Writes go through a
//! temporary file plus rename, so concurrent processes never observe a
//! torn record. Hits skip both the simulation and its emulator-oracle
//! verification — the cache stores only verified results.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dmdc_isa::encode;
use dmdc_workloads::Workload;

use crate::cell::CellResult;

/// Version tag of the dependence-policy implementations in this crate
/// (DMDC, YLA, bloom, checking queue). Bump together with semantic
/// changes here, as [`dmdc_ooo::SIM_FINGERPRINT`] is bumped for the
/// substrate.
pub const POLICY_FINGERPRINT: &str = "dmdc-core-v1";

/// The combined simulator fingerprint cache keys incorporate by default.
pub fn default_fingerprint() -> String {
    format!("{}+{}", dmdc_ooo::SIM_FINGERPRINT, POLICY_FINGERPRINT)
}

/// The default on-disk location, `target/dmdc-cache/` under the current
/// working directory (the cache lives next to build artifacts: `cargo
/// clean` clears both).
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target").join("dmdc-cache")
}

/// Streaming 64-bit FNV-1a. Deterministic across processes and builds —
/// unlike `std`'s `DefaultHasher`, whose algorithm is unspecified — which
/// is what makes the keys stable enough to persist.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds bytes into the running hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the running hash.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Content digest of a workload: name, group, entry point, encoded text
/// and initial data segments. Two workloads digest equal iff the
/// simulator would see identical programs under identical labels.
pub fn workload_digest(w: &Workload) -> u64 {
    let mut h = Fnv64::new();
    h.write(w.name.as_bytes());
    h.write(format!("{:?}", w.group).as_bytes());
    h.write_u64(w.program.entry() as u64);
    h.write_u64(w.program.insts().len() as u64);
    for &inst in w.program.insts() {
        h.write(&encode(inst).to_le_bytes());
    }
    h.write_u64(w.program.data_segments().len() as u64);
    for (base, bytes) in w.program.data_segments() {
        h.write_u64(base.0);
        h.write_u64(bytes.len() as u64);
        h.write(bytes);
    }
    h.finish()
}

/// Hit/miss/store counters of one [`CellCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from disk (simulation skipped).
    pub hits: u64,
    /// Lookups that found no usable record.
    pub misses: u64,
    /// Freshly simulated cells persisted.
    pub stores: u64,
}

/// A content-addressed, persistent store of verified [`CellResult`]s.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    fingerprint: String,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl CellCache {
    /// A cache rooted at `dir` with the default simulator fingerprint.
    pub fn new(dir: impl Into<PathBuf>) -> CellCache {
        CellCache::with_fingerprint(dir, default_fingerprint())
    }

    /// A cache rooted at `dir` keying on an explicit fingerprint (tests
    /// use this to prove that bumping the fingerprint re-runs every cell).
    pub fn with_fingerprint(dir: impl Into<PathBuf>, fingerprint: impl Into<String>) -> CellCache {
        CellCache {
            dir: dir.into(),
            fingerprint: fingerprint.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cell key for a (workload digest, spec description) pair.
    pub fn key(&self, workload_digest: u64, spec_desc: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.fingerprint.as_bytes());
        h.write_u64(workload_digest);
        h.write(spec_desc.as_bytes());
        h.finish()
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.cell"))
    }

    /// Looks up a cell. `expected_workload` guards against the
    /// astronomically unlikely key collision (and mislabeled files placed
    /// by hand); a name mismatch is a miss.
    pub fn load(&self, key: u64, expected_workload: &str) -> Option<CellResult> {
        let loaded = std::fs::read_to_string(self.path_of(key))
            .ok()
            .and_then(|record| CellResult::from_record(&record))
            .filter(|cell| cell.workload == expected_workload);
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Persists a freshly computed cell. I/O failures are swallowed: a
    /// cache that cannot write (read-only checkout, full disk) costs a
    /// re-simulation later, never a wrong result now.
    pub fn store(&self, key: u64, cell: &CellResult) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(
            "{key:016x}.tmp.{}",
            std::process::id() as u64 ^ key.rotate_left(32)
        ));
        if std::fs::write(&tmp, cell.to_record()).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Counters since this cache handle was created.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_workloads::{int_suite, Scale};

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        // Reference value: FNV-1a 64 of "hello" is fixed by the algorithm.
        let mut h = Fnv64::new();
        h.write(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
        let mut ab = Fnv64::new();
        ab.write(b"ab");
        let mut ba = Fnv64::new();
        ba.write(b"ba");
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn workload_digest_tracks_content() {
        let a = int_suite(Scale::Smoke).remove(0);
        let b = int_suite(Scale::Smoke).remove(0);
        assert_eq!(workload_digest(&a), workload_digest(&b));
        let bigger = int_suite(Scale::Default).remove(0);
        assert_ne!(workload_digest(&a), workload_digest(&bigger));
    }

    #[test]
    fn keys_separate_fingerprints_and_specs() {
        let c1 = CellCache::with_fingerprint("target/unused", "fp-a");
        let c2 = CellCache::with_fingerprint("target/unused", "fp-b");
        assert_ne!(c1.key(7, "spec"), c2.key(7, "spec"));
        assert_ne!(c1.key(7, "spec"), c1.key(7, "other-spec"));
        assert_ne!(c1.key(7, "spec"), c1.key(8, "spec"));
    }
}
