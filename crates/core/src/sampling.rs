//! The statistical-sampling execution engine (SMARTS-style).
//!
//! An exact cell simulates every dynamic instruction in detail. A sampled
//! cell instead:
//!
//! 1. resolves the **population size** `N` (the workload's dynamic
//!    instruction count) from the memoized emulator oracle;
//! 2. **fast-forwards** through the functional emulator, warming a
//!    shadow cache hierarchy, branch predictor and BTB along the way;
//! 3. takes `k` evenly spaced [`Checkpoint`]s — architectural state plus
//!    the functionally warmed structures — and from each runs a short
//!    **detailed window** on a fresh [`Simulator`]: a discarded warmup
//!    prefix that trains the out-of-order structures after the restore,
//!    then a measured suffix;
//! 4. verifies every window's final architectural state against an
//!    emulator replay of the same instruction span (the sampled analogue
//!    of the exact path's end-of-run checksum);
//! 5. **reduces** the per-window deltas into population-scaled counters
//!    plus mean ± 95% confidence intervals (Student-t over the window
//!    means) for the headline rates, carried in
//!    [`SamplingStats`](dmdc_ooo::SamplingStats).
//!
//! Sampled runs are **crash-resumable**: after each checkpoint capture the
//! in-progress state (completed window deltas + the checkpoint itself)
//! is serialized through the same sealed-envelope format as the journal,
//! under `<run>/samples/<key>.ckpt`. A killed run restores the emulator
//! and warm structures from that envelope and continues; the final cell
//! is byte-identical to an uninterrupted run because every window derives
//! deterministically from its checkpoint.
//!
//! Fast-forward itself runs through [`BlockCode`] — the program
//! pre-decoded into straight-line blocks, executed silently with
//! bit-identical architectural results — and checkpoints persist beyond
//! the run in the content-addressed
//! [`CheckpointStore`](crate::cache::CheckpointStore): keyed on
//! everything the checkpoint depends on *except* the policy (which the
//! detailed windows rebuild from scratch), so policies share checkpoints
//! within a cold run and a warm run fast-forwards nothing at all.
//!
//! Determinism contract: the master fast-forward, the window placement,
//! the warming rules and the window simulations are all pure functions of
//! `(workload, config, policy, options)` — a sampled cell, like an exact
//! one, is content-addressable. The sampling spec is part of
//! [`SimOptions`], so sampled and exact cells can never share a cache or
//! journal key.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dmdc_isa::{BlockCode, Emulator, Inst, Program, Retired, SilentObserver, SparseMemory};
use dmdc_ooo::{
    to_q32, BranchPredictor, Btb, CoreConfig, MemoryHierarchy, SampleSpec, SamplingStats, SimError,
    SimOptions, SimStats, Simulator,
};
use dmdc_types::Addr;
use dmdc_workloads::Workload;

use crate::cache::{workload_digest, write_sealed, Fnv64};
use crate::cell::{CellError, CellResult, FailureKind};
use crate::experiments::PolicyKind;

/// Magic + version line of the persisted partial-progress envelope.
const SAMPLE_MAGIC: &str = "dmdc-sample v1";

/// Bytes per memory page (must match `SparseMemory`'s page geometry:
/// 4 KiB pages).
const PAGE_BYTES: u64 = 4096;

/// Functional-warming horizon: how many retired instructions before each
/// checkpoint warm the shadow cache hierarchy / branch predictor. The
/// stretch before the horizon is pure emulation — cache and predictor
/// history older than this contributes almost nothing to a short window,
/// and skipping it is where sampling's speedup over exact simulation
/// comes from. Must stay a compile-time constant: it is part of the
/// deterministic warming rule that fresh and resumed runs share.
const WARM_HORIZON: u64 = 65_536;

/// One resumable snapshot of mid-program state: the functional
/// architectural state plus the functionally warmed microarchitectural
/// structures, captured just before a detailed window starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Index of the detailed window this checkpoint precedes.
    pub window: u32,
    /// Program counter (instruction index) at the checkpoint.
    pub pc: u32,
    /// Instructions retired before the checkpoint.
    pub retired: u64,
    /// The 32 integer registers.
    pub int_regs: [u64; 32],
    /// The 32 FP registers, as raw bit patterns (exact round-trip).
    pub fp_bits: [u64; 32],
    /// The touched memory pages: `(page base address, words)` where
    /// `words` holds `(word index, value)` pairs — word 0 always (so a
    /// restore re-materializes every touched page, preserving the
    /// invalidation footprint), other words only when nonzero.
    pub pages: Vec<(u64, Vec<(u32, u64)>)>,
    /// Exported L1I/L1D/L2 cache state (see `Cache::export_state`).
    pub l1i: Vec<u64>,
    /// Exported L1D state.
    pub l1d: Vec<u64>,
    /// Exported unified-L2 state.
    pub l2: Vec<u64>,
    /// Exported branch-predictor state.
    pub bpred: Vec<u64>,
    /// Exported BTB state.
    pub btb: Vec<u64>,
}

impl Checkpoint {
    /// Captures the master fast-forward state as a checkpoint for window
    /// `window`.
    pub fn capture(window: u32, emu: &Emulator<'_>, warm: &Warmer) -> Checkpoint {
        let mem = emu.memory();
        let mut pages = Vec::new();
        for base in mem.touched_pages() {
            let bytes = mem.page_bytes(base).expect("touched page exists");
            let mut words = Vec::new();
            for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                if i == 0 || v != 0 {
                    words.push((i as u32, v));
                }
            }
            pages.push((base.0, words));
        }
        let mut fp_bits = [0u64; 32];
        for (slot, v) in fp_bits.iter_mut().zip(emu.fp_regs()) {
            *slot = v.to_bits();
        }
        Checkpoint {
            window,
            pc: emu.pc(),
            retired: emu.retired(),
            int_regs: *emu.int_regs(),
            fp_bits,
            pages,
            l1i: warm.hier.l1i.export_state(),
            l1d: warm.hier.l1d.export_state(),
            l2: warm.hier.l2.export_state(),
            bpred: warm.bpred.export_state(),
            btb: warm.btb.export_state(),
        }
    }

    /// Rebuilds the memory image. Each page is assembled in a local
    /// buffer and installed with one bulk write — this runs twice per
    /// detailed window (simulator restore + reference replay), so the
    /// word-at-a-time path would cost real milliseconds per cell.
    pub fn memory(&self) -> SparseMemory {
        let mut mem = SparseMemory::new();
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        for (base, words) in &self.pages {
            buf.fill(0);
            for &(i, v) in words {
                buf[8 * i as usize..8 * (i as usize + 1)].copy_from_slice(&v.to_le_bytes());
            }
            // Bulk-writing the whole page materializes it even when all
            // words are zero, preserving the captured footprint exactly.
            mem.write_bytes(Addr(*base), &buf);
        }
        mem
    }

    /// Rebuilds a functional emulator positioned at the checkpoint.
    pub fn restore_emulator<'p>(&self, program: &'p Program) -> Emulator<'p> {
        let mut fp_regs = [0.0f64; 32];
        for (slot, &bits) in fp_regs.iter_mut().zip(&self.fp_bits) {
            *slot = f64::from_bits(bits);
        }
        Emulator::restore(
            program,
            self.pc,
            self.int_regs,
            fp_regs,
            self.memory(),
            self.retired,
        )
    }

    /// Rebuilds the warmed cache hierarchy, branch predictor and BTB for
    /// `config`. `None` if the exported words do not fit the config's
    /// geometry (a foreign or corrupt checkpoint).
    pub fn warm_state(
        &self,
        config: &CoreConfig,
    ) -> Option<(MemoryHierarchy, BranchPredictor, Btb)> {
        let mut hier = MemoryHierarchy::new(config);
        hier.l1i.import_state(&self.l1i)?;
        hier.l1d.import_state(&self.l1d)?;
        hier.l2.import_state(&self.l2)?;
        let mut bpred = BranchPredictor::new(
            config.bimodal_entries,
            config.gshare_entries,
            config.gshare_history_bits,
            config.meta_entries,
        );
        bpred.import_state(&self.bpred)?;
        let mut btb = Btb::new(config.btb_entries);
        btb.import_state(&self.btb)?;
        Some((hier, bpred, btb))
    }

    /// Serializes to the text body the sealed envelope wraps.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "window {}", self.window);
        let _ = writeln!(out, "pc {}", self.pc);
        let _ = writeln!(out, "retired {}", self.retired);
        let _ = writeln!(out, "ints {}", join(&self.int_regs));
        let _ = writeln!(out, "fps {}", join(&self.fp_bits));
        for (base, words) in &self.pages {
            let _ = write!(out, "page {base}");
            for (i, v) in words {
                let _ = write!(out, " {i}:{v}");
            }
            out.push('\n');
        }
        for (tag, words) in [
            ("l1i", &self.l1i),
            ("l1d", &self.l1d),
            ("l2", &self.l2),
            ("bpred", &self.bpred),
            ("btb", &self.btb),
        ] {
            let _ = writeln!(out, "{tag} {}", join(words));
        }
        out
    }

    /// Approximate in-memory footprint, used by the in-process memo's
    /// byte-cap eviction. Counts the dominant heap payloads (page words
    /// and exported microarchitectural words) plus a fixed allowance for
    /// the register files and struct header; exactness is irrelevant — a
    /// consistent estimate is all FIFO eviction needs.
    pub fn approx_bytes(&self) -> usize {
        let page_words: usize = self.pages.iter().map(|(_, w)| w.len()).sum();
        let uarch_words =
            self.l1i.len() + self.l1d.len() + self.l2.len() + self.bpred.len() + self.btb.len();
        // Page entries are (u32, u64) pairs ≈ 16 bytes each with padding.
        16 * page_words + 8 * uarch_words + 8 * 64 + 256
    }

    /// Parses [`Checkpoint::encode`] output from an iterator of lines
    /// (shared with the partial-progress envelope, whose header precedes
    /// the checkpoint). Returns `None` on any malformation.
    pub fn decode<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Option<Checkpoint> {
        let window = lines.next()?.strip_prefix("window ")?.parse().ok()?;
        let pc = lines.next()?.strip_prefix("pc ")?.parse().ok()?;
        let retired = lines.next()?.strip_prefix("retired ")?.parse().ok()?;
        let int_regs = parse_array(lines.next()?.strip_prefix("ints ")?)?;
        let fp_bits = parse_array(lines.next()?.strip_prefix("fps ")?)?;
        let mut pages = Vec::new();
        let mut rest = None;
        for line in lines.by_ref() {
            match line.strip_prefix("page ") {
                Some(body) => {
                    let mut parts = body.split(' ');
                    let base: u64 = parts.next()?.parse().ok()?;
                    let mut words = Vec::new();
                    for pair in parts {
                        let (i, v) = pair.split_once(':')?;
                        words.push((i.parse().ok()?, v.parse().ok()?));
                    }
                    pages.push((base, words));
                }
                None => {
                    rest = Some(line);
                    break;
                }
            }
        }
        let tagged = |tag: &str, line: Option<&str>| -> Option<Vec<u64>> {
            parse_words(line?.strip_prefix(tag)?.strip_prefix(' ').unwrap_or(""))
        };
        let l1i = tagged("l1i", rest)?;
        let l1d = tagged("l1d", lines.next())?;
        let l2 = tagged("l2", lines.next())?;
        let bpred = tagged("bpred", lines.next())?;
        let btb = tagged("btb", lines.next())?;
        Some(Checkpoint {
            window,
            pc,
            retired,
            int_regs,
            fp_bits,
            pages,
            l1i,
            l1d,
            l2,
            bpred,
            btb,
        })
    }
}

fn join(words: &[u64]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(words.len() * 4);
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let _ = write!(s, "{w}");
    }
    s
}

fn parse_words(body: &str) -> Option<Vec<u64>> {
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(' ')
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()
}

fn parse_array(body: &str) -> Option<[u64; 32]> {
    let words = parse_words(body)?;
    words.try_into().ok()
}

// ---------------------------------------------------------------------
// In-process checkpoint memo: the RAM tier above the persistent
// `CheckpointStore`. Checkpoints are policy-independent (see the key
// derivation in `execute_sampled`), so within one process the first cell
// to fast-forward a (workload, config, sampling) stream publishes its
// checkpoints here and every other policy's cells restore instead of
// re-emulating — even under `--no-cache`, which only disables the *disk*
// tiers. Purely an accelerator: entries are exact `Checkpoint` values, a
// miss (or an evicted entry) just re-runs the fast-forward, and the memo
// dies with the process, so crash resume never depends on it.

/// FIFO-evicted memo cap. Full-suite runs need well under this; the cap
/// only guards pathological long-lived processes.
const MEMO_CAP_BYTES: usize = 256 << 20;

struct CkptMemo {
    map: HashMap<u64, Arc<Checkpoint>>,
    order: VecDeque<u64>,
    bytes: usize,
}

static CKPT_MEMO: Mutex<Option<CkptMemo>> = Mutex::new(None);

/// The memo key: the persistent store's key derivation minus the build
/// fingerprint (meaningless within a single process).
fn memo_key(workload_digest: u64, sample_desc: &str, window: u32) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(workload_digest);
    h.write(sample_desc.as_bytes());
    h.write_u64(window as u64);
    h.finish()
}

fn memo_load(key: u64) -> Option<Arc<Checkpoint>> {
    let guard = CKPT_MEMO.lock().expect("checkpoint memo poisoned");
    guard.as_ref().and_then(|m| m.map.get(&key).cloned())
}

fn memo_publish(key: u64, ck: Arc<Checkpoint>) {
    let mut guard = CKPT_MEMO.lock().expect("checkpoint memo poisoned");
    let memo = guard.get_or_insert_with(|| CkptMemo {
        map: HashMap::new(),
        order: VecDeque::new(),
        bytes: 0,
    });
    if memo.map.contains_key(&key) {
        return;
    }
    memo.bytes += ck.approx_bytes();
    memo.map.insert(key, ck);
    memo.order.push_back(key);
    while memo.bytes > MEMO_CAP_BYTES {
        let Some(old) = memo.order.pop_front() else {
            break;
        };
        if let Some(ck) = memo.map.remove(&old) {
            memo.bytes = memo.bytes.saturating_sub(ck.approx_bytes());
        }
    }
}

/// The shadow structures warmed along the functional fast-forward, so a
/// window's detailed simulation starts from trained caches and predictors
/// instead of cold ones. The warming rules are deliberately simple (every
/// retired instruction touches the I-cache; conditional branches train
/// the predictor with their actual outcome; indirect jumps seed the BTB)
/// — what matters is that they are deterministic and applied identically
/// on fresh and resumed runs.
pub struct Warmer {
    hier: MemoryHierarchy,
    bpred: BranchPredictor,
    btb: Btb,
}

impl Warmer {
    /// Cold structures for `config`.
    pub fn new(config: &CoreConfig) -> Warmer {
        Warmer {
            hier: MemoryHierarchy::new(config),
            bpred: BranchPredictor::new(
                config.bimodal_entries,
                config.gshare_entries,
                config.gshare_history_bits,
                config.meta_entries,
            ),
            btb: Btb::new(config.btb_entries),
        }
    }

    /// Warmed structures restored from a checkpoint (for resume).
    fn restore(ck: &Checkpoint, config: &CoreConfig) -> Option<Warmer> {
        let (hier, bpred, btb) = ck.warm_state(config)?;
        Some(Warmer { hier, bpred, btb })
    }

    /// Folds one retired instruction into the warm state. Delegates to
    /// the [`SilentObserver`] hooks so this path and the block-compiled
    /// [`Emulator::run_observed`] warming path share one set of rules.
    pub fn observe(&mut self, r: &Retired) {
        SilentObserver::retire(self, r.pc);
        if let Some(span) = r.mem {
            SilentObserver::mem(self, span.addr);
        }
        match r.inst {
            Inst::Branch { .. } => SilentObserver::branch(self, r.pc, r.taken.unwrap_or(false)),
            Inst::Jalr { .. } => SilentObserver::jalr(self, r.pc, r.next_pc),
            _ => {}
        }
    }
}

impl SilentObserver for Warmer {
    #[inline]
    fn retire(&mut self, pc: u32) {
        self.hier.inst_access(Program::text_addr(pc));
    }

    #[inline]
    fn mem(&mut self, addr: Addr) {
        self.hier.data_access(addr);
    }

    #[inline]
    fn branch(&mut self, pc: u32, taken: bool) {
        let (_, snapshot) = self.bpred.predict(pc);
        self.bpred.speculate(pc, taken);
        self.bpred.update(pc, taken, snapshot);
    }

    #[inline]
    fn jalr(&mut self, pc: u32, next_pc: u32) {
        self.btb.insert(pc, next_pc);
    }
}

/// The resolved window placement for one sampled cell: `windows` disjoint
/// detailed spans carved out of a population of `N` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Effective window count (≤ the spec's, shrunk to fit small
    /// populations).
    pub windows: u64,
    /// Instructions between window starts (`population / windows`).
    pub period: u64,
    /// Detailed-warmup instructions per window (≥ 1).
    pub warmup: u64,
    /// Measured instructions per window.
    pub measure: u64,
}

impl Layout {
    /// Places `spec`'s windows over a population of `population`
    /// instructions. The window count shrinks so every window (warmup +
    /// measurement) fits in half its period; `None` means the population
    /// is too small to sample honestly (fewer than two windows fit) and
    /// the cell should run exactly instead.
    pub fn plan(spec: &SampleSpec, population: u64) -> Option<Layout> {
        if spec.window_insts == 0 {
            return None;
        }
        let warmup = u64::from(spec.warmup_insts).max(1);
        let measure = u64::from(spec.window_insts);
        let per_window = warmup + measure;
        let max_windows = population / (2 * per_window);
        let windows = u64::from(spec.windows).min(max_windows);
        if windows < 2 {
            return None;
        }
        Some(Layout {
            windows,
            period: population / windows,
            warmup,
            measure,
        })
    }

    /// Where window `i`'s checkpoint is taken (instructions retired). The
    /// measured span starts `warmup` instructions later, centred in the
    /// window's period, and always ends before the next period boundary.
    pub fn checkpoint_at(&self, i: u64) -> u64 {
        i * self.period + self.period / 2 - self.warmup
    }
}

/// Executes one cell under the sampling engine. Called from the verified
/// execution funnel when the spec's options ask for sampling; cells whose
/// population is too small fall back to the exact path (still keyed as
/// sampled cells, so the fallback is itself deterministic and cacheable).
pub(crate) fn execute_sampled(
    workload: &Workload,
    config: &CoreConfig,
    policy_kind: &PolicyKind,
    opts: SimOptions,
    oracle: impl FnOnce() -> Result<(u64, u64), String>,
) -> Result<CellResult, CellError> {
    let (expected, population) =
        oracle().map_err(|e| CellError::new(FailureKind::OracleMustHalt, e))?;
    let Some(layout) = Layout::plan(&opts.sampling, population) else {
        return crate::experiments::execute_exact(workload, config, policy_kind, opts, || {
            Ok((expected, population))
        });
    };

    let digest = workload_digest(workload);

    // Partial-progress envelope (crash resume): locate it under the run
    // journal, keyed exactly like the cell itself.
    let envelope = crate::runner::global_journal().map(|journal| {
        let desc = format!("{config:?}|{policy_kind:?}|{opts:?}");
        let key = journal.key(digest, &desc);
        let path = journal
            .run_dir()
            .join("samples")
            .join(format!("{key:016x}.ckpt"));
        (path, key)
    });

    // Shared checkpoint key: checkpoints are a pure function of the
    // program, config, sampling layout and warming horizon — notably NOT
    // of the policy under test — so the description deliberately omits
    // the policy. Within one cold run the first policy's cells populate
    // the in-process memo (and the store, when installed) and every other
    // policy restores from it; a warm run restores everything and
    // fast-forwards nothing.
    let sample_desc = format!(
        "{config:?}|{:?}|pop {population}|horizon {WARM_HORIZON}",
        opts.sampling
    );
    let store = crate::runner::global_checkpoint_store();

    // Pre-decode the program once per cell; every fast-forward stretch
    // below executes through the compiled blocks.
    let t_compile = Instant::now();
    let code = BlockCode::compile(&workload.program);
    let compile_nanos = t_compile.elapsed().as_nanos() as u64;

    let mut deltas: Vec<Vec<u64>> = Vec::new();
    let mut pending: Option<Checkpoint> = None;
    let mut emu = Emulator::new(&workload.program);
    let mut warm = Warmer::new(config);
    if let Some((path, _)) = &envelope {
        if let Some(partial) = load_partial(path, &opts.sampling, population) {
            if let Some(w) = Warmer::restore(&partial.checkpoint, config) {
                emu = partial.checkpoint.restore_emulator(&workload.program);
                warm = w;
                deltas = partial.deltas;
                pending = Some(partial.checkpoint);
                crate::recovery::record(
                    crate::recovery::RecoveryKind::CellResumed,
                    workload.name,
                    format!("sampled cell resumed at window {}", deltas.len()),
                );
            }
        }
    }

    let mut ff_insts = 0u64;
    let mut ff_nanos = 0u64;
    let mut ff_blocks = 0u64;
    let mut ff_fallback_steps = 0u64;
    let mut ckpt_shared = 0u64;
    let mut window_nanos = 0u64;
    let first = deltas.len() as u64;
    for i in first..layout.windows {
        let checkpoint = match pending.take() {
            Some(ck) => Arc::new(ck),
            None => {
                // In-process memo first (see `CkptMemo`): a hit means an
                // earlier cell in this process — typically the same
                // workload under a different policy — already produced
                // this window's checkpoint.
                let mkey = memo_key(digest, &sample_desc, i as u32);
                let memoed =
                    memo_load(mkey).and_then(|ck| Warmer::restore(&ck, config).map(|w| (ck, w)));
                let ck = match memoed {
                    Some((ck, w)) => {
                        emu = ck.restore_emulator(&workload.program);
                        warm = w;
                        ckpt_shared += 1;
                        ck
                    }
                    None => {
                        // Shared store next: a hit replaces the
                        // fast-forward entirely. The master emulator and
                        // warm structures are restored from the stored
                        // checkpoint (exactly as crash resume does), so a
                        // later miss window fast-forwards from consistent
                        // state.
                        let stored = store.as_ref().and_then(|s| {
                            let key = s.key(digest, &sample_desc, i as u32);
                            s.load(key, workload.name, i as u32)
                                .and_then(|ck| Warmer::restore(&ck, config).map(|w| (ck, w)))
                        });
                        let ck = match stored {
                            Some((ck, w)) => {
                                emu = ck.restore_emulator(&workload.program);
                                warm = w;
                                Arc::new(ck)
                            }
                            None => {
                                let target = layout.checkpoint_at(i);
                                let t0 = Instant::now();
                                // Warming horizon: only the last
                                // `WARM_HORIZON` retired instructions
                                // before a checkpoint warm the shadow
                                // structures; the stretch before that
                                // emulates silently through the compiled
                                // blocks. The rule is a pure function of
                                // position, so a resumed run (which
                                // restarts the master emulator at the
                                // previous checkpoint) reproduces the
                                // same warm state exactly.
                                let silent_until = target.saturating_sub(WARM_HORIZON);
                                if emu.retired() < silent_until {
                                    ff_insts += silent_until - emu.retired();
                                    match emu.run_silent(&code, silent_until) {
                                        Ok(stats) => {
                                            ff_blocks += stats.blocks;
                                            ff_fallback_steps += stats.fallback_steps;
                                        }
                                        Err(e) => {
                                            return Err(CellError::new(
                                                FailureKind::SimError,
                                                format!(
                                                    "{} fast-forward failed: {e}",
                                                    workload.name
                                                ),
                                            ))
                                        }
                                    }
                                }
                                // The warmed stretch runs through the
                                // observed block executor — same events
                                // as a step()+observe loop, none of the
                                // per-step `Retired` overhead.
                                ff_insts += target - emu.retired();
                                emu.run_observed(&code, target, &mut warm).map_err(|e| {
                                    CellError::new(
                                        FailureKind::SimError,
                                        format!("{} fast-forward failed: {e}", workload.name),
                                    )
                                })?;
                                ff_nanos += t0.elapsed().as_nanos() as u64;
                                let ck = Arc::new(Checkpoint::capture(i as u32, &emu, &warm));
                                if let Some(s) = &store {
                                    s.store(
                                        s.key(digest, &sample_desc, i as u32),
                                        workload.name,
                                        &ck,
                                    );
                                }
                                ck
                            }
                        };
                        memo_publish(mkey, Arc::clone(&ck));
                        ck
                    }
                };
                if let Some((path, key)) = &envelope {
                    persist_partial(path, *key, &opts.sampling, population, &deltas, &ck);
                }
                ck
            }
        };
        let t0 = Instant::now();
        let delta = run_window(workload, config, policy_kind, opts, &layout, &checkpoint)?;
        window_nanos += t0.elapsed().as_nanos() as u64;
        deltas.push(delta);
    }
    if let Some((path, _)) = &envelope {
        let _ = std::fs::remove_file(path);
    }
    if crate::runner::profile_enabled() {
        // Export order puts cycles first and committed second (see
        // `SimStats::export_values`), so the per-window deltas carry the
        // per-mode cycle counters directly.
        crate::runner::record_sampling(crate::runner::SamplingSample {
            ff_insts,
            ff_nanos,
            compile_nanos,
            ff_blocks,
            ff_fallback_steps,
            ckpt_shared,
            window_nanos,
            window_cycles: deltas.iter().map(|d| d[0]).sum(),
            window_committed: deltas.iter().map(|d| d[1]).sum(),
        });
    }
    reduce(workload, &layout, population, &deltas).ok_or_else(|| {
        CellError::new(
            FailureKind::SimError,
            format!("{}: sampled windows measured nothing", workload.name),
        )
    })
}

/// Runs one detailed window from `checkpoint`: a fresh simulator seeded
/// with the checkpoint state runs the discarded warmup, then resumes for
/// the measured span; the returned delta is the element-wise difference
/// of the two phases' exported stats (absolute warm offsets cancel). The
/// window's final architectural state is verified against a functional
/// replay of the same instruction span.
fn run_window(
    workload: &Workload,
    config: &CoreConfig,
    policy_kind: &PolicyKind,
    opts: SimOptions,
    layout: &Layout,
    checkpoint: &Checkpoint,
) -> Result<Vec<u64>, CellError> {
    let (hier, bpred, btb) = checkpoint.warm_state(config).ok_or_else(|| {
        CellError::new(
            FailureKind::SimError,
            format!(
                "{}: checkpoint warm state does not fit {}",
                workload.name, config.name
            ),
        )
    })?;
    let mut fp_regs = [0.0f64; 32];
    for (slot, &bits) in fp_regs.iter_mut().zip(&checkpoint.fp_bits) {
        *slot = f64::from_bits(bits);
    }
    let mut sim = Simulator::new(&workload.program, config.clone(), policy_kind.build(config));
    sim.restore_checkpoint(
        checkpoint.pc,
        &checkpoint.int_regs,
        &fp_regs,
        checkpoint.memory(),
        hier,
        bpred,
        btb,
    );
    let mut wopts = opts;
    // The auditor's lockstep emulator starts at the program entry, so it
    // cannot audit a mid-program restore; windows also never collect
    // traces or commit logs (the deltas are the product).
    wopts.audit = false;
    wopts.collect_commit_log = false;
    wopts.trace_capacity = 0;
    wopts.max_commits = Some(layout.warmup);
    let sim_err = |e: SimError| {
        CellError::new(
            FailureKind::SimError,
            format!(
                "{} window {} under {policy_kind:?} on {}: {e}",
                workload.name, checkpoint.window, config.name
            ),
        )
    };
    let a = sim.run(wopts).map_err(sim_err)?;
    if a.halted {
        return Err(CellError::new(
            FailureKind::SimError,
            format!(
                "{} window {}: warmup ran into halt (bad layout)",
                workload.name, checkpoint.window
            ),
        ));
    }
    let base = a.stats.export_values();
    wopts.max_commits = Some(layout.warmup + layout.measure);
    let b = sim.resume(wopts).map_err(sim_err)?;
    let mut reference = checkpoint.restore_emulator(&workload.program);
    reference.run_for(b.stats.committed).map_err(|e| {
        CellError::new(
            FailureKind::SimError,
            format!(
                "{} window {} reference replay failed: {e}",
                workload.name, checkpoint.window
            ),
        )
    })?;
    if reference.state_checksum() != b.checksum {
        return Err(CellError::new(
            FailureKind::StateDivergence,
            format!(
                "sampled-window state mismatch: {} window {} under {policy_kind:?} on {}: simulated {:#x}, emulator {:#x}",
                workload.name,
                checkpoint.window,
                config.name,
                b.checksum,
                reference.state_checksum()
            ),
        ));
    }
    if let Some(profile) = &b.profile {
        crate::runner::record_profile(profile, &b.stats);
    }
    Ok(b.stats
        .export_values()
        .iter()
        .zip(&base)
        .map(|(after, before)| after.wrapping_sub(*before))
        .collect())
}

/// Reduces the per-window deltas into the cell's population estimate:
/// counters scale by `population / measured-instructions`, the headline
/// rates carry Student-t 95% confidence intervals over the window means.
fn reduce(
    workload: &Workload,
    layout: &Layout,
    population: u64,
    deltas: &[Vec<u64>],
) -> Option<CellResult> {
    let mut sums = vec![0u64; SimStats::EXPORT_LEN];
    for delta in deltas {
        for (sum, v) in sums.iter_mut().zip(delta) {
            *sum = sum.wrapping_add(*v);
        }
    }
    let measured = SimStats::from_export_values(&sums)?.committed;
    if measured == 0 {
        return None;
    }
    let scaled: Vec<u64> = sums
        .iter()
        .map(|&v| ((v as u128 * population as u128) / measured as u128) as u64)
        .collect();
    let mut stats = SimStats::from_export_values(&scaled)?;
    let windows: Vec<SimStats> = deltas
        .iter()
        .filter_map(|d| SimStats::from_export_values(d))
        .collect();
    let ipc = mean_ci(&windows, |w| w.ipc());
    // Replay counts are Poisson-rare: the between-window t-interval is
    // floored by the rule-of-three upper bound, so "no replays observed"
    // never claims certainty that the true rate is zero.
    let replays = {
        let (mean, ci) = mean_ci(&windows, |w| w.per_million(w.replay_squashes));
        (mean, ci.max(3.0e6 / measured as f64))
    };
    let filter = ratio_ci(&windows, |w| {
        (
            w.policy.safe_stores as f64,
            (w.policy.safe_stores + w.policy.unsafe_stores) as f64,
        )
    });
    let safe = ratio_ci(&windows, |w| {
        (
            w.policy.safe_loads as f64,
            (w.policy.safe_loads + w.policy.unsafe_loads) as f64,
        )
    });
    stats.sampling = SamplingStats {
        windows: layout.windows,
        population,
        sampled_committed: measured,
        ipc_mean_q: to_q32(ipc.0),
        ipc_ci_q: to_q32(ipc.1),
        replays_per_m_mean_q: to_q32(replays.0),
        replays_per_m_ci_q: to_q32(replays.1),
        filter_rate_mean_q: to_q32(filter.0),
        filter_rate_ci_q: to_q32(filter.1),
        safe_load_rate_mean_q: to_q32(safe.0),
        safe_load_rate_ci_q: to_q32(safe.1),
    };
    Some(CellResult {
        workload: workload.name.to_string(),
        group: workload.group,
        stats,
    })
}

/// Ratio estimate `ΣA/ΣB` over the windows with a delta-method 95%
/// half-width — the estimator for rates whose denominator is an *event
/// count* (store resolutions, load issues) rather than a per-window
/// constant. A plain mean of per-window rates would count an event-free
/// window as "rate 0" and drift away from the ratio of scaled totals the
/// cell actually reports; this estimator is centered on that ratio.
///
/// When no window observed a single denominator event the rate is
/// unidentified, and the half-width is 1.0 — the whole range of a
/// bounded rate — rather than a confident 0. With events observed, the
/// half-width is floored at `1/√(ΣB)`, the worst-case binomial bound on
/// a proportion estimated from ΣB trials: windows that all agree (e.g.
/// every one saw rate 1.0) have zero between-window variance, but a few
/// hundred Bernoulli trials still cannot pin the rate down tighter than
/// that — and evenly spaced windows can systematically miss event
/// clusters the between-window variance knows nothing about.
fn ratio_ci(windows: &[SimStats], parts: impl Fn(&SimStats) -> (f64, f64)) -> (f64, f64) {
    let ab: Vec<(f64, f64)> = windows.iter().map(parts).collect();
    let k = ab.len();
    let total_b: f64 = ab.iter().map(|(_, b)| b).sum();
    if total_b == 0.0 {
        return (0.0, 1.0);
    }
    let ratio = ab.iter().map(|(a, _)| a).sum::<f64>() / total_b;
    if k < 2 {
        return (ratio, 0.0);
    }
    // Delta method: var(R) ≈ Σ(A_w − R·B_w)² / (B̄²·k·(k−1)) with B̄ the
    // mean denominator per window.
    let mean_b = total_b / k as f64;
    let ss: f64 = ab
        .iter()
        .map(|(a, b)| {
            let r = a - ratio * b;
            r * r
        })
        .sum();
    let var = ss / (mean_b * mean_b * k as f64 * (k - 1) as f64);
    let ci = (t95(k - 1) * var.sqrt()).max(1.0 / total_b.sqrt());
    (ratio, ci.min(1.0))
}

/// Sample mean and 95% confidence half-width of `metric` over the windows.
fn mean_ci(windows: &[SimStats], metric: impl Fn(&SimStats) -> f64) -> (f64, f64) {
    let samples: Vec<f64> = windows.iter().map(metric).collect();
    let k = samples.len();
    if k == 0 {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / k as f64;
    if k < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (k - 1) as f64;
    let se = (var / k as f64).sqrt();
    (mean, t95(k - 1) * se)
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (normal approximation past 30).
fn t95(df: usize) -> f64 {
    const T: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        T[0]
    } else if df <= T.len() {
        T[df - 1]
    } else {
        1.96
    }
}

/// The deserialized partial-progress envelope: deltas of the windows
/// completed before the crash plus the checkpoint for the next one.
struct Partial {
    deltas: Vec<Vec<u64>>,
    checkpoint: Checkpoint,
}

/// Writes the partial-progress envelope (sealed, atomic tmp + rename)
/// after each checkpoint capture, then notifies the fault-injection hook
/// (so kill-after faults can land mid-cell in crash tests).
fn persist_partial(
    path: &std::path::Path,
    key: u64,
    spec: &SampleSpec,
    population: u64,
    deltas: &[Vec<u64>],
    checkpoint: &Checkpoint,
) {
    use std::fmt::Write as _;
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut body = String::new();
    let _ = writeln!(body, "{SAMPLE_MAGIC} {}", SimStats::EXPORT_LEN);
    let _ = writeln!(
        body,
        "spec {} {} {}",
        spec.windows, spec.window_insts, spec.warmup_insts
    );
    let _ = writeln!(body, "population {population}");
    let _ = writeln!(body, "done {}", deltas.len());
    for delta in deltas {
        let _ = writeln!(body, "delta {}", join(delta));
    }
    body.push_str(&checkpoint.encode());
    if write_sealed(path, &body, crate::cache::tmp_tag(key)) {
        crate::faults::on_journal_entry_written(path);
    }
}

/// Loads and validates a partial-progress envelope; any mismatch (seal,
/// schema, spec, population, window-count consistency) degrades to a
/// fresh start, never an error.
fn load_partial(path: &std::path::Path, spec: &SampleSpec, population: u64) -> Option<Partial> {
    let text = std::fs::read_to_string(path).ok()?;
    let body = crate::cache::unseal(&text).ok()?;
    let mut lines = body.lines();
    let export_len: usize = lines
        .next()?
        .strip_prefix(SAMPLE_MAGIC)?
        .trim()
        .parse()
        .ok()?;
    if export_len != SimStats::EXPORT_LEN {
        return None;
    }
    let spec_line = lines.next()?.strip_prefix("spec ")?;
    let fields: Vec<u32> = spec_line
        .split(' ')
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()?;
    if fields != [spec.windows, spec.window_insts, spec.warmup_insts] {
        return None;
    }
    let pop: u64 = lines.next()?.strip_prefix("population ")?.parse().ok()?;
    if pop != population {
        return None;
    }
    let done: usize = lines.next()?.strip_prefix("done ")?.parse().ok()?;
    let mut deltas = Vec::with_capacity(done);
    for _ in 0..done {
        let delta = parse_words(lines.next()?.strip_prefix("delta ")?)?;
        if delta.len() != SimStats::EXPORT_LEN {
            return None;
        }
        deltas.push(delta);
    }
    let checkpoint = Checkpoint::decode(&mut lines)?;
    if checkpoint.window as usize != done || lines.next().is_some() {
        return None;
    }
    Some(Partial { deltas, checkpoint })
}

/// The path a sampled cell's partial-progress envelope lives at inside a
/// run directory (exposed for tests).
pub fn sample_envelope_dir(run_dir: &std::path::Path) -> PathBuf {
    run_dir.join("samples")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_workloads::{int_suite, Scale};

    fn warm_checkpoint(insts: u64) -> (Workload, Checkpoint) {
        let w = int_suite(Scale::Smoke).remove(0);
        let config = CoreConfig::config2();
        let mut emu = Emulator::new(&w.program);
        let mut warm = Warmer::new(&config);
        while emu.retired() < insts {
            let r = emu.step().expect("steps");
            warm.observe(&r);
        }
        let ck = Checkpoint::capture(3, &emu, &warm);
        (w, ck)
    }

    #[test]
    fn checkpoint_encode_decode_roundtrips() {
        let (_w, ck) = warm_checkpoint(5_000);
        let text = ck.encode();
        let back = Checkpoint::decode(&mut text.lines()).expect("decodes");
        assert_eq!(back, ck);
    }

    #[test]
    fn restored_emulator_continues_identically() {
        let (w, ck) = warm_checkpoint(2_000);
        // The pristine emulator, stepped past the checkpoint.
        let mut straight = Emulator::new(&w.program);
        while straight.retired() < 2_500 {
            straight.step().unwrap();
        }
        let mut resumed = ck.restore_emulator(&w.program);
        assert_eq!(resumed.retired(), 2_000);
        while resumed.retired() < 2_500 {
            resumed.step().unwrap();
        }
        assert_eq!(resumed.state_checksum(), straight.state_checksum());
        assert_eq!(resumed.pc(), straight.pc());
    }

    #[test]
    fn checkpoint_store_roundtrips_and_keys_invalidate() {
        use crate::cache::CheckpointStore;
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/dmdc-ckpt-store-unit-test");
        let _ = std::fs::remove_dir_all(&root);
        let (w, ck) = warm_checkpoint(2_000);
        let digest = workload_digest(&w);
        let store = CheckpointStore::with_fingerprint(&root, "fp-a");
        let key = store.key(digest, "desc", ck.window);

        assert!(store.load(key, w.name, ck.window).is_none(), "cold miss");
        store.store(key, w.name, &ck);
        assert_eq!(
            store.load(key, w.name, ck.window).as_ref(),
            Some(&ck),
            "stored checkpoint must round-trip exactly"
        );
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));

        // Any keyed input moving moves the key: workload content,
        // sampling description (config/spec/population/horizon), window
        // index and the simulator fingerprint.
        assert_ne!(key, store.key(digest ^ 1, "desc", ck.window));
        assert_ne!(key, store.key(digest, "other-desc", ck.window));
        assert_ne!(key, store.key(digest, "desc", ck.window + 1));
        let bumped = CheckpointStore::with_fingerprint(&root, "fp-b");
        assert_ne!(key, bumped.key(digest, "desc", ck.window));

        // A checkpoint stored under a colliding key for a *different*
        // workload or window is stale: quarantined, never returned.
        assert!(store.load(key, "some-other-workload", ck.window).is_none());
        let c = store.counters();
        assert_eq!(c.corrupt, 1, "workload mismatch quarantines");
        assert!(
            store.load(key, w.name, ck.window).is_none(),
            "the quarantined file must be gone"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn layout_windows_fit_inside_population() {
        let spec = SampleSpec {
            windows: 24,
            window_insts: 1_500,
            warmup_insts: 1_500,
        };
        let layout = Layout::plan(&spec, 1_000_000).expect("fits");
        assert_eq!(layout.windows, 24);
        for i in 0..layout.windows {
            let ck = layout.checkpoint_at(i);
            let end = ck + layout.warmup + layout.measure;
            assert!(end <= 1_000_000, "window {i} spills past the population");
            if i > 0 {
                assert!(
                    ck >= layout.checkpoint_at(i - 1) + layout.warmup + layout.measure,
                    "window {i} overlaps its predecessor"
                );
            }
        }
    }

    #[test]
    fn layout_shrinks_or_rejects_small_populations() {
        let spec = SampleSpec {
            windows: 24,
            window_insts: 1_000,
            warmup_insts: 1_000,
        };
        let shrunk = Layout::plan(&spec, 20_000).expect("a few windows fit");
        assert!(shrunk.windows >= 2 && shrunk.windows < 24);
        assert!(Layout::plan(&spec, 7_000).is_none(), "too small to sample");
        let degenerate = SampleSpec {
            windows: 8,
            window_insts: 0,
            warmup_insts: 100,
        };
        assert!(Layout::plan(&degenerate, 1_000_000).is_none());
    }

    #[test]
    fn sampled_cell_estimates_exact_ipc() {
        let w = int_suite(Scale::Default).remove(6); // histo: large population
        let config = CoreConfig::config2();
        let exact = crate::experiments::run_workload(
            &w,
            &config,
            &crate::experiments::PolicyKind::DmdcGlobal,
            SimOptions::default(),
        );
        let mut opts = SimOptions::default();
        opts.sampling = SampleSpec {
            windows: 12,
            window_insts: 1_000,
            warmup_insts: 1_000,
        };
        let sampled = crate::experiments::run_workload(
            &w,
            &config,
            &crate::experiments::PolicyKind::DmdcGlobal,
            opts,
        );
        let s = sampled.stats.sampling;
        assert!(sampled.stats.is_sampled(), "sampling must engage");
        assert_eq!(s.windows, 12);
        assert_eq!(s.population, exact.stats.committed);
        assert!(
            sampled.stats.committed.abs_diff(exact.stats.committed) <= 12,
            "scaled commits ({}) must approximate the population ({})",
            sampled.stats.committed,
            exact.stats.committed
        );
        assert!(s.ipc_ci() > 0.0, "a multi-window run must report a CI");
        let err = (s.ipc_mean() - exact.stats.ipc()).abs();
        assert!(
            err <= s.ipc_ci().max(0.15 * exact.stats.ipc()),
            "sampled IPC {} ± {} too far from exact {}",
            s.ipc_mean(),
            s.ipc_ci(),
            exact.stats.ipc()
        );
    }

    #[test]
    fn t_table_is_monotone_toward_the_normal() {
        let mut prev = f64::INFINITY;
        for df in 1..=40 {
            let t = t95(df);
            assert!(t <= prev, "t must not increase with df");
            assert!(t >= 1.9);
            prev = t;
        }
    }
}
