//! Definitions of every registry experiment: the paper's tables and
//! figures (§6) plus the ablations DESIGN.md calls out.
//!
//! Each artifact appears in three forms that share one variant list and
//! one reducer, so they cannot drift apart:
//!
//! * a typed `*_on` function (e.g. [`fig2_on`]) taking explicit
//!   workloads/configs and returning the typed row struct — what shape
//!   tests and library callers use;
//! * a scale-level convenience wrapper (e.g. [`fig2`]) running the full
//!   suite with the paper's defaults;
//! * a unit struct (e.g. [`Fig2Exp`]) implementing
//!   [`Experiment`](super::Experiment), which is what the registry, the
//!   CLI and the golden-snapshot tests drive.
//!
//! Every typed result renders through [`Table`] (`table()` / `render()`)
//! and the registry path wraps the same table in a [`Report`] for the
//! text/JSON/CSV emitters.

use dmdc_energy::EnergyModel;
use dmdc_ooo::{run_multicore, CoreConfig, MultiCoreOptions, SimOptions, SimStats};
use dmdc_workloads::{full_suite, mt_share, Group, Scale, Workload};

use super::{
    chunk_by_variants, group_stat, group_stat_ci, run_matrix, CellResult, Experiment, Plan,
    PolicyKind, Run, Variant,
};
use crate::report::{f1, f2, pct, pct_ci, GroupStat, Report, Table};

/// The per-cell 95% half-width of the store-filter-rate estimate, when
/// the cell came from a sampled run.
fn filter_rate_ci(r: &CellResult) -> Option<f64> {
    r.stats
        .is_sampled()
        .then(|| r.stats.sampling.filter_rate_ci())
}

/// The per-cell *relative* 95% half-width of the cycle-count estimate.
/// A sampled run reconstructs cycles as population / IPC, so the relative
/// uncertainty of cycles equals that of the IPC estimate.
fn rel_cycles_ci(r: &CellResult) -> Option<f64> {
    r.stats
        .is_sampled()
        .then(|| r.stats.sampling.ipc_ci() / r.stats.sampling.ipc_mean().max(1e-9))
}

/// Propagated 95% half-width of a ratio `num/den` of two cycle counts,
/// each possibly sampled: relative errors add in quadrature.
fn ratio_ci(ratio: f64, num: &CellResult, den: &CellResult) -> Option<f64> {
    let rn = rel_cycles_ci(num);
    let rd = rel_cycles_ci(den);
    if rn.is_none() && rd.is_none() {
        return None;
    }
    let rn = rn.unwrap_or(0.0);
    let rd = rd.unwrap_or(0.0);
    Some(ratio.abs() * (rn * rn + rd * rd).sqrt())
}

/// The queue depths the checking-queue ablation sweeps by default.
pub const DEFAULT_QUEUE_SIZES: [u32; 4] = [4, 8, 16, 32];

/// The checking-table sizes the table-size ablation sweeps by default.
pub const DEFAULT_TABLE_SIZES: [u32; 4] = [256, 1024, 2048, 4096];

/// Table 6's default injected invalidation rates (per 1000 cycles).
pub const DEFAULT_INVAL_RATES: [f64; 4] = [0.0, 1.0, 10.0, 100.0];

// ---------------------------------------------------------------------------
// Figure 2: LQ searches filtered vs. number and interleaving of YLAs.
// ---------------------------------------------------------------------------

/// One Figure 2 bar.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// "quad-word" or "cache-line".
    pub interleave: &'static str,
    /// YLA register count.
    pub regs: u32,
    /// Suite.
    pub group: Group,
    /// Fraction of store LQ searches filtered (mean with range).
    pub filtered: GroupStat,
}

/// Figure 2 data.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// All bars.
    pub rows: Vec<Fig2Row>,
}

fn fig2_labels() -> Vec<(&'static str, bool, u32)> {
    let mut labels = Vec::new();
    for (interleave, line) in [("quad-word", false), ("cache-line", true)] {
        for regs in [1u32, 2, 4, 8, 16] {
            labels.push((interleave, line, regs));
        }
    }
    labels
}

fn fig2_variants(config: &CoreConfig) -> Vec<Variant> {
    fig2_labels()
        .into_iter()
        .map(|(_, line, regs)| {
            (
                config.clone(),
                PolicyKind::Yla {
                    regs,
                    line_interleaved: line,
                },
                SimOptions::default(),
            )
        })
        .collect()
}

fn fig2_reduce(chunks: &[Vec<CellResult>]) -> Fig2 {
    let mut rows = Vec::new();
    for ((interleave, _, regs), runs) in fig2_labels().into_iter().zip(chunks) {
        for group in [Group::Int, Group::Fp] {
            rows.push(Fig2Row {
                interleave,
                regs,
                group,
                filtered: group_stat_ci(
                    runs,
                    group,
                    |r| r.stats.policy.store_filter_rate(),
                    filter_rate_ci,
                ),
            });
        }
    }
    Fig2 { rows }
}

/// Regenerates Figure 2 on an explicit workload set.
pub fn fig2_on(workloads: &[Workload], config: &CoreConfig) -> Fig2 {
    fig2_reduce(&run_matrix(workloads, &fig2_variants(config)))
}

/// Regenerates Figure 2 at the given scale on config 2.
pub fn fig2(scale: Scale) -> Fig2 {
    fig2_on(&full_suite(scale), &CoreConfig::config2())
}

impl Fig2 {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Figure 2: % of LQ searches filtered by YLA count and interleaving");
        t.headers(["interleave", "regs", "group", "filtered mean [min, max]"]);
        for r in &self.rows {
            t.row([
                r.interleave.to_string(),
                r.regs.to_string(),
                r.group.to_string(),
                r.filtered.pct_range(),
            ]);
        }
        t
    }

    /// Renders the figure data as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for Figure 2.
pub struct Fig2Exp;

impl Experiment for Fig2Exp {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 2, §6.1"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(full_suite(scale), fig2_variants(&CoreConfig::config2()))
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, fig2_labels().len());
        Report::single(self.id(), fig2_reduce(&chunks).table())
    }
}

// ---------------------------------------------------------------------------
// Figure 3: YLA filtering vs. bloom filters.
// ---------------------------------------------------------------------------

/// One Figure 3 bar.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Design label ("yla-1", "bloom-256", ...).
    pub design: String,
    /// Suite.
    pub group: Group,
    /// Filter rate.
    pub filtered: GroupStat,
}

/// Figure 3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// All bars.
    pub rows: Vec<Fig3Row>,
}

fn fig3_designs() -> Vec<(String, PolicyKind)> {
    let mut designs: Vec<(String, PolicyKind)> = vec![
        (
            "yla-1".into(),
            PolicyKind::Yla {
                regs: 1,
                line_interleaved: false,
            },
        ),
        (
            "yla-8".into(),
            PolicyKind::Yla {
                regs: 8,
                line_interleaved: false,
            },
        ),
    ];
    for entries in [32u32, 64, 128, 256, 512, 1024] {
        designs.push((format!("bloom-{entries}"), PolicyKind::Bloom { entries }));
    }
    designs
}

fn fig3_variants(config: &CoreConfig) -> Vec<Variant> {
    fig3_designs()
        .into_iter()
        .map(|(_, kind)| (config.clone(), kind, SimOptions::default()))
        .collect()
}

fn fig3_reduce(chunks: &[Vec<CellResult>]) -> Fig3 {
    let mut rows = Vec::new();
    for ((design, _), runs) in fig3_designs().into_iter().zip(chunks) {
        for group in [Group::Int, Group::Fp] {
            rows.push(Fig3Row {
                design: design.clone(),
                group,
                filtered: group_stat_ci(
                    runs,
                    group,
                    |r| r.stats.policy.store_filter_rate(),
                    filter_rate_ci,
                ),
            });
        }
    }
    Fig3 { rows }
}

/// Regenerates Figure 3 on an explicit workload set.
pub fn fig3_on(workloads: &[Workload], config: &CoreConfig) -> Fig3 {
    fig3_reduce(&run_matrix(workloads, &fig3_variants(config)))
}

/// Regenerates Figure 3 at the given scale on config 2.
pub fn fig3(scale: Scale) -> Fig3 {
    fig3_on(&full_suite(scale), &CoreConfig::config2())
}

impl Fig3 {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Figure 3: filtering of YLA vs bloom filters (H0 hash)");
        t.headers(["design", "group", "filtered mean [min, max]"]);
        for r in &self.rows {
            t.row([
                r.design.clone(),
                r.group.to_string(),
                r.filtered.pct_range(),
            ]);
        }
        t
    }

    /// Renders the figure data as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for Figure 3.
pub struct Fig3Exp;

impl Experiment for Fig3Exp {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 3, §6.1"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(full_suite(scale), fig3_variants(&CoreConfig::config2()))
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, fig3_designs().len());
        Report::single(self.id(), fig3_reduce(&chunks).table())
    }
}

// ---------------------------------------------------------------------------
// Figure 4: DMDC main results (LQ energy, slowdown, total energy; 3 configs).
// ---------------------------------------------------------------------------

/// One Figure 4 cluster.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Machine configuration name.
    pub config: &'static str,
    /// Suite.
    pub group: Group,
    /// LQ-functionality energy savings vs. the conventional design.
    pub lq_savings: GroupStat,
    /// Execution-time increase (negative = speedup).
    pub slowdown: GroupStat,
    /// Processor-wide net energy savings.
    pub total_savings: GroupStat,
}

/// Figure 4 data.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// All clusters.
    pub rows: Vec<Fig4Row>,
}

/// Per-workload comparison of a design against the baseline run.
#[derive(Debug, Clone, Copy)]
struct Comparison {
    slowdown: f64,
    lq_savings: f64,
    total_savings: f64,
}

fn compare(
    config: &CoreConfig,
    base: &SimStats,
    base_kind: &PolicyKind,
    new: &SimStats,
    new_kind: &PolicyKind,
) -> Comparison {
    let base_e = EnergyModel::with_geometry(base_kind.geometry(config)).evaluate(base);
    let new_e = EnergyModel::with_geometry(new_kind.geometry(config)).evaluate(new);
    Comparison {
        slowdown: new.cycles as f64 / base.cycles as f64 - 1.0,
        lq_savings: 1.0 - new_e.lq_functionality() / base_e.lq_functionality(),
        total_savings: 1.0 - new_e.total() / base_e.total(),
    }
}

fn fig4_variants(configs: &[CoreConfig]) -> Vec<Variant> {
    configs
        .iter()
        .flat_map(|config| {
            [
                (config.clone(), PolicyKind::Baseline, SimOptions::default()),
                (
                    config.clone(),
                    PolicyKind::DmdcGlobal,
                    SimOptions::default(),
                ),
            ]
        })
        .collect()
}

fn fig4_reduce(configs: &[CoreConfig], chunks: &[Vec<CellResult>]) -> Fig4 {
    let base_kind = PolicyKind::Baseline;
    let dmdc_kind = PolicyKind::DmdcGlobal;
    let mut rows = Vec::new();
    for (ci, config) in configs.iter().enumerate() {
        let (base_runs, dmdc_runs) = (&chunks[2 * ci], &chunks[2 * ci + 1]);
        let comparisons: Vec<(Group, Comparison)> = base_runs
            .iter()
            .zip(dmdc_runs)
            .map(|(base, dmdc)| {
                (
                    base.group,
                    compare(config, &base.stats, &base_kind, &dmdc.stats, &dmdc_kind),
                )
            })
            .collect();
        for group in [Group::Int, Group::Fp] {
            let of = |f: &dyn Fn(&Comparison) -> f64| {
                let vals: Vec<f64> = comparisons
                    .iter()
                    .filter(|(g, _)| *g == group)
                    .map(|(_, c)| f(c))
                    .collect();
                GroupStat::of(&vals)
            };
            rows.push(Fig4Row {
                config: config.name,
                group,
                lq_savings: of(&|c| c.lq_savings),
                slowdown: of(&|c| c.slowdown),
                total_savings: of(&|c| c.total_savings),
            });
        }
    }
    Fig4 { rows }
}

/// Regenerates Figure 4 on an explicit workload set across the given
/// configurations.
pub fn fig4_on(workloads: &[Workload], configs: &[CoreConfig]) -> Fig4 {
    fig4_reduce(configs, &run_matrix(workloads, &fig4_variants(configs)))
}

/// Regenerates Figure 4 at the given scale on all three configurations.
pub fn fig4(scale: Scale) -> Fig4 {
    fig4_on(&full_suite(scale), &CoreConfig::all())
}

impl Fig4 {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Figure 4: DMDC LQ energy savings, slowdown, total energy savings");
        t.headers(["config", "group", "LQ savings", "slowdown", "total savings"]);
        for r in &self.rows {
            t.row([
                r.config.to_string(),
                r.group.to_string(),
                r.lq_savings.pct_range(),
                r.slowdown.pct_range(),
                r.total_savings.pct_range(),
            ]);
        }
        t
    }

    /// Renders the figure data as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for Figure 4.
pub struct Fig4Exp;

impl Experiment for Fig4Exp {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 4, §6.1"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(full_suite(scale), fig4_variants(&CoreConfig::all()))
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let configs = CoreConfig::all();
        let chunks = chunk_by_variants(cells, 2 * configs.len());
        Report::single(self.id(), fig4_reduce(&configs, &chunks).table())
    }
}

// ---------------------------------------------------------------------------
// §6.1 energy note: YLA-8 alone (32.4% LQ energy, ~1.7% core-wide in paper).
// ---------------------------------------------------------------------------

/// The §6.1 YLA-only energy result.
#[derive(Debug, Clone)]
pub struct YlaEnergy {
    /// Per-group LQ-functionality savings of YLA-8 filtering.
    pub lq_savings: Vec<(Group, GroupStat)>,
    /// Per-group processor-wide savings.
    pub total_savings: Vec<(Group, GroupStat)>,
}

fn yla_energy_kinds() -> (PolicyKind, PolicyKind) {
    (
        PolicyKind::Baseline,
        PolicyKind::Yla {
            regs: 8,
            line_interleaved: false,
        },
    )
}

fn yla_energy_variants(config: &CoreConfig) -> Vec<Variant> {
    let (base_kind, yla_kind) = yla_energy_kinds();
    vec![
        (config.clone(), base_kind, SimOptions::default()),
        (config.clone(), yla_kind, SimOptions::default()),
    ]
}

fn yla_energy_reduce(config: &CoreConfig, chunks: &[Vec<CellResult>]) -> YlaEnergy {
    let (base_kind, yla_kind) = yla_energy_kinds();
    let comparisons: Vec<(Group, Comparison)> = chunks[0]
        .iter()
        .zip(&chunks[1])
        .map(|(base, yla)| {
            (
                base.group,
                compare(config, &base.stats, &base_kind, &yla.stats, &yla_kind),
            )
        })
        .collect();
    let agg = |f: &dyn Fn(&Comparison) -> f64| {
        [Group::Int, Group::Fp]
            .into_iter()
            .map(|g| {
                let vals: Vec<f64> = comparisons
                    .iter()
                    .filter(|(gg, _)| *gg == g)
                    .map(|(_, c)| f(c))
                    .collect();
                (g, GroupStat::of(&vals))
            })
            .collect::<Vec<_>>()
    };
    YlaEnergy {
        lq_savings: agg(&|c| c.lq_savings),
        total_savings: agg(&|c| c.total_savings),
    }
}

/// Regenerates the §6.1 YLA-8 energy numbers on an explicit workload set.
pub fn yla_energy_on(workloads: &[Workload], config: &CoreConfig) -> YlaEnergy {
    yla_energy_reduce(config, &run_matrix(workloads, &yla_energy_variants(config)))
}

/// Regenerates the §6.1 YLA-8 energy numbers at the given scale (config 2).
pub fn yla_energy(scale: Scale) -> YlaEnergy {
    yla_energy_on(&full_suite(scale), &CoreConfig::config2())
}

impl YlaEnergy {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("§6.1: energy savings from YLA-8 filtering alone");
        t.headers(["group", "LQ savings", "total savings"]);
        for ((g, lq), (_, total)) in self.lq_savings.iter().zip(&self.total_savings) {
            t.row([g.to_string(), lq.pct_range(), total.pct_range()]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for the §6.1 YLA-8 energy note.
pub struct YlaEnergyExp;

impl Experiment for YlaEnergyExp {
    fn id(&self) -> &'static str {
        "yla-energy"
    }

    fn paper_ref(&self) -> &'static str {
        "§6.1 (YLA-8 energy note)"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            yla_energy_variants(&CoreConfig::config2()),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let config = CoreConfig::config2();
        let chunks = chunk_by_variants(cells, 2);
        Report::single(self.id(), yla_energy_reduce(&config, &chunks).table())
    }
}

// ---------------------------------------------------------------------------
// Tables 2 & 4: checking-window statistics (global & local DMDC).
// ---------------------------------------------------------------------------

/// One window-statistics row.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Suite.
    pub group: Group,
    /// Mean committed instructions per checking window.
    pub instructions: f64,
    /// Mean committed loads per window.
    pub loads: f64,
    /// Mean safe loads per window.
    pub safe_loads: f64,
    /// Fraction of cycles spent in checking mode.
    pub checking_cycle_frac: f64,
    /// Fraction of windows containing a single unsafe store.
    pub single_store_frac: f64,
}

/// Table 2 / Table 4 data.
#[derive(Debug, Clone)]
pub struct WindowTable {
    /// `true` = local DMDC (Table 4).
    pub local: bool,
    /// Per-group rows.
    pub rows: Vec<WindowRow>,
}

fn dmdc_kind(local: bool) -> PolicyKind {
    if local {
        PolicyKind::DmdcLocal
    } else {
        PolicyKind::DmdcGlobal
    }
}

fn window_reduce(runs: &[CellResult], local: bool) -> WindowTable {
    let per_window = |r: &Run, total: u64| {
        let windows = r.stats.policy.checking_windows.max(1);
        total as f64 / windows as f64
    };
    let rows = [Group::Int, Group::Fp]
        .into_iter()
        .map(|group| WindowRow {
            group,
            instructions: group_stat(runs, group, |r| {
                per_window(r, r.stats.policy.window_instructions)
            })
            .mean,
            loads: group_stat(runs, group, |r| per_window(r, r.stats.policy.window_loads)).mean,
            safe_loads: group_stat(runs, group, |r| {
                per_window(r, r.stats.policy.window_safe_loads)
            })
            .mean,
            checking_cycle_frac: group_stat(runs, group, |r| {
                r.stats.policy.checking_mode_cycles as f64 / r.stats.cycles.max(1) as f64
            })
            .mean,
            single_store_frac: group_stat(runs, group, |r| {
                r.stats.policy.single_store_windows as f64
                    / r.stats.policy.checking_windows.max(1) as f64
            })
            .mean,
        })
        .collect();
    WindowTable { local, rows }
}

/// Regenerates checking-window statistics on an explicit workload set.
pub fn window_stats_on(workloads: &[Workload], config: &CoreConfig, local: bool) -> WindowTable {
    let runs = run_matrix(
        workloads,
        &[(config.clone(), dmdc_kind(local), SimOptions::default())],
    )
    .remove(0);
    window_reduce(&runs, local)
}

/// Table 2 (global DMDC) at the given scale, config 2.
pub fn table2(scale: Scale) -> WindowTable {
    window_stats_on(&full_suite(scale), &CoreConfig::config2(), false)
}

/// Table 4 (local DMDC) at the given scale, config 2.
pub fn table4(scale: Scale) -> WindowTable {
    window_stats_on(&full_suite(scale), &CoreConfig::config2(), true)
}

impl WindowTable {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let title = if self.local {
            "Table 4: checking-window statistics (local DMDC)"
        } else {
            "Table 2: checking-window statistics (global DMDC)"
        };
        let mut t = Table::new(title);
        t.headers([
            "group",
            "instructions",
            "loads",
            "safe loads",
            "% cycles checking",
            "% 1-store windows",
        ]);
        for r in &self.rows {
            t.row([
                r.group.to_string(),
                f1(r.instructions),
                f1(r.loads),
                f2(r.safe_loads),
                pct(r.checking_cycle_frac),
                pct(r.single_store_frac),
            ]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

fn window_plan(scale: Scale, local: bool) -> Plan {
    Plan::matrix(
        full_suite(scale),
        vec![(
            CoreConfig::config2(),
            dmdc_kind(local),
            SimOptions::default(),
        )],
    )
}

fn window_report(id: &'static str, cells: &[CellResult], local: bool) -> Report {
    let chunks = chunk_by_variants(cells, 1);
    Report::single(id, window_reduce(&chunks[0], local).table())
}

/// Registry entry for Table 2 (global-DMDC window statistics).
pub struct Table2Exp;

impl Experiment for Table2Exp {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 2, §6.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        window_plan(scale, false)
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        window_report(self.id(), cells, false)
    }
}

/// Registry entry for Table 4 (local-DMDC window statistics).
pub struct Table4Exp;

impl Experiment for Table4Exp {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 4, §6.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        window_plan(scale, true)
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        window_report(self.id(), cells, true)
    }
}

// ---------------------------------------------------------------------------
// Tables 3 & 5: false-replay breakdown per million committed instructions.
// ---------------------------------------------------------------------------

/// One false-replay-breakdown row (events per million commits).
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Suite.
    pub group: Group,
    /// Address match, load in the store's own window (X).
    pub addr_x: f64,
    /// Address match, merged windows (Y).
    pub addr_y: f64,
    /// Hash conflict, load issued before the store resolved.
    pub hash_before: f64,
    /// Hash conflict, X.
    pub hash_x: f64,
    /// Hash conflict, Y.
    pub hash_y: f64,
    /// Total false replays.
    pub false_total: f64,
    /// True violations (for reference; the paper excludes them).
    pub true_violations: f64,
}

/// Table 3 / Table 5 data.
#[derive(Debug, Clone)]
pub struct ReplayTable {
    /// `true` = local DMDC (Table 5).
    pub local: bool,
    /// Per-group rows.
    pub rows: Vec<ReplayRow>,
}

fn replay_reduce(runs: &[CellResult], local: bool) -> ReplayTable {
    let rows = [Group::Int, Group::Fp]
        .into_iter()
        .map(|group| {
            let pm = |f: &dyn Fn(&Run) -> u64| {
                group_stat(runs, group, |r| r.stats.per_million(f(r))).mean
            };
            ReplayRow {
                group,
                addr_x: pm(&|r| r.stats.policy.replays.false_addr_x),
                addr_y: pm(&|r| r.stats.policy.replays.false_addr_y),
                hash_before: pm(&|r| r.stats.policy.replays.false_hash_before),
                hash_x: pm(&|r| r.stats.policy.replays.false_hash_x),
                hash_y: pm(&|r| r.stats.policy.replays.false_hash_y),
                false_total: pm(&|r| r.stats.policy.replays.false_total()),
                true_violations: pm(&|r| r.stats.policy.replays.true_violation),
            }
        })
        .collect();
    ReplayTable { local, rows }
}

/// Regenerates the false-replay breakdown on an explicit workload set.
pub fn replay_breakdown_on(
    workloads: &[Workload],
    config: &CoreConfig,
    local: bool,
) -> ReplayTable {
    let runs = run_matrix(
        workloads,
        &[(config.clone(), dmdc_kind(local), SimOptions::default())],
    )
    .remove(0);
    replay_reduce(&runs, local)
}

/// Table 3 (global DMDC) at the given scale, config 2.
pub fn table3(scale: Scale) -> ReplayTable {
    replay_breakdown_on(&full_suite(scale), &CoreConfig::config2(), false)
}

/// Table 5 (local DMDC) at the given scale, config 2.
pub fn table5(scale: Scale) -> ReplayTable {
    replay_breakdown_on(&full_suite(scale), &CoreConfig::config2(), true)
}

impl ReplayTable {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let title = if self.local {
            "Table 5: false replays per 1M commits (local DMDC)"
        } else {
            "Table 3: false replays per 1M commits (global DMDC)"
        };
        let mut t = Table::new(title);
        t.headers([
            "group",
            "addr X",
            "addr Y",
            "hash before",
            "hash X",
            "hash Y",
            "false total",
            "(true)",
        ]);
        for r in &self.rows {
            t.row([
                r.group.to_string(),
                f1(r.addr_x),
                f1(r.addr_y),
                f1(r.hash_before),
                f1(r.hash_x),
                f1(r.hash_y),
                f1(r.false_total),
                f1(r.true_violations),
            ]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

fn replay_report(id: &'static str, cells: &[CellResult], local: bool) -> Report {
    let chunks = chunk_by_variants(cells, 1);
    Report::single(id, replay_reduce(&chunks[0], local).table())
}

/// Registry entry for Table 3 (global-DMDC replay breakdown).
pub struct Table3Exp;

impl Experiment for Table3Exp {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 3, §6.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        window_plan(scale, false)
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        replay_report(self.id(), cells, false)
    }
}

/// Registry entry for Table 5 (local-DMDC replay breakdown).
pub struct Table5Exp;

impl Experiment for Table5Exp {
    fn id(&self) -> &'static str {
        "table5"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 5, §6.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        window_plan(scale, true)
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        replay_report(self.id(), cells, true)
    }
}

// ---------------------------------------------------------------------------
// Figure 5: slowdown, global vs local DMDC, three configurations.
// ---------------------------------------------------------------------------

/// One Figure 5 cluster.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Machine configuration.
    pub config: &'static str,
    /// Suite.
    pub group: Group,
    /// Global-DMDC slowdown vs. baseline.
    pub global_slowdown: GroupStat,
    /// Local-DMDC slowdown vs. baseline.
    pub local_slowdown: GroupStat,
}

/// Figure 5 data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// All clusters.
    pub rows: Vec<Fig5Row>,
}

fn fig5_variants(configs: &[CoreConfig]) -> Vec<Variant> {
    configs
        .iter()
        .flat_map(|config| {
            [
                PolicyKind::Baseline,
                PolicyKind::DmdcGlobal,
                PolicyKind::DmdcLocal,
            ]
            .map(|kind| (config.clone(), kind, SimOptions::default()))
        })
        .collect()
}

fn fig5_reduce(configs: &[CoreConfig], chunks: &[Vec<CellResult>]) -> Fig5 {
    let mut rows = Vec::new();
    for (ci, config) in configs.iter().enumerate() {
        let (base, global, local) = (&chunks[3 * ci], &chunks[3 * ci + 1], &chunks[3 * ci + 2]);
        let per: Vec<(Group, f64, f64)> = base
            .iter()
            .zip(global)
            .zip(local)
            .map(|((b, g), l)| {
                (
                    b.group,
                    g.stats.cycles as f64 / b.stats.cycles as f64 - 1.0,
                    l.stats.cycles as f64 / b.stats.cycles as f64 - 1.0,
                )
            })
            .collect();
        for group in [Group::Int, Group::Fp] {
            let g: Vec<f64> = per
                .iter()
                .filter(|(gg, ..)| *gg == group)
                .map(|&(_, g, _)| g)
                .collect();
            let l: Vec<f64> = per
                .iter()
                .filter(|(gg, ..)| *gg == group)
                .map(|&(_, _, l)| l)
                .collect();
            rows.push(Fig5Row {
                config: config.name,
                group,
                global_slowdown: GroupStat::of(&g),
                local_slowdown: GroupStat::of(&l),
            });
        }
    }
    Fig5 { rows }
}

/// Regenerates Figure 5 on an explicit workload set.
pub fn fig5_on(workloads: &[Workload], configs: &[CoreConfig]) -> Fig5 {
    fig5_reduce(configs, &run_matrix(workloads, &fig5_variants(configs)))
}

/// Regenerates Figure 5 at the given scale on all three configurations.
pub fn fig5(scale: Scale) -> Fig5 {
    fig5_on(&full_suite(scale), &CoreConfig::all())
}

impl Fig5 {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Figure 5: slowdown of global vs local DMDC");
        t.headers(["config", "group", "global slowdown", "local slowdown"]);
        for r in &self.rows {
            t.row([
                r.config.to_string(),
                r.group.to_string(),
                r.global_slowdown.pct_range(),
                r.local_slowdown.pct_range(),
            ]);
        }
        t
    }

    /// Renders the figure data as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for Figure 5.
pub struct Fig5Exp;

impl Experiment for Fig5Exp {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 5, §6.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(full_suite(scale), fig5_variants(&CoreConfig::all()))
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let configs = CoreConfig::all();
        let chunks = chunk_by_variants(cells, 3 * configs.len());
        Report::single(self.id(), fig5_reduce(&configs, &chunks).table())
    }
}

// ---------------------------------------------------------------------------
// Table 6: impact of external invalidations.
// ---------------------------------------------------------------------------

/// One Table 6 row.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Suite.
    pub group: Group,
    /// Injected invalidations per 1000 cycles.
    pub rate: f64,
    /// Fraction of cycles in checking mode.
    pub checking_cycle_frac: f64,
    /// Checking-window size relative to the zero-invalidation run.
    pub rel_window: f64,
    /// False-replay rate relative to the zero-invalidation run.
    pub rel_false_replays: f64,
    /// Slowdown vs. the conventional baseline without invalidations.
    pub slowdown: f64,
    /// Propagated 95% half-width of the slowdown, when runs were sampled.
    pub slowdown_ci: Option<f64>,
}

/// Table 6 data.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Rows, grouped by suite then rate.
    pub rows: Vec<Table6Row>,
}

fn table6_variants(config: &CoreConfig, rates: &[f64]) -> Vec<Variant> {
    // Baseline timing reference (no coherence, as in the paper's baseline)
    // plus one DMDC-coherent variant per invalidation rate, in one batch.
    let mut variants = vec![(config.clone(), PolicyKind::Baseline, SimOptions::default())];
    for &rate in rates {
        let opts = SimOptions {
            inval_per_kcycle: rate,
            inval_seed: 42,
            ..SimOptions::default()
        };
        variants.push((config.clone(), PolicyKind::DmdcCoherent, opts));
    }
    variants
}

fn table6_reduce(rates: &[f64], chunks: &[Vec<CellResult>]) -> Table6 {
    let base_runs = &chunks[0];
    // The zero-rate DMDC run normalizes the relative columns.
    let reference = &chunks[1];
    let mut rows = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let runs = &chunks[i + 1];
        for group in [Group::Int, Group::Fp] {
            let window_size = |rs: &[Run]| {
                group_stat(rs, group, |r| {
                    r.stats.policy.window_instructions as f64
                        / r.stats.policy.checking_windows.max(1) as f64
                })
                .mean
            };
            let false_rate = |rs: &[Run]| {
                group_stat(rs, group, |r| {
                    r.stats.per_million(r.stats.policy.replays.false_total())
                })
                .mean
            };
            // Floors keep the relative columns meaningful when the
            // zero-invalidation run has (near-)zero events, as FP does.
            let ref_window = window_size(reference).max(1.0);
            let ref_false = false_rate(reference).max(1.0);
            let checking = group_stat(runs, group, |r| {
                r.stats.policy.checking_mode_cycles as f64 / r.stats.cycles.max(1) as f64
            })
            .mean;
            // Mean slowdown pairs each workload's run with its baseline;
            // sampled runs carry the propagated CI of the cycle ratio.
            let pairs: Vec<(&Run, &Run)> = runs
                .iter()
                .zip(base_runs)
                .filter(|(r, _)| r.group == group)
                .collect();
            let slowdowns: Vec<f64> = pairs
                .iter()
                .map(|(r, b)| r.stats.cycles as f64 / b.stats.cycles as f64 - 1.0)
                .collect();
            let cis: Vec<Option<f64>> = pairs
                .iter()
                .zip(&slowdowns)
                .map(|((r, b), s)| ratio_ci(s + 1.0, r, b))
                .collect();
            let slowdown = GroupStat::of_ci(&slowdowns, &cis);
            rows.push(Table6Row {
                group,
                rate,
                checking_cycle_frac: checking,
                rel_window: window_size(runs).max(1.0) / ref_window,
                rel_false_replays: false_rate(runs).max(1.0) / ref_false,
                slowdown: slowdown.mean,
                slowdown_ci: slowdown.ci,
            });
        }
    }
    Table6 { rows }
}

/// Regenerates Table 6 on an explicit workload set.
pub fn table6_on(workloads: &[Workload], config: &CoreConfig, rates: &[f64]) -> Table6 {
    table6_reduce(
        rates,
        &run_matrix(workloads, &table6_variants(config, rates)),
    )
}

/// Regenerates Table 6 at the given scale on config 2 with the paper's
/// rates (0, 1, 10, 100 invalidations per 1000 cycles).
pub fn table6(scale: Scale) -> Table6 {
    table6_on(
        &full_suite(scale),
        &CoreConfig::config2(),
        &DEFAULT_INVAL_RATES,
    )
}

impl Table6 {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Table 6: impact of external invalidations on DMDC");
        t.headers([
            "group",
            "inv/1k cycles",
            "% cycles checking",
            "rel window",
            "rel false replays",
            "slowdown",
        ]);
        for r in &self.rows {
            t.row([
                r.group.to_string(),
                f1(r.rate),
                pct(r.checking_cycle_frac),
                f2(r.rel_window),
                f2(r.rel_false_replays),
                match r.slowdown_ci {
                    Some(ci) => pct_ci(r.slowdown, ci),
                    None => pct(r.slowdown),
                },
            ]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for Table 6.
pub struct Table6Exp;

impl Experiment for Table6Exp {
    fn id(&self) -> &'static str {
        "table6"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 6, §6.3"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            table6_variants(&CoreConfig::config2(), &DEFAULT_INVAL_RATES),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, 1 + DEFAULT_INVAL_RATES.len());
        Report::single(
            self.id(),
            table6_reduce(&DEFAULT_INVAL_RATES, &chunks).table(),
        )
    }
}

// ---------------------------------------------------------------------------
// Multicore: organic coherence traffic next to the injected approximation.
// ---------------------------------------------------------------------------

/// Contention periods (private ALU instructions between shared-line
/// rounds) the multicore experiment sweeps, sparsest first: smaller
/// periods mean denser organic invalidation traffic.
pub const DEFAULT_SHARING_PERIODS: [u32; 4] = [64, 16, 4, 1];

/// Shared rounds per core in the organic sweep. Fixed rather than scaled:
/// the organic runs are full-detail two-core simulations driven inline by
/// the reducer, so they stay smoke-sized at every scale.
const SHARING_ROUNDS: u32 = 300;

/// One organic (really-coherent) two-core run.
#[derive(Debug, Clone)]
pub struct MulticoreRow {
    /// Policy token ("baseline-coherent" / "dmdc-coherent").
    pub policy: String,
    /// Private instructions between shared rounds.
    pub period: u32,
    /// Measured invalidation deliveries per 1000 driver cycles.
    pub invals_per_kcycle: f64,
    /// Coherence replays per million committed instructions, both cores.
    pub coherence_replays_per_m: f64,
    /// Line ownership transfers on the bus (BusUpgr + BusRdX).
    pub bus_transfers: u64,
    /// Driver cycles to completion.
    pub cycles: u64,
}

/// Multicore experiment data: the single-core injected sweep (Table 6's
/// approximation of §6.2.4) next to the organic two-core MESI sweep the
/// approximation stands in for.
#[derive(Debug, Clone)]
pub struct Multicore {
    /// `(injected rate, DMDC coherence replays per 1M committed)` per
    /// swept rate.
    pub injected: Vec<(f64, f64)>,
    /// Organic rows, contention-period-major, policy-minor.
    pub organic: Vec<MulticoreRow>,
}

/// The injected half's cell matrix: exactly Table 6's DMDC-coherent
/// columns (same config, policy and options), so the persistent cell
/// cache shares these cells with `table6` verbatim.
fn multicore_injected_variants(config: &CoreConfig, rates: &[f64]) -> Vec<Variant> {
    rates
        .iter()
        .map(|&rate| {
            let opts = SimOptions {
                inval_per_kcycle: rate,
                inval_seed: 42,
                ..SimOptions::default()
            };
            (config.clone(), PolicyKind::DmdcCoherent, opts)
        })
        .collect()
}

/// Runs the organic two-core sweep: every contention period under the
/// coherent baseline and coherent DMDC, through the real MESI hub.
fn multicore_organic(config: &CoreConfig, periods: &[u32]) -> Vec<MulticoreRow> {
    let mut rows = Vec::new();
    for &period in periods {
        let kernel = mt_share(SHARING_ROUNDS, period);
        for kind in [PolicyKind::BaselineCoherent, PolicyKind::DmdcCoherent] {
            let policies = (0..kernel.programs.len())
                .map(|_| kind.build(config))
                .collect();
            let opts = MultiCoreOptions {
                seed: 7,
                ..MultiCoreOptions::default()
            };
            let r = run_multicore(&kernel.program_refs(), config, policies, &opts)
                .unwrap_or_else(|e| panic!("{} under {kind:?}: {e}", kernel.name));
            assert!(
                r.coherence_violations.is_empty(),
                "{} under {kind:?}: {:?}",
                kernel.name,
                r.coherence_violations
            );
            let committed: u64 = r.cores.iter().map(|c| c.result.stats.committed).sum();
            let coherence: u64 = r
                .cores
                .iter()
                .map(|c| c.result.stats.policy.replays.coherence)
                .sum();
            rows.push(MulticoreRow {
                policy: kind.token(),
                period,
                invals_per_kcycle: r.invals_per_kcycle(),
                coherence_replays_per_m: coherence as f64 * 1e6 / committed.max(1) as f64,
                bus_transfers: r.bus.bus_upgrades + r.bus.bus_read_x,
                cycles: r.cycles,
            });
        }
    }
    rows
}

fn multicore_reduce(
    rates: &[f64],
    chunks: &[Vec<CellResult>],
    organic: Vec<MulticoreRow>,
) -> Multicore {
    let injected = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let runs = &chunks[i];
            let mean = runs
                .iter()
                .map(|r| r.stats.per_million(r.stats.policy.replays.coherence))
                .sum::<f64>()
                / runs.len().max(1) as f64;
            (rate, mean)
        })
        .collect();
    Multicore { injected, organic }
}

/// Regenerates the multicore comparison on an explicit workload set (the
/// injected half) and contention periods (the organic half).
pub fn multicore_on(
    workloads: &[Workload],
    config: &CoreConfig,
    rates: &[f64],
    periods: &[u32],
) -> Multicore {
    multicore_reduce(
        rates,
        &run_matrix(workloads, &multicore_injected_variants(config, rates)),
        multicore_organic(config, periods),
    )
}

/// Regenerates the multicore comparison at the given scale with the
/// default rates and contention periods on config 2.
pub fn multicore(scale: Scale) -> Multicore {
    multicore_on(
        &full_suite(scale),
        &CoreConfig::config2(),
        &DEFAULT_INVAL_RATES,
        &DEFAULT_SHARING_PERIODS,
    )
}

impl Multicore {
    /// The rendered tables, injected sweep first.
    pub fn tables(&self) -> Vec<Table> {
        let mut inj = Table::new(
            "Multicore A: DMDC replay rate under injected invalidations (1 core, Bernoulli model)",
        );
        inj.headers(["inv/1k cycles (injected)", "coherence replays /1M"]);
        for &(rate, replays) in &self.injected {
            inj.row([f1(rate), f1(replays)]);
        }
        let mut org =
            Table::new("Multicore B: organic MESI traffic (2 cores, false-sharing kernel)");
        org.headers([
            "policy",
            "period",
            "inv/1k cycles (measured)",
            "coherence replays /1M",
            "bus transfers",
            "cycles",
        ]);
        for r in &self.organic {
            org.row([
                r.policy.clone(),
                r.period.to_string(),
                f1(r.invals_per_kcycle),
                f1(r.coherence_replays_per_m),
                r.bus_transfers.to_string(),
                r.cycles.to_string(),
            ]);
        }
        vec![inj, org]
    }

    /// Renders both tables.
    pub fn render(&self) -> String {
        self.tables()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Registry entry for the multicore comparison.
pub struct MulticoreExp;

impl Experiment for MulticoreExp {
    fn id(&self) -> &'static str {
        "multicore"
    }

    fn paper_ref(&self) -> &'static str {
        "§6.2.4 (external invalidations, organically generated)"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            multicore_injected_variants(&CoreConfig::config2(), &DEFAULT_INVAL_RATES),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, DEFAULT_INVAL_RATES.len());
        let m = multicore_reduce(
            &DEFAULT_INVAL_RATES,
            &chunks,
            multicore_organic(&CoreConfig::config2(), &DEFAULT_SHARING_PERIODS),
        );
        let mut report = Report::new(self.id());
        for t in m.tables() {
            report.push(t);
        }
        report
    }
}

// ---------------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------------

/// Checking-queue vs. hash-table ablation (§4.4/§6.2.3).
#[derive(Debug, Clone)]
pub struct CheckingQueueAblation {
    /// (design label, group, false replays per 1M, slowdown vs baseline).
    pub rows: Vec<(String, Group, f64, f64)>,
}

fn cq_designs(config: &CoreConfig, queue_sizes: &[u32]) -> Vec<(String, PolicyKind)> {
    let mut designs = vec![(
        format!("table-{}", config.checking_table_entries),
        PolicyKind::DmdcGlobal,
    )];
    for &entries in queue_sizes {
        designs.push((
            format!("queue-{entries}"),
            PolicyKind::CheckingQueue { entries },
        ));
    }
    designs
}

fn cq_variants(config: &CoreConfig, queue_sizes: &[u32]) -> Vec<Variant> {
    let mut variants = vec![(config.clone(), PolicyKind::Baseline, SimOptions::default())];
    for (_, kind) in cq_designs(config, queue_sizes) {
        variants.push((config.clone(), kind, SimOptions::default()));
    }
    variants
}

fn cq_reduce(
    config: &CoreConfig,
    queue_sizes: &[u32],
    chunks: &[Vec<CellResult>],
) -> CheckingQueueAblation {
    let base_runs = &chunks[0];
    let mut rows = Vec::new();
    for ((label, _), runs) in cq_designs(config, queue_sizes)
        .into_iter()
        .zip(&chunks[1..])
    {
        for group in [Group::Int, Group::Fp] {
            let false_pm = group_stat(runs, group, |r| {
                r.stats.per_million(r.stats.policy.replays.false_total())
            })
            .mean;
            let slowdowns: Vec<f64> = runs
                .iter()
                .zip(base_runs)
                .filter(|(r, _)| r.group == group)
                .map(|(r, b)| r.stats.cycles as f64 / b.stats.cycles as f64 - 1.0)
                .collect();
            rows.push((
                label.clone(),
                group,
                false_pm,
                GroupStat::of(&slowdowns).mean,
            ));
        }
    }
    CheckingQueueAblation { rows }
}

/// Compares the hash table against associative queues of several depths.
pub fn checking_queue_ablation_on(
    workloads: &[Workload],
    config: &CoreConfig,
    queue_sizes: &[u32],
) -> CheckingQueueAblation {
    cq_reduce(
        config,
        queue_sizes,
        &run_matrix(workloads, &cq_variants(config, queue_sizes)),
    )
}

impl CheckingQueueAblation {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Ablation: hash table vs associative checking queue");
        t.headers(["design", "group", "false replays / 1M", "slowdown"]);
        for (label, group, fr, sd) in &self.rows {
            t.row([label.clone(), group.to_string(), f1(*fr), pct(*sd)]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for the checking-queue ablation.
pub struct CheckingQueueAblationExp;

impl Experiment for CheckingQueueAblationExp {
    fn id(&self) -> &'static str {
        "ablation-queue"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.4 / §6.2.3"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            cq_variants(&CoreConfig::config2(), &DEFAULT_QUEUE_SIZES),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let config = CoreConfig::config2();
        let chunks = chunk_by_variants(cells, 2 + DEFAULT_QUEUE_SIZES.len());
        Report::single(
            self.id(),
            cq_reduce(&config, &DEFAULT_QUEUE_SIZES, &chunks).table(),
        )
    }
}

/// Checking-table size sweep (§6.2.2: "increasing the size of the checking
/// table will have limited effectiveness due to diminishing returns").
#[derive(Debug, Clone)]
pub struct TableSizeAblation {
    /// (table entries, group, false replays per 1M, hash-conflict replays
    /// per 1M).
    pub rows: Vec<(u32, Group, f64, f64)>,
}

fn table_size_variants(config: &CoreConfig, sizes: &[u32]) -> Vec<Variant> {
    sizes
        .iter()
        .map(|&entries| {
            let mut cfg = config.clone();
            cfg.checking_table_entries = entries;
            (cfg, PolicyKind::DmdcGlobal, SimOptions::default())
        })
        .collect()
}

fn table_size_reduce(sizes: &[u32], chunks: &[Vec<CellResult>]) -> TableSizeAblation {
    let mut rows = Vec::new();
    for (&entries, runs) in sizes.iter().zip(chunks) {
        for group in [Group::Int, Group::Fp] {
            let false_pm = group_stat(runs, group, |r| {
                r.stats.per_million(r.stats.policy.replays.false_total())
            })
            .mean;
            let hash_pm = group_stat(runs, group, |r| {
                r.stats.per_million(
                    r.stats.policy.replays.false_hash_before
                        + r.stats.policy.replays.false_hash_x
                        + r.stats.policy.replays.false_hash_y,
                )
            })
            .mean;
            rows.push((entries, group, false_pm, hash_pm));
        }
    }
    TableSizeAblation { rows }
}

/// Sweeps the checking-table size under global DMDC.
pub fn table_size_ablation_on(
    workloads: &[Workload],
    config: &CoreConfig,
    sizes: &[u32],
) -> TableSizeAblation {
    table_size_reduce(
        sizes,
        &run_matrix(workloads, &table_size_variants(config, sizes)),
    )
}

impl TableSizeAblation {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Ablation: checking-table size vs false replays");
        t.headers([
            "entries",
            "group",
            "false replays / 1M",
            "hash-conflict part",
        ]);
        for (entries, group, fr, hash) in &self.rows {
            t.row([entries.to_string(), group.to_string(), f1(*fr), f1(*hash)]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for the checking-table size ablation.
pub struct TableSizeAblationExp;

impl Experiment for TableSizeAblationExp {
    fn id(&self) -> &'static str {
        "ablation-table-size"
    }

    fn paper_ref(&self) -> &'static str {
        "§6.2.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            table_size_variants(&CoreConfig::config2(), &DEFAULT_TABLE_SIZES),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, DEFAULT_TABLE_SIZES.len());
        Report::single(
            self.id(),
            table_size_reduce(&DEFAULT_TABLE_SIZES, &chunks).table(),
        )
    }
}

/// Safe-load ablation (§6.2.2: "without safe loads, replays will double").
#[derive(Debug, Clone)]
pub struct SafeLoadAblation {
    /// (group, false replays/1M with safe loads, without).
    pub rows: Vec<(Group, f64, f64)>,
}

fn safe_load_variants(config: &CoreConfig) -> Vec<Variant> {
    vec![
        (
            config.clone(),
            PolicyKind::DmdcGlobal,
            SimOptions::default(),
        ),
        (
            config.clone(),
            PolicyKind::DmdcNoSafeLoads,
            SimOptions::default(),
        ),
    ]
}

fn safe_load_reduce(chunks: &[Vec<CellResult>]) -> SafeLoadAblation {
    let (with, without) = (&chunks[0], &chunks[1]);
    let rows = [Group::Int, Group::Fp]
        .into_iter()
        .map(|group| {
            let f = |rs: &[Run]| {
                group_stat(rs, group, |r| {
                    r.stats.per_million(r.stats.policy.replays.false_total())
                })
                .mean
            };
            (group, f(with), f(without))
        })
        .collect();
    SafeLoadAblation { rows }
}

/// Measures the false-replay reduction the safe-load logic provides.
pub fn safe_load_ablation_on(workloads: &[Workload], config: &CoreConfig) -> SafeLoadAblation {
    safe_load_reduce(&run_matrix(workloads, &safe_load_variants(config)))
}

impl SafeLoadAblation {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Ablation: safe-load detection (false replays / 1M)");
        t.headers(["group", "with safe loads", "without"]);
        for (g, w, wo) in &self.rows {
            t.row([g.to_string(), f1(*w), f1(*wo)]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for the safe-load ablation.
pub struct SafeLoadAblationExp;

impl Experiment for SafeLoadAblationExp {
    fn id(&self) -> &'static str {
        "ablation-safe-loads"
    }

    fn paper_ref(&self) -> &'static str {
        "§6.2.2"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            safe_load_variants(&CoreConfig::config2()),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, 2);
        Report::single(self.id(), safe_load_reduce(&chunks).table())
    }
}

/// §3 store-queue filtering: fraction of loads older than every in-flight
/// store (paper: "about 20%"), plus the measured effect of actually
/// enabling the oldest-store-age register (the paper's deferred extension).
#[derive(Debug, Clone)]
pub struct SqFilterPotential {
    /// Per-group: (bypassable fraction, SQ searches saved when the filter
    /// is enabled, timing change when enabled — must be zero).
    pub rows: Vec<(Group, GroupStat, GroupStat, GroupStat)>,
}

fn sq_filter_variants(config: &CoreConfig) -> Vec<Variant> {
    let mut filtered_config = config.clone();
    filtered_config.sq_age_filter = true;
    vec![
        (config.clone(), PolicyKind::Baseline, SimOptions::default()),
        (filtered_config, PolicyKind::Baseline, SimOptions::default()),
    ]
}

fn sq_filter_reduce(chunks: &[Vec<CellResult>]) -> SqFilterPotential {
    let (baseline_runs, filtered_runs) = (&chunks[0], &chunks[1]);
    let rows = [Group::Int, Group::Fp]
        .into_iter()
        .map(|group| {
            let potential = group_stat(baseline_runs, group, |r| {
                r.stats.sq_filterable_loads as f64 / r.stats.energy.sq_cam_searches.max(1) as f64
            });
            let saved: Vec<f64> = baseline_runs
                .iter()
                .zip(filtered_runs)
                .filter(|(b, _)| b.group == group)
                .map(|(b, f)| {
                    1.0 - f.stats.energy.sq_cam_searches as f64
                        / b.stats.energy.sq_cam_searches.max(1) as f64
                })
                .collect();
            let slowdown: Vec<f64> = baseline_runs
                .iter()
                .zip(filtered_runs)
                .filter(|(b, _)| b.group == group)
                .map(|(b, f)| f.stats.cycles as f64 / b.stats.cycles as f64 - 1.0)
                .collect();
            (
                group,
                potential,
                GroupStat::of(&saved),
                GroupStat::of(&slowdown),
            )
        })
        .collect();
    SqFilterPotential { rows }
}

/// Measures the §3 SQ-filtering opportunity and exercises the filter.
pub fn sq_filter_potential_on(workloads: &[Workload], config: &CoreConfig) -> SqFilterPotential {
    sq_filter_reduce(&run_matrix(workloads, &sq_filter_variants(config)))
}

impl SqFilterPotential {
    /// The rendered table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("§3: oldest-store-age SQ filtering (potential and measured effect)");
        t.headers([
            "group",
            "bypassable loads",
            "SQ searches saved",
            "timing change",
        ]);
        for (g, potential, saved, slowdown) in &self.rows {
            t.row([
                g.to_string(),
                potential.pct_range(),
                pct(saved.mean),
                pct(slowdown.mean),
            ]);
        }
        t
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        self.table().to_string()
    }
}

/// Registry entry for the SQ-filter potential study.
pub struct SqFilterAblationExp;

impl Experiment for SqFilterAblationExp {
    fn id(&self) -> &'static str {
        "ablation-sq-filter"
    }

    fn paper_ref(&self) -> &'static str {
        "§3 (deferred SQ-filtering extension)"
    }

    fn plan(&self, scale: Scale) -> Plan {
        Plan::matrix(
            full_suite(scale),
            sq_filter_variants(&CoreConfig::config2()),
        )
    }

    fn reduce(&self, cells: &[CellResult]) -> Report {
        let chunks = chunk_by_variants(cells, 2);
        Report::single(self.id(), sq_filter_reduce(&chunks).table())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{find_experiment, run_workload};
    use super::*;
    use dmdc_workloads::{fp_suite, int_suite};

    /// A tiny two-workload set (one INT, one FP) for harness smoke tests.
    fn mini_suite() -> Vec<Workload> {
        vec![
            int_suite(Scale::Smoke).remove(6), // histo: dependence-heavy
            fp_suite(Scale::Smoke).remove(1),  // saxpy: regular FP
        ]
    }

    #[test]
    fn run_workload_verifies_against_emulator() {
        let w = &mini_suite()[0];
        let r = run_workload(
            w,
            &CoreConfig::config2(),
            &PolicyKind::DmdcGlobal,
            SimOptions::default(),
        );
        assert!(r.stats.committed > 1_000);
    }

    #[test]
    fn fig2_shape_more_regs_filter_more() {
        let suite = mini_suite();
        let fig = fig2_on(&suite, &CoreConfig::config2());
        assert_eq!(fig.rows.len(), 2 * 5 * 2);
        let qw_int: Vec<&Fig2Row> = fig
            .rows
            .iter()
            .filter(|r| r.interleave == "quad-word" && r.group == Group::Int)
            .collect();
        assert!(
            qw_int.last().unwrap().filtered.mean >= qw_int.first().unwrap().filtered.mean,
            "16 YLAs must filter at least as much as 1"
        );
        assert!(!fig.render().is_empty());
    }

    #[test]
    fn fig4_reports_all_groups_and_configs() {
        let suite = mini_suite();
        let fig = fig4_on(&suite, &[CoreConfig::config1()]);
        assert_eq!(fig.rows.len(), 2);
        for row in &fig.rows {
            assert!(
                row.lq_savings.mean > 0.5,
                "DMDC must slash LQ energy, got {:?}",
                row.lq_savings
            );
            assert!(
                row.slowdown.mean.abs() < 0.25,
                "slowdown should be small, got {:?}",
                row.slowdown
            );
        }
        assert!(fig.render().contains("config1"));
    }

    #[test]
    fn window_and_replay_tables_have_both_groups() {
        let suite = mini_suite();
        let wt = window_stats_on(&suite, &CoreConfig::config2(), false);
        assert_eq!(wt.rows.len(), 2);
        let rt = replay_breakdown_on(&suite, &CoreConfig::config2(), false);
        assert_eq!(rt.rows.len(), 2);
        assert!(!wt.render().is_empty());
        assert!(!rt.render().is_empty());
    }

    #[test]
    fn table6_zero_rate_is_the_reference() {
        let suite = mini_suite();
        let t = table6_on(&suite, &CoreConfig::config2(), &[0.0, 10.0]);
        assert_eq!(t.rows.len(), 4);
        for row in t.rows.iter().take(2) {
            assert!((row.rel_window - 1.0).abs() < 1e-9 || row.rel_window == 0.0);
        }
        assert!(t.render().contains("inv/1k"));
    }

    #[test]
    fn sq_filter_potential_is_sane() {
        let suite = mini_suite();
        let p = sq_filter_potential_on(&suite, &CoreConfig::config2());
        for (_, potential, saved, slowdown) in &p.rows {
            assert!((0.0..=1.0).contains(&potential.mean));
            assert!((0.0..=1.0).contains(&saved.mean));
            assert_eq!(slowdown.mean, 0.0, "the SQ filter is timing-neutral");
        }
    }

    #[test]
    fn registry_reduce_matches_typed_path() {
        // The registry entry and the typed `_on` function must agree cell
        // for cell: reduce the same mini-matrix both ways.
        let suite = mini_suite();
        let config = CoreConfig::config2();
        let cells: Vec<CellResult> = run_matrix(&suite, &fig2_variants(&config))
            .into_iter()
            .flatten()
            .collect();
        let report = find_experiment("fig2").unwrap().reduce(&cells);
        assert_eq!(
            report.text(),
            format!("{}\n", fig2_on(&suite, &config).render())
        );
    }
}
