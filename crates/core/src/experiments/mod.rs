//! The declarative experiment pipeline: **plan → run → reduce → emit**.
//!
//! Every paper artifact (Figs. 2–5, Tables 2–6, the ablations) is an
//! [`Experiment`]: a registry entry that *plans* a flat matrix of
//! independent [`RunSpec`] cells at a [`Scale`], has them *run* by the
//! parallel [`Engine`](crate::runner::Engine) — which verifies each cell
//! against the functional emulator and serves unchanged cells from the
//! persistent content-addressed [cell cache](crate::cache) — and then
//! *reduces* the uniform [`CellResult`] records to a typed table,
//! *emitted* as text, JSON or CSV through [`Report`].
//!
//! The `*_on` variants take an explicit workload slice so tests (and
//! impatient users) can run reduced sets; the registry entries plan the
//! full suite at the requested scale. Both funnel through the same
//! variant lists and reducers, so `dmdc experiment fig2` and
//! [`fig2_on`] cannot drift apart.
//!
//! Cells run concurrently across a worker pool, results come back in
//! spec order, and the emulator's reference state is computed once per
//! workload and shared by every cell (see [`crate::runner`]). Output is
//! byte-identical at any worker count, with or without the cache.

use dmdc_energy::StructureGeometry;
use dmdc_isa::Emulator;
use dmdc_ooo::{BaselinePolicy, CoreConfig, MemDepPolicy, SimOptions, Simulator};
use dmdc_workloads::{Group, Scale, Workload};

use crate::cell::{CellError, CellFailure, FailureKind};
use crate::report::{GroupStat, Report};
use crate::runner::{Engine, RunSpec};
use crate::{BloomPolicy, CheckingQueuePolicy, DmdcConfig, DmdcPolicy, Interleave, YlaPolicy};

mod defs;

pub use crate::cell::CellResult;
pub use defs::*;

/// Backwards-compatible alias: a "run" is one verified cell.
pub type Run = CellResult;

/// Which dependence-checking design to instantiate for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Conventional CAM load queue.
    Baseline,
    /// Conventional design with POWER4-style coherence searches.
    BaselineCoherent,
    /// YLA filtering in front of the CAM LQ.
    Yla {
        /// Register count.
        regs: u32,
        /// Quad-word (`false`) or cache-line (`true`) interleaving.
        line_interleaved: bool,
    },
    /// Bloom-filter search filtering (\[18\]).
    Bloom {
        /// Filter entries.
        entries: u32,
    },
    /// DMDC with the global end-check register.
    DmdcGlobal,
    /// DMDC with local (per-store) windows.
    DmdcLocal,
    /// Global DMDC with INV-bit coherence support.
    DmdcCoherent,
    /// Global DMDC with the safe-load optimization disabled (ablation).
    DmdcNoSafeLoads,
    /// DMDC with the associative checking queue instead of the table.
    CheckingQueue {
        /// Queue entries.
        entries: u32,
    },
}

impl PolicyKind {
    /// Builds the policy for a machine configuration.
    pub fn build(&self, config: &CoreConfig) -> Box<dyn MemDepPolicy> {
        match *self {
            PolicyKind::Baseline => Box::new(BaselinePolicy::new()),
            PolicyKind::BaselineCoherent => {
                Box::new(BaselinePolicy::with_coherence(config.l2.line_bytes))
            }
            PolicyKind::Yla {
                regs,
                line_interleaved,
            } => {
                let il = if line_interleaved {
                    Interleave::CacheLine(config.l2.line_bytes)
                } else {
                    Interleave::QuadWord
                };
                Box::new(YlaPolicy::new(regs, il))
            }
            PolicyKind::Bloom { entries } => Box::new(BloomPolicy::new(entries)),
            PolicyKind::DmdcGlobal => Box::new(DmdcPolicy::new(DmdcConfig::global(config))),
            PolicyKind::DmdcLocal => Box::new(DmdcPolicy::new(DmdcConfig::local(config))),
            PolicyKind::DmdcCoherent => {
                Box::new(DmdcPolicy::new(DmdcConfig::global(config).with_coherence()))
            }
            PolicyKind::DmdcNoSafeLoads => Box::new(DmdcPolicy::new(
                DmdcConfig::global(config).without_safe_loads(),
            )),
            PolicyKind::CheckingQueue { entries } => {
                Box::new(CheckingQueuePolicy::new(config, entries))
            }
        }
    }

    /// Stable CLI/repro-file token (`dmdc run --policy <token>`); parsed
    /// back by [`PolicyKind::parse_token`].
    pub fn token(&self) -> String {
        match self {
            PolicyKind::Baseline => "baseline".to_string(),
            PolicyKind::BaselineCoherent => "baseline-coherent".to_string(),
            PolicyKind::Yla {
                regs,
                line_interleaved,
            } => {
                if *line_interleaved {
                    format!("yla-line-{regs}")
                } else {
                    format!("yla-{regs}")
                }
            }
            PolicyKind::Bloom { entries } => format!("bloom-{entries}"),
            PolicyKind::DmdcGlobal => "dmdc-global".to_string(),
            PolicyKind::DmdcLocal => "dmdc-local".to_string(),
            PolicyKind::DmdcCoherent => "dmdc-coherent".to_string(),
            PolicyKind::DmdcNoSafeLoads => "dmdc-no-safe-loads".to_string(),
            PolicyKind::CheckingQueue { entries } => format!("queue-{entries}"),
        }
    }

    /// Parses a [`PolicyKind::token`] (plus the `dmdc` alias for
    /// `dmdc-global`).
    pub fn parse_token(name: &str) -> Result<PolicyKind, String> {
        Ok(match name {
            "baseline" => PolicyKind::Baseline,
            "baseline-coherent" => PolicyKind::BaselineCoherent,
            "dmdc-global" | "dmdc" => PolicyKind::DmdcGlobal,
            "dmdc-local" => PolicyKind::DmdcLocal,
            "dmdc-coherent" => PolicyKind::DmdcCoherent,
            "dmdc-no-safe-loads" => PolicyKind::DmdcNoSafeLoads,
            other => {
                if let Some(regs) = other.strip_prefix("yla-line-") {
                    let regs: u32 = regs
                        .parse()
                        .map_err(|_| format!("bad YLA count in `{other}`"))?;
                    PolicyKind::Yla {
                        regs,
                        line_interleaved: true,
                    }
                } else if let Some(regs) = other.strip_prefix("yla-") {
                    let regs: u32 = regs
                        .parse()
                        .map_err(|_| format!("bad YLA count in `{other}`"))?;
                    PolicyKind::Yla {
                        regs,
                        line_interleaved: false,
                    }
                } else if let Some(entries) = other.strip_prefix("bloom-") {
                    let entries: u32 = entries
                        .parse()
                        .map_err(|_| format!("bad bloom size in `{other}`"))?;
                    PolicyKind::Bloom { entries }
                } else if let Some(entries) = other.strip_prefix("queue-") {
                    let entries: u32 = entries
                        .parse()
                        .map_err(|_| format!("bad queue size in `{other}`"))?;
                    PolicyKind::CheckingQueue { entries }
                } else {
                    return Err(format!("unknown policy `{other}` (see `dmdc list`)"));
                }
            }
        })
    }

    /// The energy-model geometry matching this design.
    pub fn geometry(&self, config: &CoreConfig) -> StructureGeometry {
        match *self {
            PolicyKind::Baseline | PolicyKind::BaselineCoherent => {
                StructureGeometry::conventional(config)
            }
            PolicyKind::Yla { regs, .. } => StructureGeometry::yla_filtered(config, regs),
            PolicyKind::Bloom { entries } => StructureGeometry::bloom_filtered(config, entries),
            PolicyKind::DmdcGlobal | PolicyKind::DmdcLocal | PolicyKind::DmdcNoSafeLoads => {
                StructureGeometry::dmdc(config, 8)
            }
            PolicyKind::DmdcCoherent => StructureGeometry::dmdc(config, 16),
            PolicyKind::CheckingQueue { entries } => {
                StructureGeometry::checking_queue(config, entries, 8)
            }
        }
    }
}

/// One machine/policy/options combination to run every workload under —
/// one column of an experiment's cell matrix.
pub type Variant = (CoreConfig, PolicyKind, SimOptions);

/// An experiment's planned cell matrix: every workload crossed with every
/// variant. The flat spec list is variant-major (all workloads under
/// variant 0, then variant 1, ...), matching the chunk layout reducers
/// consume.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The workload set (one oracle emulation each, shared across
    /// variants).
    pub workloads: Vec<Workload>,
    /// The variants, in output order.
    pub variants: Vec<Variant>,
}

impl Plan {
    /// Plans `variants` over `workloads`. Variants that do not carry
    /// their own sampling spec pick up the process-wide default
    /// ([`crate::runner::default_sampling`]) here — before any spec
    /// description, cache key or journal key is derived from them.
    pub fn matrix(workloads: Vec<Workload>, mut variants: Vec<Variant>) -> Plan {
        let default_spec = crate::runner::default_sampling();
        if default_spec.enabled() {
            for (_, _, opts) in &mut variants {
                if !opts.sampling.enabled() {
                    opts.sampling = default_spec;
                }
            }
        }
        Plan {
            workloads,
            variants,
        }
    }

    /// Total number of cells (`workloads × variants`).
    pub fn cell_count(&self) -> usize {
        self.workloads.len() * self.variants.len()
    }

    /// The flat, variant-major spec list.
    pub fn specs(&self) -> Vec<RunSpec> {
        self.variants
            .iter()
            .flat_map(|(config, kind, opts)| {
                (0..self.workloads.len()).map(move |i| RunSpec {
                    workload: i,
                    config: config.clone(),
                    policy: kind.clone(),
                    opts: *opts,
                })
            })
            .collect()
    }
}

/// One paper artifact as a registry entry: plans its cell matrix at a
/// scale and reduces the resulting cells to a [`Report`].
///
/// `reduce` is a pure function of the cells (plus the entry's own
/// constants), so cells may come from live simulation, the parallel
/// worker pool or the persistent cell cache interchangeably.
pub trait Experiment: Sync {
    /// Stable registry id (`"fig2"`, `"table6"`, `"ablation-queue"`, ...).
    fn id(&self) -> &'static str;

    /// Which paper table/figure/section this regenerates.
    fn paper_ref(&self) -> &'static str;

    /// The full cell matrix at `scale`.
    fn plan(&self, scale: Scale) -> Plan;

    /// Reduces cells (flat, in [`Plan::specs`] order) to the rendered
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not have the planned matrix shape.
    fn reduce(&self, cells: &[CellResult]) -> Report;
}

/// Every paper artifact, in the order `dmdc experiment all` prints them.
pub fn registry() -> &'static [&'static dyn Experiment] {
    &[
        &Fig2Exp,
        &Fig3Exp,
        &Fig4Exp,
        &Fig5Exp,
        &Table2Exp,
        &Table3Exp,
        &Table4Exp,
        &Table5Exp,
        &Table6Exp,
        &MulticoreExp,
        &CheckingQueueAblationExp,
        &TableSizeAblationExp,
        &SafeLoadAblationExp,
        &SqFilterAblationExp,
        &YlaEnergyExp,
    ]
}

/// The ablation subset (the historical `dmdc experiment ablations`
/// output, in order).
pub const ABLATION_IDS: [&str; 5] = [
    "ablation-queue",
    "ablation-table-size",
    "ablation-safe-loads",
    "ablation-sq-filter",
    "yla-energy",
];

/// Looks up a registry entry by id.
pub fn find_experiment(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.id() == id)
}

/// Runs one registry experiment end to end (plan → run → reduce) at the
/// given scale, using the process-default engine (worker count, cell
/// cache, journal, retry policy).
///
/// Cells that exhaust their retries are quarantined: the returned
/// [`Report`] then carries the structured [`CellFailure`] records instead
/// of the reduced tables (a partial matrix cannot be reduced honestly),
/// and the process lives on to run the remaining experiments.
pub fn run_experiment(exp: &dyn Experiment, scale: Scale) -> Report {
    let plan = exp.plan(scale);
    let (cells, failures) = execute_plan(&plan);
    if failures.is_empty() {
        let cells: Vec<CellResult> = cells
            .into_iter()
            .map(|c| c.expect("no failures, so every cell is present"))
            .collect();
        exp.reduce(&cells)
    } else {
        let mut report = Report::new(exp.id());
        for f in failures {
            report.push_failure(f);
        }
        report
    }
}

/// Executes a plan's cells through one engine, logging the engine's
/// sharing counters to stderr (stdout stays reserved for the tables).
/// Failed cells come back as `None` slots plus their [`CellFailure`]s.
fn execute_plan(plan: &Plan) -> (Vec<Option<CellResult>>, Vec<CellFailure>) {
    let engine = Engine::new(&plan.workloads);
    let specs = plan.specs();
    let (cells, failures) = engine.run_all_recovered(&specs);
    log_engine(&engine, specs.len());
    (cells, failures)
}

fn log_engine(engine: &Engine<'_>, cells: usize) {
    let (hits, misses) = engine.oracle_stats();
    eprintln!(
        "[runner] jobs={} cells={cells} oracle: {misses} emulations, {hits} cache hits",
        engine.jobs(),
    );
    if let Some(c) = engine.cache_counters() {
        eprintln!(
            "[cache] cells: {} hits, {} misses, {} stored",
            c.hits, c.misses, c.stores
        );
    }
}

/// One verified simulation cell. See [`CellResult`]; this free function
/// is the single execution funnel both the serial path and the engine's
/// workers use.
///
/// Every way the cell can go wrong — a simulator error, a workload the
/// oracle cannot verify, an architectural-state divergence, an auditor
/// violation — comes back as a structured [`CellError`] instead of a
/// panic, so the engine's fault-tolerant layer can retry or quarantine
/// the cell without killing the process.
pub(crate) fn execute_verified(
    workload: &Workload,
    config: &CoreConfig,
    policy_kind: &PolicyKind,
    mut opts: SimOptions,
    oracle: impl FnOnce() -> Result<(u64, u64), String>,
) -> Result<CellResult, CellError> {
    if crate::runner::profile_enabled() {
        opts.profile = true;
    }
    if opts.sampling.enabled() {
        return crate::sampling::execute_sampled(workload, config, policy_kind, opts, oracle);
    }
    execute_exact(workload, config, policy_kind, opts, oracle)
}

/// The exact (every-instruction) execution path: one detailed simulation,
/// verified against the emulator reference when it halts. Also the
/// sampling engine's fallback for populations too small to sample.
pub(crate) fn execute_exact(
    workload: &Workload,
    config: &CoreConfig,
    policy_kind: &PolicyKind,
    opts: SimOptions,
    oracle: impl FnOnce() -> Result<(u64, u64), String>,
) -> Result<CellResult, CellError> {
    let policy = policy_kind.build(config);
    let mut sim = Simulator::new(&workload.program, config.clone(), policy);
    let result = sim.run(opts).map_err(|e| {
        CellError::new(
            FailureKind::SimError,
            format!(
                "{} under {policy_kind:?} on {}: {e}",
                workload.name, config.name
            ),
        )
    })?;
    if result.halted {
        let (expected, _retired) =
            oracle().map_err(|e| CellError::new(FailureKind::OracleMustHalt, e))?;
        if result.checksum != expected {
            return Err(CellError::new(
                FailureKind::StateDivergence,
                format!(
                    "golden-state mismatch: {} under {policy_kind:?} on {}: simulated {:#x}, emulator {expected:#x}",
                    workload.name, config.name, result.checksum
                ),
            ));
        }
    }
    if let Some(audit) = &result.audit {
        if !audit.is_clean() {
            return Err(CellError::new(
                FailureKind::Audit,
                format!(
                    "invariant auditor: {} under {policy_kind:?} on {}:\n{}",
                    workload.name,
                    config.name,
                    audit.render()
                ),
            ));
        }
    }
    if let Some(profile) = &result.profile {
        crate::runner::record_profile(profile, &result.stats);
    }
    Ok(CellResult {
        workload: workload.name.to_string(),
        group: workload.group,
        stats: result.stats,
    })
}

/// Runs `workload` under `policy_kind` on `config`, verifying the final
/// architectural state against the functional emulator when the run halts.
///
/// This is the standalone single-run entry point (CLI `run`, correctness
/// tests). Experiments instead batch their cells through
/// [`crate::runner::Engine`], which memoizes the emulator oracle across
/// cells and consults the cell cache; here each call emulates afresh and
/// nothing is cached.
///
/// # Panics
///
/// Panics if the simulation's architectural state diverges from the
/// emulator — a standalone caller has nowhere to surface a structured
/// failure, so this stays fatal. The engine's
/// [`try_run_cell`](crate::runner::Engine::try_run_cell) path returns the
/// same condition as a [`CellFailure`](crate::cell::CellFailure) instead.
pub fn run_workload(
    workload: &Workload,
    config: &CoreConfig,
    policy_kind: &PolicyKind,
    opts: SimOptions,
) -> CellResult {
    execute_verified(workload, config, policy_kind, opts, || {
        let mut emu = Emulator::new(&workload.program);
        let retired = emu
            .run(u64::MAX)
            .map_err(|e| format!("{} must halt under emulation: {e}", workload.name))?;
        Ok((emu.state_checksum(), retired))
    })
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Aggregates `f` over the cells of one suite group.
pub(crate) fn group_stat<F: Fn(&CellResult) -> f64>(
    cells: &[CellResult],
    group: Group,
    f: F,
) -> GroupStat {
    let vals: Vec<f64> = cells.iter().filter(|r| r.group == group).map(f).collect();
    GroupStat::of(&vals)
}

/// Like [`group_stat`], but also propagates per-cell sampling CIs: `ci`
/// extracts the 95% half-width the sampling engine attached to a sampled
/// cell (exact cells return `None` and contribute zero uncertainty). The
/// group stat carries a CI iff at least one cell was sampled, so exact
/// runs render byte-identically to before.
pub(crate) fn group_stat_ci<F, C>(cells: &[CellResult], group: Group, f: F, ci: C) -> GroupStat
where
    F: Fn(&CellResult) -> f64,
    C: Fn(&CellResult) -> Option<f64>,
{
    let picked: Vec<&CellResult> = cells.iter().filter(|r| r.group == group).collect();
    let vals: Vec<f64> = picked.iter().map(|r| f(r)).collect();
    let cis: Vec<Option<f64>> = picked.iter().map(|r| ci(r)).collect();
    GroupStat::of_ci(&vals, &cis)
}

/// Runs every workload under each variant through one shared engine,
/// returning one chunk of cells per variant, each in workload order. The
/// `_on` experiment functions use this; registry entries go through
/// [`run_experiment`], which executes the identical matrix as one flat
/// plan.
///
/// # Panics
///
/// Panics if any cell is quarantined — the typed `*_on` entry points
/// return bare tables with nowhere to surface structured failures.
pub(crate) fn run_matrix(workloads: &[Workload], variants: &[Variant]) -> Vec<Vec<CellResult>> {
    let plan = Plan::matrix(workloads.to_vec(), variants.to_vec());
    let (cells, failures) = execute_plan(&plan);
    if let Some(f) = failures.first() {
        panic!(
            "cell {} quarantined after {} attempts: [{}] {}",
            f.workload, f.attempts, f.kind, f.detail
        );
    }
    let cells: Vec<CellResult> = cells
        .into_iter()
        .map(|c| c.expect("no failures, so every cell is present"))
        .collect();
    chunk_by_variants(&cells, variants.len())
}

/// Splits a flat, variant-major cell list into per-variant chunks.
///
/// # Panics
///
/// Panics if `cells` does not divide evenly into `n_variants` chunks.
pub(crate) fn chunk_by_variants(cells: &[CellResult], n_variants: usize) -> Vec<Vec<CellResult>> {
    assert!(n_variants > 0, "an experiment needs at least one variant");
    assert_eq!(
        cells.len() % n_variants,
        0,
        "{} cells do not form a {n_variants}-variant matrix",
        cells.len()
    );
    let per = cells.len() / n_variants;
    cells.chunks(per).map(<[CellResult]>::to_vec).collect()
}
