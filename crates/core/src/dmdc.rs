//! Delayed Memory Dependence Checking (paper §4): the associative load
//! queue is gone. YLA registers classify stores at resolve time; unsafe
//! stores mark a hashed *checking table* at commit; loads committing inside
//! the checking window index the table and replay on a hit.
//!
//! The implementation carries the paper's full design space:
//!
//! * **global vs. local** end-of-window tracking (§4.4): global updates the
//!   `end_check` register at store *resolve*, merging overlapping windows;
//!   local remembers each store's boundary and publishes it at *commit*;
//! * **safe loads** (§4.2): a load that issued with every older store
//!   address resolved bypasses the commit-time check;
//! * **4-bit sub-quad-word bitmaps** (§4.4) to discriminate access widths;
//! * **INV bits** (§4.3) for write-serialization under external
//!   invalidations, with the second cache-line-interleaved YLA set.
//!
//! Every replay is classified against the paper's Table 3 taxonomy using
//! the simulator's value oracle plus per-entry marker metadata (which
//! stores marked the entry, when they resolved, and where their own window
//! ended).

use std::collections::BTreeMap;

use dmdc_types::{Addr, Age, Cycle, MemSpan};

use dmdc_ooo::{
    CheckOutcome, CommitInfo, CommitKind, CoreConfig, LoadQueue, MemDepPolicy, PolicyCtx,
    ReplayKind, StoreResolution,
};

use crate::yla::{Interleave, YlaBank};

/// Configuration of a [`DmdcPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmdcConfig {
    /// Checking-table entries (a power of two).
    pub table_entries: u32,
    /// Quad-word-interleaved YLA registers (the paper uses 8).
    pub yla_regs: u32,
    /// Cache-line-interleaved YLA registers (coherence support; 8 in the
    /// paper).
    pub line_yla_regs: u32,
    /// Cache-line size for the second YLA set and invalidation marking.
    pub line_bytes: u64,
    /// `true` = local DMDC (per-store windows published at commit);
    /// `false` = global (shared register updated at resolve).
    pub local_windows: bool,
    /// Whether the safe-load optimization is enabled (§4.2). Disabling it
    /// roughly doubles false replays per the paper — kept as a knob for the
    /// ablation bench.
    pub safe_loads: bool,
    /// Whether INV-bit coherence support is active. Must be `true` to run
    /// with injected invalidations.
    pub coherence: bool,
}

impl DmdcConfig {
    /// The paper's default (global) configuration for a machine config:
    /// its checking-table size, 8+8 YLA registers, safe loads on.
    pub fn global(core: &CoreConfig) -> DmdcConfig {
        DmdcConfig {
            table_entries: core.checking_table_entries,
            yla_regs: 8,
            line_yla_regs: 8,
            line_bytes: core.l2.line_bytes,
            local_windows: false,
            safe_loads: true,
            coherence: false,
        }
    }

    /// The local-window variant (§4.4).
    pub fn local(core: &CoreConfig) -> DmdcConfig {
        DmdcConfig {
            local_windows: true,
            ..DmdcConfig::global(core)
        }
    }

    /// Enables INV-bit coherence support (consuming builder).
    pub fn with_coherence(mut self) -> DmdcConfig {
        self.coherence = true;
        self
    }

    /// Disables the safe-load optimization (consuming builder, for the
    /// ablation study).
    pub fn without_safe_loads(mut self) -> DmdcConfig {
        self.safe_loads = false;
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Marker {
    age: Age,
    span: MemSpan,
    resolve_cycle: Cycle,
    own_end: Age,
}

#[derive(Debug, Clone, Default)]
struct TableEntry {
    gen: u64,
    /// Store-set bitmap (the WRT bits of §4.3, one per half-word).
    wrt: u8,
    /// Invalidation bitmap (INV bits).
    inv: u8,
    /// INV bits promoted to WRT by a first load (§4.3).
    wrt_inv: u8,
    /// Classification metadata: which stores marked this entry.
    markers: Vec<Marker>,
}

#[derive(Debug, Clone, Copy)]
struct PendingStore {
    span: MemSpan,
    own_end: Age,
    resolve_cycle: Cycle,
}

/// The DMDC policy. See the module docs for the design; construct with
/// [`DmdcPolicy::new`] from a [`DmdcConfig`].
///
/// # Examples
///
/// ```
/// use dmdc_core::{DmdcConfig, DmdcPolicy};
/// use dmdc_ooo::{CoreConfig, MemDepPolicy};
///
/// let p = DmdcPolicy::new(DmdcConfig::global(&CoreConfig::config2()));
/// assert!(!p.needs_associative_lq(), "DMDC's LQ is a FIFO of hash keys");
/// ```
#[derive(Debug, Clone)]
pub struct DmdcPolicy {
    cfg: DmdcConfig,
    qw_ylas: YlaBank,
    line_ylas: YlaBank,
    table: Vec<TableEntry>,
    gen: u64,
    active: bool,
    end_check: Age,
    pending: BTreeMap<Age, PendingStore>,
    cur_window_stores: u64,
    last_commit_age: Age,
    name: String,
}

impl DmdcPolicy {
    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if table or register counts are not powers of two.
    pub fn new(cfg: DmdcConfig) -> DmdcPolicy {
        assert!(
            cfg.table_entries.is_power_of_two(),
            "checking table must be a power of two"
        );
        let name = format!(
            "dmdc-{}-{}{}",
            if cfg.local_windows { "local" } else { "global" },
            cfg.table_entries,
            if cfg.coherence { "-coh" } else { "" },
        );
        DmdcPolicy {
            qw_ylas: YlaBank::new(cfg.yla_regs, Interleave::QuadWord),
            line_ylas: YlaBank::new(cfg.line_yla_regs, Interleave::CacheLine(cfg.line_bytes)),
            table: vec![TableEntry::default(); cfg.table_entries as usize],
            gen: 1,
            active: false,
            end_check: Age::OLDEST,
            pending: BTreeMap::new(),
            cur_window_stores: 0,
            last_commit_age: Age::OLDEST,
            name,
            cfg,
        }
    }

    #[inline]
    fn index(&self, addr: Addr) -> usize {
        (addr.quad_word() as usize) & (self.table.len() - 1)
    }

    /// Access an entry, lazily resetting it if it belongs to a cleared
    /// generation (the flash-clear implementation).
    fn entry_mut(&mut self, idx: usize) -> &mut TableEntry {
        let gen = self.gen;
        let e = &mut self.table[idx];
        if e.gen != gen {
            e.gen = gen;
            e.wrt = 0;
            e.inv = 0;
            e.wrt_inv = 0;
            e.markers.clear();
        }
        e
    }

    fn activate(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.active = true;
        self.cur_window_stores = 0;
        ctx.stats.checking_windows += 1;
    }

    fn terminate(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.active = false;
        self.gen += 1; // flash-clears the table (and its markers)
        ctx.energy.table_clears += 1;
        if self.cur_window_stores == 1 {
            ctx.stats.single_store_windows += 1;
        }
        self.end_check = Age::OLDEST;
    }

    fn mark_table(&mut self, ctx: &mut PolicyCtx<'_>, age: Age, ps: PendingStore) {
        let idx = self.index(ps.span.addr);
        let marker = Marker {
            age,
            span: ps.span,
            resolve_cycle: ps.resolve_cycle,
            own_end: ps.own_end,
        };
        let e = self.entry_mut(idx);
        e.wrt |= ps.span.quad_word_bitmap();
        e.markers.push(marker);
        ctx.energy.table_writes += 1;
    }

    /// Table 3 taxonomy. Called on a WRT hit; `info.value_correct` is the
    /// simulator's oracle.
    fn classify(&self, info: &CommitInfo, idx: usize) -> ReplayKind {
        if !info.value_correct {
            return ReplayKind::TrueViolation;
        }
        let span = info.span.expect("loads carry a span");
        let lbm = span.quad_word_bitmap();
        let e = &self.table[idx];
        debug_assert_eq!(e.gen, self.gen);
        let candidates: Vec<&Marker> = e
            .markers
            .iter()
            .filter(|m| m.span.quad_word_bitmap() & lbm != 0)
            .collect();
        debug_assert!(!candidates.is_empty(), "a WRT hit implies a marking store");
        debug_assert!(
            candidates.iter().all(|m| m.age.is_older_than(info.age)),
            "marking stores committed before the load, so they are older"
        );
        let in_own_window = |m: &&Marker| info.age <= m.own_end;
        let addr_match: Vec<&&Marker> = candidates
            .iter()
            .filter(|m| m.span.overlaps(span))
            .collect();
        if !addr_match.is_empty() {
            // Value was correct, so this is the timing approximation at
            // work (a silent store lands here too; see DESIGN.md).
            if addr_match.iter().any(|m| in_own_window(m)) {
                ReplayKind::FalseAddrMatchX
            } else {
                ReplayKind::FalseAddrMatchY
            }
        } else {
            // Same table entry, different address: the hashing (or bitmap
            // granularity) approximation.
            let issue = info.issue_cycle.expect("committed loads issued");
            if candidates.iter().any(|m| issue < m.resolve_cycle) {
                ReplayKind::FalseHashBefore
            } else if candidates.iter().any(in_own_window) {
                ReplayKind::FalseHashX
            } else {
                ReplayKind::FalseHashY
            }
        }
    }
}

impl MemDepPolicy for DmdcPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn needs_associative_lq(&self) -> bool {
        false
    }

    fn on_load_issue(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        safe: bool,
        _lq: &mut LoadQueue,
    ) -> Option<Age> {
        if safe {
            ctx.stats.safe_loads += 1;
        } else {
            ctx.stats.unsafe_loads += 1;
        }
        self.qw_ylas.update(span.addr, age);
        ctx.energy.yla_writes += 1;
        if self.cfg.coherence {
            self.line_ylas.update(span.addr, age);
            ctx.energy.yla_writes += 1;
        }
        None
    }

    fn on_store_resolve(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        age: Age,
        span: MemSpan,
        _lq: &LoadQueue,
    ) -> StoreResolution {
        ctx.energy.yla_reads += 1;
        let mut safe = self.qw_ylas.is_safe_store(span.addr, age);
        if self.cfg.coherence {
            // Safe if *either* set records only older loads (§4.3).
            ctx.energy.yla_reads += 1;
            safe = safe || self.line_ylas.is_safe_store(span.addr, age);
        }
        if safe {
            ctx.stats.safe_stores += 1;
            return StoreResolution {
                safe: true,
                replay_from: None,
            };
        }
        ctx.stats.unsafe_stores += 1;
        let own_end = self.qw_ylas.value_for(span.addr);
        if !self.cfg.local_windows {
            // Global DMDC: push the shared register forward at issue time.
            self.end_check = self.end_check.max(own_end);
        }
        self.pending.insert(
            age,
            PendingStore {
                span,
                own_end,
                resolve_cycle: ctx.cycle,
            },
        );
        StoreResolution {
            safe: false,
            replay_from: None,
        }
    }

    fn on_commit(&mut self, ctx: &mut PolicyCtx<'_>, info: &CommitInfo) -> CheckOutcome {
        // Strict overshoot: the boundary load never committed (it was
        // squashed), so the window is over before this instruction — this
        // also guarantees a replayed-and-refetched load cannot loop.
        if self.active && info.age.is_younger_than(self.end_check) {
            self.terminate(ctx);
        }
        let mut outcome = CheckOutcome::Ok;
        match info.kind {
            CommitKind::Store => {
                if let Some(ps) = self.pending.remove(&info.age) {
                    if self.cfg.local_windows {
                        // Local DMDC: publish this store's own boundary now.
                        self.end_check = self.end_check.max(ps.own_end);
                    }
                    self.mark_table(ctx, info.age, ps);
                    if !self.active {
                        self.activate(ctx);
                    }
                    self.cur_window_stores += 1;
                    ctx.stats.window_unsafe_stores += 1;
                }
            }
            CommitKind::Load if self.active => {
                ctx.stats.window_loads += 1;
                if info.safe_load {
                    ctx.stats.window_safe_loads += 1;
                }
                let bypass = info.safe_load && self.cfg.safe_loads;
                if bypass {
                    ctx.stats.safe_load_check_bypasses += 1;
                }
                if !bypass || self.cfg.coherence {
                    let span = info.span.expect("loads carry a span");
                    let idx = self.index(span.addr);
                    let lbm = span.quad_word_bitmap();
                    ctx.energy.table_reads += 1;
                    // Lazily reset a stale-generation entry before reading.
                    self.entry_mut(idx);
                    let e = &mut self.table[idx];
                    if !bypass && e.wrt & lbm != 0 {
                        let kind = self.classify(info, idx);
                        ctx.stats.replays.record(kind);
                        outcome = CheckOutcome::Replay;
                    } else if self.cfg.coherence && e.wrt_inv & lbm != 0 {
                        // Second same-location load in the window: enforce
                        // write serialization. Clear the bits so the
                        // refetched load does not loop.
                        e.wrt_inv &= !lbm;
                        e.inv &= !lbm;
                        ctx.stats.replays.record(ReplayKind::Coherence);
                        outcome = CheckOutcome::Replay;
                    } else if self.cfg.coherence && e.inv & lbm != 0 {
                        // First load after the invalidation: promote.
                        e.wrt_inv |= e.inv & lbm;
                        ctx.energy.table_writes += 1;
                    }
                }
            }
            _ => {}
        }
        if self.active {
            ctx.stats.window_instructions += 1;
        }
        if outcome == CheckOutcome::Ok {
            self.last_commit_age = info.age;
        }
        // Inclusive boundary: the end_check load itself is checked above,
        // then the window closes.
        if self.active && !info.age.is_older_than(self.end_check) {
            self.terminate(ctx);
        }
        outcome
    }

    fn on_squash(&mut self, _ctx: &mut PolicyCtx<'_>, youngest_surviving: Age) {
        self.qw_ylas.on_squash(youngest_surviving);
        self.line_ylas.on_squash(youngest_surviving);
        // Unsafe stores younger than the survivor will never commit.
        self.pending
            .retain(|&age, _| !age.is_younger_than(youngest_surviving));
        // The global end_check register is deliberately *not* rolled back:
        // the paper's global design only ever pushes it forward (§4.4).
    }

    fn on_invalidation(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        line_addr: Addr,
        line_bytes: u64,
        _lq: &mut LoadQueue,
    ) -> Option<Age> {
        assert!(
            self.cfg.coherence,
            "DMDC built without coherence support received an invalidation"
        );
        ctx.stats.invalidations += 1;
        ctx.energy.yla_reads += 1;
        let line_end = self.line_ylas.value_for(line_addr);
        if !line_end.is_younger_than(self.last_commit_age) {
            // Every load the line-YLA recorded has already committed: no
            // in-flight pair can violate write serialization.
            return None;
        }
        self.end_check = self.end_check.max(line_end);
        let base = line_addr.align_down(line_bytes);
        for i in 0..(line_bytes / 8) {
            let idx = self.index(base + i * 8);
            let e = self.entry_mut(idx);
            e.inv = 0xF;
            ctx.energy.table_writes += 1;
        }
        if !self.active {
            self.activate(ctx);
        }
        None
    }

    fn audit_self(&self, lq: &LoadQueue) -> Option<String> {
        if let Some((age, span)) = self.qw_ylas.find_uncovered_load(lq) {
            return Some(format!(
                "quad-word YLA under-approximates issued load age {} at {:#x}",
                age.0, span.addr.0
            ));
        }
        if self.cfg.coherence {
            if let Some((age, span)) = self.line_ylas.find_uncovered_load(lq) {
                return Some(format!(
                    "line YLA under-approximates issued load age {} at {:#x}",
                    age.0, span.addr.0
                ));
            }
        }
        // Unsafe stores commit in age order and are removed from `pending`
        // right there — one lingering at or behind the last commit has been
        // dropped by the checking pipeline.
        if let Some((&age, _)) = self.pending.iter().next() {
            if !age.is_younger_than(self.last_commit_age) {
                return Some(format!(
                    "unsafe store age {} still pending at/behind last commit age {}",
                    age.0, self.last_commit_age.0
                ));
            }
        }
        if self.active {
            // The window is open: the table must still carry every marking
            // store's WRT bits (§4.4 — the table never drops an unsafe
            // store inside the window). Markers live in the same entry, so
            // a dropped bit means the bitmap was corrupted, not hashed away.
            for (i, e) in self.table.iter().enumerate() {
                if e.gen != self.gen {
                    continue;
                }
                for m in &e.markers {
                    let bm = m.span.quad_word_bitmap();
                    if e.wrt & bm != bm {
                        return Some(format!(
                            "checking table entry {i} dropped WRT bits {bm:#06b} of store age {}",
                            m.age.0
                        ));
                    }
                }
            }
        }
        None
    }

    fn on_cycle(&mut self, ctx: &mut PolicyCtx<'_>) {
        if self.active {
            ctx.stats.checking_mode_cycles += 1;
        }
    }

    fn has_cycle_hook(&self) -> bool {
        true
    }

    fn on_idle_cycles(&mut self, ctx: &mut PolicyCtx<'_>, n: u64) {
        // `active` cannot change across idle cycles (no other hook fires),
        // so the per-cycle count batches exactly.
        if self.active {
            ctx.stats.checking_mode_cycles += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_ooo::{EnergyCounters, PolicyStats};
    use dmdc_types::AccessSize;

    fn span(addr: u64, bytes: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::from_bytes(bytes).unwrap())
    }

    struct Harness {
        p: DmdcPolicy,
        e: EnergyCounters,
        s: PolicyStats,
        lq: LoadQueue,
        cycle: Cycle,
    }

    impl Harness {
        fn new(cfg: DmdcConfig) -> Harness {
            Harness {
                p: DmdcPolicy::new(cfg),
                e: EnergyCounters::default(),
                s: PolicyStats::default(),
                lq: LoadQueue::new(64),
                cycle: Cycle(0),
            }
        }

        fn small() -> Harness {
            Harness::new(DmdcConfig {
                table_entries: 16,
                yla_regs: 4,
                line_yla_regs: 4,
                line_bytes: 64,
                local_windows: false,
                safe_loads: true,
                coherence: false,
            })
        }

        fn load_issue(&mut self, age: u64, sp: MemSpan, safe: bool) {
            self.cycle.tick();
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.e,
                stats: &mut self.s,
            };
            assert_eq!(
                self.p
                    .on_load_issue(&mut ctx, Age(age), sp, safe, &mut self.lq),
                None
            );
        }

        fn store_resolve(&mut self, age: u64, sp: MemSpan) -> bool {
            self.cycle.tick();
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.e,
                stats: &mut self.s,
            };
            let r = self.p.on_store_resolve(&mut ctx, Age(age), sp, &self.lq);
            assert_eq!(r.replay_from, None, "DMDC never replays at resolve");
            r.safe
        }

        fn commit_store(&mut self, age: u64, sp: MemSpan) {
            self.cycle.tick();
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.e,
                stats: &mut self.s,
            };
            let info = CommitInfo {
                age: Age(age),
                kind: CommitKind::Store,
                span: Some(sp),
                safe_load: false,
                value_correct: true,
                issue_cycle: Some(self.cycle),
            };
            assert_eq!(self.p.on_commit(&mut ctx, &info), CheckOutcome::Ok);
        }

        fn commit_load(
            &mut self,
            age: u64,
            sp: MemSpan,
            safe: bool,
            value_correct: bool,
            issued_at: u64,
        ) -> CheckOutcome {
            self.cycle.tick();
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.e,
                stats: &mut self.s,
            };
            let info = CommitInfo {
                age: Age(age),
                kind: CommitKind::Load,
                span: Some(sp),
                safe_load: safe,
                value_correct,
                issue_cycle: Some(Cycle(issued_at)),
            };
            self.p.on_commit(&mut ctx, &info)
        }

        fn commit_other(&mut self, age: u64) {
            self.cycle.tick();
            let mut ctx = PolicyCtx {
                cycle: self.cycle,
                energy: &mut self.e,
                stats: &mut self.s,
            };
            let info = CommitInfo {
                age: Age(age),
                kind: CommitKind::Other,
                span: None,
                safe_load: false,
                value_correct: true,
                issue_cycle: None,
            };
            assert_eq!(self.p.on_commit(&mut ctx, &info), CheckOutcome::Ok);
        }
    }

    #[test]
    fn safe_store_skips_everything() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 8), false);
        assert!(h.store_resolve(11, span(0x100, 8)), "younger store is safe");
        h.commit_store(11, span(0x100, 8));
        assert!(!h.p.active, "safe stores never open a window");
        assert_eq!(h.e.table_writes, 0);
    }

    #[test]
    fn premature_load_replays_at_commit() {
        let mut h = Harness::small();
        // Load age 10 issues to 0x100 before store age 5 resolves.
        h.load_issue(10, span(0x100, 8), false);
        assert!(
            !h.store_resolve(5, span(0x100, 8)),
            "younger load issued: unsafe"
        );
        // Program order commits: store 5 first (opens the window)...
        h.commit_store(5, span(0x100, 8));
        assert!(h.p.active);
        // ...intervening instruction...
        h.commit_other(7);
        assert!(h.p.active, "window extends to the load");
        // ...then the stale load must replay.
        let out = h.commit_load(10, span(0x100, 8), false, false, 1);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(h.s.replays.true_violation, 1);
    }

    #[test]
    fn window_terminates_at_end_check_and_clears_table() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 8), false);
        h.store_resolve(5, span(0x100, 8));
        h.commit_store(5, span(0x100, 8));
        // A correct-value load at the boundary: false replay (addr match).
        let out = h.commit_load(10, span(0x100, 8), false, true, 99);
        assert_eq!(
            out,
            CheckOutcome::Replay,
            "table hit replays even when value was fine"
        );
        assert!(h.s.replays.false_total() >= 1);
        // The refetched load gets a fresh, younger age; the window has
        // terminated (strict overshoot) and the table is clear.
        let out = h.commit_load(20, span(0x100, 8), false, true, 100);
        assert_eq!(out, CheckOutcome::Ok, "no livelock after replay");
        assert!(!h.p.active);
        assert_eq!(h.e.table_clears, 1);
    }

    #[test]
    fn safe_loads_bypass_the_check() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 8), false);
        h.store_resolve(5, span(0x100, 8));
        h.commit_store(5, span(0x100, 8));
        // A *safe* load to the same address sails through.
        let out = h.commit_load(9, span(0x100, 8), true, true, 50);
        assert_eq!(out, CheckOutcome::Ok);
        assert_eq!(h.s.safe_load_check_bypasses, 1);
        assert_eq!(h.e.table_reads, 0, "bypass saves the table read");
    }

    #[test]
    fn disabled_safe_loads_still_make_progress() {
        let cfg = DmdcConfig {
            table_entries: 16,
            yla_regs: 4,
            line_yla_regs: 4,
            line_bytes: 64,
            local_windows: false,
            safe_loads: false,
            coherence: false,
        };
        let mut h = Harness::new(cfg);
        h.load_issue(10, span(0x100, 8), false);
        h.store_resolve(5, span(0x100, 8));
        h.commit_store(5, span(0x100, 8));
        let out = h.commit_load(10, span(0x100, 8), true, true, 50);
        assert_eq!(
            out,
            CheckOutcome::Replay,
            "without the optimization, safe loads replay too"
        );
        // Refetched with a fresh age: overshoot terminates the window first.
        let out = h.commit_load(21, span(0x100, 8), true, true, 51);
        assert_eq!(out, CheckOutcome::Ok);
    }

    #[test]
    fn bitmap_discriminates_widths() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 2), false);
        h.store_resolve(5, span(0x104, 2));
        h.commit_store(5, span(0x104, 2));
        // Same quad word, disjoint half-words: no replay.
        let out = h.commit_load(9, span(0x100, 2), false, true, 50);
        assert_eq!(out, CheckOutcome::Ok, "bitmaps keep disjoint halves apart");
        // Overlapping half-word does hit.
        h.load_issue(30, span(0x104, 2), false);
        h.store_resolve(25, span(0x104, 2));
        h.commit_store(25, span(0x104, 2));
        let out = h.commit_load(30, span(0x104, 2), false, true, 51);
        assert_eq!(out, CheckOutcome::Replay);
    }

    #[test]
    fn hash_conflicts_classified_as_such() {
        let mut h = Harness::small(); // 16-entry table: qw 0 and qw 16 collide
        let a = span(0x100, 8); // qw 0x20
        let b = span(0x100 + 16 * 8, 8); // qw 0x30 -> same index mod 16
        assert_eq!(
            h.p.index(a.addr),
            h.p.index(b.addr),
            "test requires a collision"
        );
        h.load_issue(10, a, false);
        h.store_resolve(5, b);
        h.commit_store(5, b);
        let out = h.commit_load(10, a, false, true, 99);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(
            h.s.replays.false_hash_x + h.s.replays.false_hash_y + h.s.replays.false_hash_before,
            1
        );
        assert_eq!(h.s.replays.false_addr_x + h.s.replays.false_addr_y, 0);
    }

    #[test]
    fn hash_before_vs_after_classification() {
        let mut h = Harness::small();
        let a = span(0x100, 8);
        let b = span(0x100 + 16 * 8, 8);
        h.load_issue(10, a, false);
        // Store resolves at some cycle; the load issued earlier (cycle 1).
        h.store_resolve(5, b);
        h.commit_store(5, b);
        let out = h.commit_load(10, a, false, true, 1);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(
            h.s.replays.false_hash_before, 1,
            "load issued before the store resolved"
        );
    }

    #[test]
    fn merged_windows_classified_as_y() {
        let mut h = Harness::small();
        // Store S1 (age 5) conflicts with load L1 (age 10): own window ends at 10.
        h.load_issue(10, span(0x200, 8), false);
        h.store_resolve(5, span(0x200, 8));
        // Store S2 (age 12) conflicts with load L2 (age 20): pushes the
        // global end_check to 20.
        h.load_issue(20, span(0x300, 8), false);
        h.store_resolve(12, span(0x300, 8));
        h.commit_store(5, span(0x200, 8));
        h.commit_load(10, span(0x200, 8), true, true, 0); // safe: bypasses
        h.commit_store(12, span(0x300, 8));
        // Load age 15 to S1's address: outside S1's own window (ends at 10)
        // but inside the merged one. Issued after S1 resolved.
        let out = h.commit_load(15, span(0x200, 8), false, true, 1_000);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(h.s.replays.false_addr_y, 1, "{:?}", h.s.replays);
    }

    #[test]
    fn local_windows_shrink_the_merge() {
        let core = CoreConfig::config2();
        let mut h = Harness::new(DmdcConfig {
            table_entries: 16,
            yla_regs: 4,
            ..DmdcConfig::local(&core)
        });
        // Same scenario as merged_windows_classified_as_y, but local DMDC
        // publishes S1's boundary (10) at S1's commit; S2 has not committed
        // yet, so the window closes at age 10 and the age-15 load escapes.
        h.load_issue(10, span(0x200, 8), false);
        h.store_resolve(5, span(0x200, 8));
        h.load_issue(20, span(0x300, 8), false);
        h.store_resolve(12, span(0x300, 8));
        h.commit_store(5, span(0x200, 8));
        h.commit_load(10, span(0x200, 8), true, true, 0);
        assert!(!h.p.active, "local window closed at its own boundary");
        let out = h.commit_load(15, span(0x200, 8), false, true, 1_000);
        assert_eq!(
            out,
            CheckOutcome::Ok,
            "no false replay outside the local window"
        );
        assert_eq!(h.s.replays.false_total(), 0);
    }

    #[test]
    fn squash_discards_pending_stores_and_repairs_ylas() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 8), false);
        h.store_resolve(5, span(0x100, 8));
        {
            let mut ctx = PolicyCtx {
                cycle: h.cycle,
                energy: &mut h.e,
                stats: &mut h.s,
            };
            h.p.on_squash(&mut ctx, Age(4));
        }
        // The squashed store never commits; committing past it is fine.
        h.commit_other(30);
        assert!(!h.p.active, "squashed unsafe store never opened a window");
        // YLA repaired to the survivor age: a store at age 6 is now safe.
        assert!(h.store_resolve(6, span(0x100, 8)));
    }

    #[test]
    fn invalidation_flow_enforces_write_serialization() {
        let core = CoreConfig::config2();
        let mut h = Harness::new(
            DmdcConfig {
                table_entries: 64,
                yla_regs: 4,
                line_yla_regs: 4,
                line_bytes: 64,
                ..DmdcConfig::global(&core)
            }
            .with_coherence(),
        );
        // Two loads to the same line in flight; invalidation in between.
        h.load_issue(10, span(0x1000, 8), true);
        h.load_issue(12, span(0x1008, 8), true);
        {
            let mut ctx = PolicyCtx {
                cycle: h.cycle,
                energy: &mut h.e,
                stats: &mut h.s,
            };
            let r = h.p.on_invalidation(&mut ctx, Addr(0x1000), 64, &mut h.lq);
            assert_eq!(r, None);
        }
        assert!(h.p.active, "invalidation opens a checking window");
        // First load commits: INV promotes to WRT, no replay (safe-load
        // bypass does not protect against coherence checks).
        let out = h.commit_load(10, span(0x1000, 8), true, true, 1);
        assert_eq!(out, CheckOutcome::Ok);
        // Second load to the same location: replay.
        let out = h.commit_load(12, span(0x1000, 8), true, true, 2);
        assert_eq!(out, CheckOutcome::Replay);
        assert_eq!(h.s.replays.coherence, 1);
    }

    #[test]
    fn invalidation_with_no_inflight_loads_is_ignored() {
        let core = CoreConfig::config2();
        let mut h = Harness::new(DmdcConfig::global(&core).with_coherence());
        h.commit_other(50); // last_commit_age = 50
        {
            let mut ctx = PolicyCtx {
                cycle: h.cycle,
                energy: &mut h.e,
                stats: &mut h.s,
            };
            h.p.on_invalidation(&mut ctx, Addr(0x1000), 128, &mut h.lq);
        }
        assert!(!h.p.active, "no recorded in-flight load: nothing to check");
    }

    #[test]
    fn window_stats_accumulate() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 8), false);
        h.store_resolve(5, span(0x100, 8));
        h.commit_store(5, span(0x100, 8));
        h.commit_other(6);
        h.commit_other(7);
        h.commit_load(9, span(0x900, 8), true, true, 3);
        h.commit_load(10, span(0x100, 8), true, true, 3); // safe: bypass, terminates window
        assert_eq!(h.s.checking_windows, 1);
        assert_eq!(h.s.single_store_windows, 1);
        assert_eq!(h.s.window_instructions, 5);
        assert_eq!(h.s.window_loads, 2);
        assert_eq!(h.s.window_safe_loads, 2);
        assert!(!h.p.active);
    }

    #[test]
    fn checking_mode_cycles_counted() {
        let mut h = Harness::small();
        h.load_issue(10, span(0x100, 8), false);
        h.store_resolve(5, span(0x100, 8));
        h.commit_store(5, span(0x100, 8));
        for _ in 0..4 {
            let mut ctx = PolicyCtx {
                cycle: h.cycle,
                energy: &mut h.e,
                stats: &mut h.s,
            };
            h.p.on_cycle(&mut ctx);
        }
        assert_eq!(h.s.checking_mode_cycles, 4);
    }
}
