//! The parallel, deterministic experiment engine.
//!
//! Every figure/table regenerator expresses its work as a flat list of
//! independent [`RunSpec`] cells — one (workload, config, policy, options)
//! simulation each — and hands it to [`Engine::run_all`], which executes
//! the cells across a scoped worker pool and reassembles results **in spec
//! order**. Aggregation code downstream is therefore byte-identical
//! between `jobs = 1` and `jobs = N`; the only thing parallelism changes
//! is wall-clock time.
//!
//! The engine also owns the **emulator oracle cache**: the functional
//! reference checksum a halting run is verified against depends only on
//! the workload (the emulator models no timing, no policy and no
//! invalidation traffic), so it is computed at most once per distinct
//! workload per engine and shared across every policy × config cell. The
//! [`Engine::oracle_stats`] counters make the sharing observable.
//!
//! An engine can additionally carry a persistent [`CellCache`]
//! ([`Engine::with_cache`], or process-wide via
//! [`set_global_cell_cache`]): each cell is then looked up by content
//! address before simulating, and a hit returns the previously verified
//! result without running either the simulator or the emulator oracle.
//! Because the cache stores full [`CellResult`]s keyed on everything that
//! can influence them (see [`crate::cache`]), reducers cannot tell cached
//! and fresh cells apart.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

use dmdc_isa::Emulator;
use dmdc_ooo::{
    CoreConfig, SampleSpec, SimOptions, SimProfile, SimStats, PROFILE_STAGES, PROFILE_STAGE_NAMES,
};
use dmdc_workloads::Workload;

use crate::cache::{workload_digest, CacheCounters, CellCache};
use crate::cell::{CellError, CellFailure, CellResult, FailureKind};
use crate::experiments::{PolicyKind, Run};
use crate::flight::{Entry, FlightCounters, SingleFlight};
use crate::journal::{JournalCounters, RunJournal};
use crate::recovery::{self, RecoveryKind};

/// One independent experiment cell: a single verified simulation.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Index into the engine's workload slice.
    pub workload: usize,
    /// Machine configuration to simulate.
    pub config: CoreConfig,
    /// Dependence-checking design to instantiate.
    pub policy: PolicyKind,
    /// Run options (invalidation rate, limits, ...).
    pub opts: SimOptions,
}

impl RunSpec {
    /// A cell with default options, under the process-wide default
    /// sampling mode (see [`set_default_sampling`]) — applied here, before
    /// the spec's description and hence any cache or journal key is
    /// derived, so sampled and exact cells can never collide.
    pub fn new(workload: usize, config: &CoreConfig, policy: PolicyKind) -> RunSpec {
        RunSpec {
            workload,
            config: config.clone(),
            policy,
            opts: SimOptions {
                sampling: default_sampling(),
                ..SimOptions::default()
            },
        }
    }

    /// The spec's content-addressing description: the `Debug` rendering of
    /// every field that can influence the simulation (the workload is
    /// covered separately by its own digest). Cache keys hash this string,
    /// so any config, policy or option change moves the key.
    pub fn desc(&self) -> String {
        format!("{:?}|{:?}|{:?}", self.config, self.policy, self.opts)
    }
}

/// Process-wide default cell cache. The CLI installs one here (unless
/// `--no-cache`); library callers and tests are uncached unless they opt
/// in per engine with [`Engine::with_cache`].
static GLOBAL_CACHE: Mutex<Option<Arc<CellCache>>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide default cell
/// cache picked up by every subsequently created [`Engine`].
pub fn set_global_cell_cache(cache: Option<Arc<CellCache>>) {
    *GLOBAL_CACHE.lock().expect("cell cache poisoned") = cache;
}

/// The process-wide default cell cache, if one is installed.
pub fn global_cell_cache() -> Option<Arc<CellCache>> {
    GLOBAL_CACHE.lock().expect("cell cache poisoned").clone()
}

/// Process-wide single-flight table over cell cache keys (see
/// [`crate::flight`]). The service installs one so that concurrent jobs
/// hitting the same cell coalesce into one simulation; the one-shot CLI
/// leaves the slot empty and is unaffected.
static GLOBAL_FLIGHT: Mutex<Option<Arc<SingleFlight>>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide single-flight
/// table picked up by every subsequently created [`Engine`].
pub fn set_global_flight(flight: Option<Arc<SingleFlight>>) {
    *GLOBAL_FLIGHT.lock().expect("flight slot poisoned") = flight;
}

/// The process-wide single-flight table, if one is installed.
pub fn global_flight() -> Option<Arc<SingleFlight>> {
    GLOBAL_FLIGHT.lock().expect("flight slot poisoned").clone()
}

/// Process-wide default run journal (crash-safe checkpoint/resume). The
/// CLI installs one per `suite`/`experiment` invocation; `--resume`
/// reopens a previous run's journal instead.
static GLOBAL_JOURNAL: Mutex<Option<Arc<RunJournal>>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide run journal
/// picked up by every subsequently created [`Engine`].
pub fn set_global_journal(journal: Option<Arc<RunJournal>>) {
    *GLOBAL_JOURNAL.lock().expect("journal slot poisoned") = journal;
}

/// The process-wide run journal, if one is installed.
pub fn global_journal() -> Option<Arc<RunJournal>> {
    GLOBAL_JOURNAL
        .lock()
        .expect("journal slot poisoned")
        .clone()
}

/// Process-wide persistent checkpoint store (see
/// [`CheckpointStore`](crate::cache::CheckpointStore)). The CLI installs
/// one alongside the cell cache (unless `--no-cache`); with it, sampled
/// cells restore their fast-forward checkpoints from the shared store
/// instead of re-emulating.
static GLOBAL_CHECKPOINTS: Mutex<Option<Arc<crate::cache::CheckpointStore>>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide checkpoint store
/// consulted by every subsequently executed sampled cell.
pub fn set_global_checkpoint_store(store: Option<Arc<crate::cache::CheckpointStore>>) {
    *GLOBAL_CHECKPOINTS
        .lock()
        .expect("checkpoint store poisoned") = store;
}

/// The process-wide checkpoint store, if one is installed.
pub fn global_checkpoint_store() -> Option<Arc<crate::cache::CheckpointStore>> {
    GLOBAL_CHECKPOINTS
        .lock()
        .expect("checkpoint store poisoned")
        .clone()
}

/// Process-wide default for per-cell retries (how many times a panicking,
/// timed-out or erroring cell is re-attempted before quarantine). The
/// CLI's `--retries` flag sets this.
static RETRIES: AtomicUsize = AtomicUsize::new(DEFAULT_RETRIES);

/// Retries a failing cell gets by default: one — enough to absorb any
/// transient fault while a deterministic bug only costs one extra
/// attempt before it is quarantined.
pub const DEFAULT_RETRIES: usize = 1;

/// Sets the process-wide default retry count.
pub fn set_default_retries(retries: usize) {
    RETRIES.store(retries, Ordering::Relaxed);
}

/// The process-wide default retry count.
pub fn default_retries() -> usize {
    RETRIES.load(Ordering::Relaxed)
}

/// Process-wide default per-cell wall-clock watchdog in milliseconds
/// (0 = no watchdog). The CLI's `--cell-timeout` flag sets this.
static CELL_TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);

/// Sets the process-wide default cell watchdog (`None` disables it).
pub fn set_default_cell_timeout(timeout: Option<Duration>) {
    CELL_TIMEOUT_MS.store(
        timeout.map_or(0, |t| t.as_millis().max(1) as u64),
        Ordering::Relaxed,
    );
}

/// The process-wide default cell watchdog, if one is set.
pub fn default_cell_timeout() -> Option<Duration> {
    match CELL_TIMEOUT_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Process-wide override for the worker count (0 = unset). The CLI's
/// `--jobs` flag sets this; `DMDC_JOBS` and the machine's parallelism are
/// the fallbacks.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (`0` clears the override).
pub fn set_default_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Resolves the worker count: explicit override (`set_default_jobs`), then
/// the `DMDC_JOBS` environment variable, then available parallelism.
pub fn default_jobs() -> usize {
    let o = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = std::env::var("DMDC_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide default sampling spec (the CLI sets this for `--scale
/// full` unless `--exact`, or anywhere with `--sampled`). Experiment
/// plans apply it to every variant that does not carry its own spec, so
/// the spec lands in [`RunSpec::opts`] **before** any cache or journal
/// key is computed — sampled and exact cells can never collide.
static DEFAULT_SAMPLING: Mutex<SampleSpec> = Mutex::new(SampleSpec::EXACT);

/// Sets the process-wide default sampling spec ([`SampleSpec::EXACT`]
/// restores exact simulation).
pub fn set_default_sampling(spec: SampleSpec) {
    *DEFAULT_SAMPLING.lock().expect("sampling spec poisoned") = spec;
}

/// The process-wide default sampling spec.
pub fn default_sampling() -> SampleSpec {
    *DEFAULT_SAMPLING.lock().expect("sampling spec poisoned")
}

/// Process-wide switch (the CLI's `--profile` flag): when set, every
/// verified run collects a [`SimProfile`] and folds it into the global
/// [`ProfileTotals`], so experiment commands can report a per-stage
/// breakdown without threading an option through every regenerator.
static PROFILE_ENABLED: AtomicBool = AtomicBool::new(false);

static PROFILE_TOTALS: Mutex<ProfileTotals> = Mutex::new(ProfileTotals::new());

/// Enables (or disables) run profiling process-wide.
pub fn set_profile(enabled: bool) {
    PROFILE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether run profiling is enabled process-wide.
pub fn profile_enabled() -> bool {
    PROFILE_ENABLED.load(Ordering::Relaxed)
}

/// Folds one run's profile into the process-wide totals. Called by the
/// execution funnel whenever a run carries a profile.
pub(crate) fn record_profile(profile: &SimProfile, stats: &SimStats) {
    PROFILE_TOTALS
        .lock()
        .expect("profile totals poisoned")
        .add(profile, stats);
}

/// Returns and resets the accumulated profile totals.
pub fn take_profile_totals() -> ProfileTotals {
    std::mem::take(&mut *PROFILE_TOTALS.lock().expect("profile totals poisoned"))
}

/// One sampled cell's mode breakdown, folded into the process-wide
/// [`ProfileTotals`] by the sampling driver when profiling is on: how
/// many instructions the functional fast-forward covered (and how — whole
/// compiled blocks vs. single-step fallbacks), how many cycles and
/// commits the detailed windows simulated, and how the host time split
/// between block compilation, fast-forwarding and detailed windows.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SamplingSample {
    pub ff_insts: u64,
    pub ff_nanos: u64,
    pub compile_nanos: u64,
    pub ff_blocks: u64,
    pub ff_fallback_steps: u64,
    pub ckpt_shared: u64,
    pub window_nanos: u64,
    pub window_cycles: u64,
    pub window_committed: u64,
}

/// Folds one sampled cell's breakdown into the process-wide totals.
pub(crate) fn record_sampling(sample: SamplingSample) {
    let mut totals = PROFILE_TOTALS.lock().expect("profile totals poisoned");
    totals.ff_insts += sample.ff_insts;
    totals.ff_nanos += sample.ff_nanos;
    totals.compile_nanos += sample.compile_nanos;
    totals.ff_blocks += sample.ff_blocks;
    totals.ff_fallback_steps += sample.ff_fallback_steps;
    totals.ckpt_shared += sample.ckpt_shared;
    totals.window_nanos += sample.window_nanos;
    totals.window_cycles += sample.window_cycles;
    totals.window_committed += sample.window_committed;
    totals.sampled_cells += 1;
}

/// Aggregated [`SimProfile`]s across every profiled run since the last
/// [`take_profile_totals`] call.
#[derive(Debug, Clone, Copy)]
pub struct ProfileTotals {
    /// Host nanoseconds per stage, summed over runs.
    pub stage_nanos: [u64; PROFILE_STAGES],
    /// Active (work-performing) cycles per stage, summed over runs.
    pub stage_active_cycles: [u64; PROFILE_STAGES],
    /// Executed cycles, summed.
    pub executed_cycles: u64,
    /// Simulated cycles, summed.
    pub simulated_cycles: u64,
    /// Skipped cycles, summed.
    pub skipped_cycles: u64,
    /// Fast-forward jumps, summed.
    pub fast_forwards: u64,
    /// Number of runs folded in.
    pub runs: u64,
    /// Instructions covered by the sampling driver's functional
    /// fast-forward (never detailed-simulated), summed over sampled cells.
    pub ff_insts: u64,
    /// Host nanoseconds spent in functional fast-forward, summed.
    pub ff_nanos: u64,
    /// Host nanoseconds spent pre-decoding programs into block code,
    /// summed over sampled cells.
    pub compile_nanos: u64,
    /// Straight-line blocks / control transfers the silent-run engine
    /// executed whole during fast-forward, summed.
    pub ff_blocks: u64,
    /// Fast-forward instructions that went through the single-step
    /// fallback (partial blocks at stop boundaries), summed.
    pub ff_fallback_steps: u64,
    /// Windows whose checkpoint came from the in-process memo (shared
    /// from an earlier cell in this run) instead of a fast-forward or the
    /// persistent store, summed.
    pub ckpt_shared: u64,
    /// Host nanoseconds spent in detailed sample windows, summed.
    pub window_nanos: u64,
    /// Cycles the detailed sample windows simulated, summed.
    pub window_cycles: u64,
    /// Instructions the detailed sample windows committed, summed.
    pub window_committed: u64,
    /// Number of sampled cells folded in.
    pub sampled_cells: u64,
}

impl ProfileTotals {
    const fn new() -> ProfileTotals {
        ProfileTotals {
            stage_nanos: [0; PROFILE_STAGES],
            stage_active_cycles: [0; PROFILE_STAGES],
            executed_cycles: 0,
            simulated_cycles: 0,
            skipped_cycles: 0,
            fast_forwards: 0,
            runs: 0,
            ff_insts: 0,
            ff_nanos: 0,
            compile_nanos: 0,
            ff_blocks: 0,
            ff_fallback_steps: 0,
            ckpt_shared: 0,
            window_nanos: 0,
            window_cycles: 0,
            window_committed: 0,
            sampled_cells: 0,
        }
    }

    fn add(&mut self, p: &SimProfile, stats: &SimStats) {
        for i in 0..PROFILE_STAGES {
            self.stage_nanos[i] += p.stage_nanos[i];
            self.stage_active_cycles[i] += p.stage_active_cycles[i];
        }
        self.executed_cycles += p.executed_cycles;
        self.simulated_cycles += stats.cycles;
        self.skipped_cycles += stats.skipped_cycles;
        self.fast_forwards += stats.fast_forwards;
        self.runs += 1;
    }

    /// Multi-line human-readable report over all folded-in runs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let skipped_pct = if self.simulated_cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 * 100.0 / self.simulated_cycles as f64
        };
        let _ = writeln!(
            out,
            "[profile] {} runs: {} cycles simulated, {} executed, {} skipped ({:.1}%) in {} fast-forwards",
            self.runs,
            self.simulated_cycles,
            self.executed_cycles,
            self.skipped_cycles,
            skipped_pct,
            self.fast_forwards,
        );
        let _ = writeln!(
            out,
            "[profile] {:<10} {:>12} {:>14}",
            "stage", "time(ms)", "active-cycles"
        );
        for (i, name) in PROFILE_STAGE_NAMES.iter().enumerate() {
            let _ = writeln!(
                out,
                "[profile] {:<10} {:>12.2} {:>14}",
                name,
                self.stage_nanos[i] as f64 / 1.0e6,
                self.stage_active_cycles[i],
            );
        }
        if self.sampled_cells > 0 {
            let _ = writeln!(
                out,
                "[profile] sampling: {} cells, {} insts fast-forwarded, {} committed in detailed windows ({} cycles); host time {:.2} ms fast-forward, {:.2} ms detailed windows",
                self.sampled_cells,
                self.ff_insts,
                self.window_committed,
                self.window_cycles,
                self.ff_nanos as f64 / 1.0e6,
                self.window_nanos as f64 / 1.0e6,
            );
            let _ = writeln!(
                out,
                "[profile] sampling: fast-forward ran {} compiled blocks + {} single-step fallbacks; block compile {:.2} ms; {} in-memory checkpoint restores",
                self.ff_blocks,
                self.ff_fallback_steps,
                self.compile_nanos as f64 / 1.0e6,
                self.ckpt_shared,
            );
        }
        out
    }
}

impl Default for ProfileTotals {
    fn default() -> ProfileTotals {
        ProfileTotals::new()
    }
}

/// Memoized functional-emulator reference state, one slot per workload:
/// the final architectural checksum plus the dynamic instruction count
/// (the sampling driver's population size). A workload that does not halt
/// under emulation memoizes a structured error — surfaced by the engine
/// as a failed cell in the report, never a process-killing panic.
struct EmuOracle {
    references: Vec<OnceLock<Result<(u64, u64), String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EmuOracle {
    fn new(n: usize) -> EmuOracle {
        EmuOracle {
            references: (0..n).map(|_| OnceLock::new()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The reference `(checksum, retired)` for `workloads[index]`,
    /// emulating on first use only. Concurrent first users block on one
    /// computation. The error (a must-halt violation) is memoized exactly
    /// like a reference: every cell of the broken workload fails the same
    /// way, once.
    fn reference(&self, workloads: &[Workload], index: usize) -> Result<(u64, u64), String> {
        let slot = &self.references[index];
        // Track whether *this* call ran the initializer: a caller that
        // blocks inside `get_or_init` while another thread computes is a
        // cache hit too, so hits + misses always equals consultations.
        let mut computed = false;
        let c = slot
            .get_or_init(|| {
                computed = true;
                self.misses.fetch_add(1, Ordering::Relaxed);
                let w = &workloads[index];
                // The oracle only needs the final state and retired count,
                // so the block-compiled silent run (bit-identical to
                // stepping; see `dmdc_isa::BlockCode`) does the whole
                // emulation on the fast path.
                let code = dmdc_isa::BlockCode::compile(&w.program);
                let mut emu = Emulator::new(&w.program);
                emu.run_silent(&code, u64::MAX)
                    .map_err(|e| format!("{} must halt under emulation: {e}", w.name))?;
                Ok((emu.state_checksum(), emu.retired()))
            })
            .clone();
        if !computed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        c
    }
}

/// The parallel experiment engine for one workload set.
///
/// # Examples
///
/// ```
/// use dmdc_core::experiments::PolicyKind;
/// use dmdc_core::runner::{Engine, RunSpec};
/// use dmdc_ooo::CoreConfig;
/// use dmdc_workloads::SyntheticKernel;
///
/// let workloads = vec![SyntheticKernel::new(500).build()];
/// let config = CoreConfig::config2();
/// let engine = Engine::with_jobs(&workloads, 2);
/// let specs = vec![
///     RunSpec::new(0, &config, PolicyKind::Baseline),
///     RunSpec::new(0, &config, PolicyKind::DmdcGlobal),
/// ];
/// let runs = engine.run_all(&specs);
/// assert_eq!(runs.len(), 2);
/// let (hits, misses) = engine.oracle_stats();
/// assert_eq!((hits, misses), (1, 1), "one emulation, shared by the second cell");
/// ```
pub struct Engine<'w> {
    workloads: &'w [Workload],
    oracle: EmuOracle,
    jobs: usize,
    cache: Option<Arc<CellCache>>,
    flight: Option<Arc<SingleFlight>>,
    journal: Option<Arc<RunJournal>>,
    retries: usize,
    cell_timeout: Option<Duration>,
    digests: Vec<OnceLock<u64>>,
}

impl<'w> Engine<'w> {
    /// An engine using the resolved default worker count and the
    /// process-wide cell cache, journal and retry policy (if installed).
    pub fn new(workloads: &'w [Workload]) -> Engine<'w> {
        Engine::with_jobs(workloads, default_jobs())
    }

    /// An engine with an explicit worker count (`1` = fully serial) and
    /// the process-wide cell cache, journal and retry policy.
    pub fn with_jobs(workloads: &'w [Workload], jobs: usize) -> Engine<'w> {
        Engine {
            workloads,
            oracle: EmuOracle::new(workloads.len()),
            jobs: jobs.max(1),
            cache: global_cell_cache(),
            flight: global_flight(),
            journal: global_journal(),
            retries: default_retries(),
            cell_timeout: default_cell_timeout(),
            digests: (0..workloads.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Replaces the engine's cell cache (`None` disables caching for this
    /// engine regardless of the process-wide default).
    pub fn with_cache(mut self, cache: Option<Arc<CellCache>>) -> Engine<'w> {
        self.cache = cache;
        self
    }

    /// Replaces the engine's run journal (`None` disables journaling for
    /// this engine regardless of the process-wide default).
    pub fn with_journal(mut self, journal: Option<Arc<RunJournal>>) -> Engine<'w> {
        self.journal = journal;
        self
    }

    /// Replaces the engine's single-flight table (`None` disables
    /// coalescing for this engine regardless of the process-wide default).
    /// Coalescing requires a cell cache — the flight only sequences
    /// threads around the cache as the shared result store — so an engine
    /// with a flight but no cache simulates every cell itself.
    pub fn with_flight(mut self, flight: Option<Arc<SingleFlight>>) -> Engine<'w> {
        self.flight = flight;
        self
    }

    /// The single-flight table's counters, if this engine carries one.
    pub fn flight_counters(&self) -> Option<FlightCounters> {
        self.flight.as_ref().map(|f| f.counters())
    }

    /// Sets how many times a failing cell is retried before quarantine
    /// (`0` = quarantine on the first failure).
    pub fn with_retries(mut self, retries: usize) -> Engine<'w> {
        self.retries = retries;
        self
    }

    /// Sets the per-cell wall-clock watchdog. With a timeout, each attempt
    /// runs on a detached watchdog thread; an attempt that outlives the
    /// timeout is abandoned and counted as a [`FailureKind::Timeout`].
    pub fn with_cell_timeout(mut self, timeout: Option<Duration>) -> Engine<'w> {
        self.cell_timeout = timeout;
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cell cache's counters, if this engine carries a cache.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// The run journal's counters, if this engine carries a journal.
    pub fn journal_counters(&self) -> Option<JournalCounters> {
        self.journal.as_ref().map(|j| j.counters())
    }

    /// The content digest of `workloads[index]`, computed at most once.
    fn digest(&self, index: usize) -> u64 {
        *self.digests[index].get_or_init(|| workload_digest(&self.workloads[index]))
    }

    /// (hits, misses) of the emulator-oracle cache so far. `misses` never
    /// exceeds the number of distinct workloads referenced by any spec.
    pub fn oracle_stats(&self) -> (u64, u64) {
        (
            self.oracle.hits.load(Ordering::Relaxed),
            self.oracle.misses.load(Ordering::Relaxed),
        )
    }

    /// Executes one cell, verifying a halting run against the memoized
    /// emulator reference. Wrapper over [`Engine::try_run_cell`] for
    /// callers with nowhere to surface a structured failure.
    ///
    /// # Panics
    ///
    /// Panics if the cell exhausts its retries — the experiment's numbers
    /// would be meaningless, so for this entry point that is fatal.
    pub fn run_cell(&self, spec: &RunSpec) -> CellResult {
        self.try_run_cell(spec).unwrap_or_else(|f| {
            panic!(
                "cell {} quarantined after {} attempts: [{}] {}",
                f.workload, f.attempts, f.kind, f.detail
            )
        })
    }

    /// Executes one cell under the fault-tolerant layer:
    ///
    /// 1. a **journal hit** (a cell completed before this run resumed)
    ///    replays the verified result without touching the simulator;
    /// 2. a **cache hit** does the same from the content-addressed cache
    ///    (and checkpoints the cell into the journal);
    /// 3. otherwise the cell is simulated under `catch_unwind` — with a
    ///    wall-clock watchdog when a cell timeout is configured — and
    ///    retried with bounded backoff up to the configured retry budget;
    /// 4. a cell that exhausts its retries comes back as a structured
    ///    [`CellFailure`] instead of killing the process.
    pub fn try_run_cell(&self, spec: &RunSpec) -> Result<CellResult, CellFailure> {
        let name = self.workloads[spec.workload].name;
        let desc = spec.desc();
        let digest = self.digest(spec.workload);
        if let Some(journal) = &self.journal {
            let key = journal.key(digest, &desc);
            if let Some(cell) = journal.replay(key, name) {
                recovery::record(RecoveryKind::CellResumed, name, &desc);
                return Ok(cell);
            }
        }
        let cached = self.cache.as_ref().and_then(|cache| {
            let key = cache.key(digest, &desc);
            cache.load(key, name).map(|cell| (key, cell))
        });
        if let Some((_, cell)) = cached {
            self.checkpoint(digest, &desc, &cell);
            return Ok(cell);
        }
        // Single-flight (service mode): the first thread to miss on a key
        // leads and simulates; concurrent missers on the same key block on
        // its flight and re-read the cache once it lands. The guard stays
        // alive through the attempt loop below, so followers wake only
        // after the leader's `cache.store` — or after its failure, in
        // which case the re-read misses and the follower simulates for
        // itself (coalescing may delay a result, never lose one).
        let _lead = match (self.cache.as_ref(), self.flight.as_ref()) {
            (Some(cache), Some(flight)) => {
                let key = cache.key(digest, &desc);
                match flight.join(key) {
                    Entry::Leader(guard) => {
                        // A previous leader may have landed the result
                        // between our miss above and this join; re-check
                        // so the race costs a cache read, not a
                        // simulation.
                        if let Some(cell) = cache.load(key, name) {
                            self.checkpoint(digest, &desc, &cell);
                            return Ok(cell);
                        }
                        Some(guard)
                    }
                    Entry::Waited => {
                        if let Some(cell) = cache.load(key, name) {
                            self.checkpoint(digest, &desc, &cell);
                            return Ok(cell);
                        }
                        None
                    }
                }
            }
            _ => None,
        };
        let attempts = self.retries + 1;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let err: &CellError = last.as_ref().expect("retry follows a failure");
                recovery::record(RecoveryKind::CellRetry, name, err.to_string());
                std::thread::sleep(backoff(attempt));
            }
            match self.attempt(spec, attempt as u32) {
                Ok(cell) => {
                    if let Some(cache) = &self.cache {
                        cache.store(cache.key(digest, &desc), &cell);
                    }
                    self.checkpoint(digest, &desc, &cell);
                    return Ok(cell);
                }
                Err(e) => last = Some(e),
            }
        }
        let err = last.expect("at least one attempt ran");
        recovery::record(RecoveryKind::CellQuarantined, name, err.to_string());
        Err(CellFailure {
            workload: name.to_string(),
            spec: desc,
            kind: err.kind,
            detail: err.detail,
            attempts: attempts as u32,
        })
    }

    /// Checkpoints a completed cell into the run journal, if one is
    /// attached.
    fn checkpoint(&self, digest: u64, desc: &str, cell: &CellResult) {
        if let Some(journal) = &self.journal {
            journal.record(journal.key(digest, desc), cell);
        }
    }

    /// One isolated attempt at a cell: panics are caught, and with a cell
    /// timeout configured the attempt runs on a detached watchdog thread
    /// so a hung simulation cannot wedge the suite.
    fn attempt(&self, spec: &RunSpec, attempt: u32) -> Result<CellResult, CellError> {
        match self.cell_timeout {
            None => {
                let w = &self.workloads[spec.workload];
                catch_attempt(w, spec, attempt, || {
                    self.oracle.reference(self.workloads, spec.workload)
                })
            }
            Some(timeout) => self.attempt_with_watchdog(spec, attempt, timeout),
        }
    }

    /// Runs one attempt on a detached thread and abandons it if it
    /// outlives `timeout`. The emulator oracle is resolved on the calling
    /// thread first (memoization lives in the engine; the emulator is
    /// cheap and bounded relative to a detailed simulation), so the
    /// watchdog thread owns everything it needs.
    fn attempt_with_watchdog(
        &self,
        spec: &RunSpec,
        attempt: u32,
        timeout: Duration,
    ) -> Result<CellResult, CellError> {
        let oracle = self.oracle.reference(self.workloads, spec.workload);
        let workload = self.workloads[spec.workload].clone();
        let owned = spec.clone();
        let (tx, rx) = mpsc::channel();
        let spawned = std::thread::Builder::new()
            .name("dmdc-cell-watchdog".to_string())
            .spawn(move || {
                let result = catch_attempt(&workload, &owned, attempt, move || oracle);
                let _ = tx.send(result);
            });
        if spawned.is_err() {
            // Thread exhaustion: degrade to an inline attempt rather than
            // failing the cell.
            let w = &self.workloads[spec.workload];
            return catch_attempt(w, spec, attempt, || {
                self.oracle.reference(self.workloads, spec.workload)
            });
        }
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(CellError::new(
                FailureKind::Timeout,
                format!("cell exceeded the {timeout:?} wall-clock watchdog"),
            )),
        }
    }

    /// Executes every cell and returns the results in spec order.
    /// Wrapper over [`Engine::run_all_recovered`] for callers with
    /// nowhere to surface structured failures.
    ///
    /// # Panics
    ///
    /// Panics if any cell exhausts its retries.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Run> {
        let (cells, failures) = self.run_all_recovered(specs);
        if let Some(f) = failures.first() {
            panic!(
                "cell {} quarantined after {} attempts: [{}] {}",
                f.workload, f.attempts, f.kind, f.detail
            );
        }
        cells
            .into_iter()
            .map(|c| c.expect("no failures, so every cell is present"))
            .collect()
    }

    /// Executes every cell under the fault-tolerant layer and returns
    /// `(results, failures)`, both index-aligned with `specs` (a failed
    /// cell leaves a `None` slot; its [`CellFailure`] appears in spec
    /// order in the second vector).
    ///
    /// With `jobs = 1` the cells run serially on the calling thread; with
    /// more, a scoped worker pool pulls cells off a shared cursor. A
    /// worker that dies (a panic escaping the per-cell isolation) is
    /// recorded and its unfinished cells are re-claimed **serially on the
    /// calling thread**, so a lost worker degrades throughput, never
    /// results. Either way the returned vectors are index-aligned with
    /// `specs`, so the output of any aggregation over them is identical.
    pub fn run_all_recovered(&self, specs: &[RunSpec]) -> (Vec<Option<Run>>, Vec<CellFailure>) {
        let workers = self.jobs.min(specs.len());
        let slots: Vec<Mutex<Option<Result<Run, CellFailure>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        if workers > 1 {
            let next = AtomicUsize::new(0);
            let lost = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let outcome = panic::catch_unwind(AssertUnwindSafe(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= specs.len() {
                                break;
                            }
                            crate::faults::on_worker_cell(i);
                            let result = self.try_run_cell(&specs[i]);
                            *lock_slot(&slots[i]) = Some(result);
                        }));
                        if outcome.is_err() {
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            for _ in 0..lost.load(Ordering::Relaxed) {
                recovery::record(
                    RecoveryKind::WorkerLost,
                    "worker",
                    "worker thread died; its cells re-ran serially",
                );
            }
        }
        // Serial path — and the degradation path: any cell not completed
        // by the pool (jobs = 1, or a slot claimed by a worker that died)
        // runs here on the calling thread.
        for (i, slot) in slots.iter().enumerate() {
            let done = lock_slot(slot).is_some();
            if !done {
                let result = self.try_run_cell(&specs[i]);
                *lock_slot(slot) = Some(result);
            }
        }
        let mut cells = Vec::with_capacity(specs.len());
        let mut failures = Vec::new();
        for slot in slots {
            match lock_slot(&slot).take().expect("every slot filled") {
                Ok(cell) => cells.push(Some(cell)),
                Err(failure) => {
                    failures.push(failure);
                    cells.push(None);
                }
            }
        }
        (cells, failures)
    }
}

/// Locks a result slot, surviving poisoning (a worker that died while
/// holding the lock must not take the suite down with it).
fn lock_slot<T>(slot: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Bounded exponential backoff between cell attempts: 25 ms, 50 ms,
/// 100 ms, ... capped at 400 ms. Long enough to ride out a transient
/// (page cache pressure, a racing writer), short enough to not matter
/// against simulation times.
fn backoff(attempt: usize) -> Duration {
    Duration::from_millis(25u64 << (attempt - 1).min(4))
}

/// One isolated cell attempt: the fault-injection hook and the verified
/// execution funnel, under `catch_unwind` so a panicking policy or
/// simulator bug becomes a structured [`CellError`].
fn catch_attempt(
    workload: &Workload,
    spec: &RunSpec,
    attempt: u32,
    oracle: impl FnOnce() -> Result<(u64, u64), String>,
) -> Result<CellResult, CellError> {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        crate::faults::on_cell_attempt(workload.name, attempt);
        crate::experiments::execute_verified(
            workload,
            &spec.config,
            &spec.policy,
            spec.opts,
            oracle,
        )
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(CellError::new(FailureKind::Panic, panic_message(&*payload))),
    }
}

/// Extracts a human-readable message from a panic payload. Callers must
/// pass the payload itself (`&*boxed`), not a reference to the box — a
/// `&Box<dyn Any>` would unsize-coerce to `&dyn Any` *of the box*, and
/// every downcast would miss.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Convenience: runs `specs` over `workloads` with the default worker
/// count and reports the oracle counters through the returned engine-less
/// tuple `(runs, hits, misses)`.
pub fn run_specs(workloads: &[Workload], specs: &[RunSpec]) -> (Vec<Run>, u64, u64) {
    let engine = Engine::new(workloads);
    let runs = engine.run_all(specs);
    let (hits, misses) = engine.oracle_stats();
    (runs, hits, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_workloads::{fp_suite, int_suite, Scale};

    fn mini() -> Vec<Workload> {
        vec![
            int_suite(Scale::Smoke).remove(6),
            fp_suite(Scale::Smoke).remove(1),
        ]
    }

    #[test]
    fn parallel_matches_serial_cell_for_cell() {
        let ws = mini();
        let config = CoreConfig::config2();
        let specs: Vec<RunSpec> = (0..ws.len())
            .flat_map(|i| {
                [
                    RunSpec::new(i, &config, PolicyKind::Baseline),
                    RunSpec::new(i, &config, PolicyKind::DmdcGlobal),
                    RunSpec::new(i, &config, PolicyKind::DmdcLocal),
                ]
            })
            .collect();
        let serial = Engine::with_jobs(&ws, 1).run_all(&specs);
        let parallel = Engine::with_jobs(&ws, 4).run_all(&specs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload, p.workload);
            assert_eq!(s.group, p.group);
            assert_eq!(s.stats.cycles, p.stats.cycles);
            assert_eq!(s.stats.committed, p.stats.committed);
            assert_eq!(s.stats.replay_squashes, p.stats.replay_squashes);
        }
    }

    #[test]
    fn oracle_emulates_each_workload_once() {
        let ws = mini();
        let config = CoreConfig::config2();
        let mut specs = Vec::new();
        for _ in 0..5 {
            for i in 0..ws.len() {
                specs.push(RunSpec::new(i, &config, PolicyKind::DmdcGlobal));
            }
        }
        let engine = Engine::with_jobs(&ws, 2);
        engine.run_all(&specs);
        let (hits, misses) = engine.oracle_stats();
        assert_eq!(
            misses,
            ws.len() as u64,
            "one emulation per distinct workload"
        );
        assert_eq!(
            hits + misses,
            specs.len() as u64,
            "every halting cell consulted the oracle"
        );
    }

    #[test]
    fn cache_serves_repeated_cells_verbatim() {
        let ws = mini();
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/dmdc-cache-runner-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = CoreConfig::config2();
        let specs = vec![
            RunSpec::new(0, &config, PolicyKind::DmdcGlobal),
            RunSpec::new(1, &config, PolicyKind::Baseline),
        ];
        let cold_engine =
            Engine::with_jobs(&ws, 1).with_cache(Some(Arc::new(CellCache::new(&dir))));
        let cold = cold_engine.run_all(&specs);
        let c = cold_engine.cache_counters().unwrap();
        assert_eq!((c.hits, c.misses, c.stores), (0, 2, 2));
        let warm_engine =
            Engine::with_jobs(&ws, 1).with_cache(Some(Arc::new(CellCache::new(&dir))));
        let warm = warm_engine.run_all(&specs);
        let c = warm_engine.cache_counters().unwrap();
        assert_eq!((c.hits, c.misses, c.stores), (2, 0, 0));
        assert_eq!(cold, warm, "cached cells must replay byte-for-byte");
        let (hits, misses) = warm_engine.oracle_stats();
        assert_eq!((hits, misses), (0, 0), "warm cells never touch the oracle");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
