//! The parallel, deterministic experiment engine.
//!
//! Every figure/table regenerator expresses its work as a flat list of
//! independent [`RunSpec`] cells — one (workload, config, policy, options)
//! simulation each — and hands it to [`Engine::run_all`], which executes
//! the cells across a scoped worker pool and reassembles results **in spec
//! order**. Aggregation code downstream is therefore byte-identical
//! between `jobs = 1` and `jobs = N`; the only thing parallelism changes
//! is wall-clock time.
//!
//! The engine also owns the **emulator oracle cache**: the functional
//! reference checksum a halting run is verified against depends only on
//! the workload (the emulator models no timing, no policy and no
//! invalidation traffic), so it is computed at most once per distinct
//! workload per engine and shared across every policy × config cell. The
//! [`Engine::oracle_stats`] counters make the sharing observable.
//!
//! An engine can additionally carry a persistent [`CellCache`]
//! ([`Engine::with_cache`], or process-wide via
//! [`set_global_cell_cache`]): each cell is then looked up by content
//! address before simulating, and a hit returns the previously verified
//! result without running either the simulator or the emulator oracle.
//! Because the cache stores full [`CellResult`]s keyed on everything that
//! can influence them (see [`crate::cache`]), reducers cannot tell cached
//! and fresh cells apart.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dmdc_isa::Emulator;
use dmdc_ooo::{CoreConfig, SimOptions, SimProfile, SimStats, PROFILE_STAGES, PROFILE_STAGE_NAMES};
use dmdc_workloads::Workload;

use crate::cache::{workload_digest, CacheCounters, CellCache};
use crate::cell::CellResult;
use crate::experiments::{PolicyKind, Run};

/// One independent experiment cell: a single verified simulation.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Index into the engine's workload slice.
    pub workload: usize,
    /// Machine configuration to simulate.
    pub config: CoreConfig,
    /// Dependence-checking design to instantiate.
    pub policy: PolicyKind,
    /// Run options (invalidation rate, limits, ...).
    pub opts: SimOptions,
}

impl RunSpec {
    /// A cell with default options.
    pub fn new(workload: usize, config: &CoreConfig, policy: PolicyKind) -> RunSpec {
        RunSpec {
            workload,
            config: config.clone(),
            policy,
            opts: SimOptions::default(),
        }
    }

    /// The spec's content-addressing description: the `Debug` rendering of
    /// every field that can influence the simulation (the workload is
    /// covered separately by its own digest). Cache keys hash this string,
    /// so any config, policy or option change moves the key.
    pub fn desc(&self) -> String {
        format!("{:?}|{:?}|{:?}", self.config, self.policy, self.opts)
    }
}

/// Process-wide default cell cache. The CLI installs one here (unless
/// `--no-cache`); library callers and tests are uncached unless they opt
/// in per engine with [`Engine::with_cache`].
static GLOBAL_CACHE: Mutex<Option<Arc<CellCache>>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide default cell
/// cache picked up by every subsequently created [`Engine`].
pub fn set_global_cell_cache(cache: Option<Arc<CellCache>>) {
    *GLOBAL_CACHE.lock().expect("cell cache poisoned") = cache;
}

/// The process-wide default cell cache, if one is installed.
pub fn global_cell_cache() -> Option<Arc<CellCache>> {
    GLOBAL_CACHE.lock().expect("cell cache poisoned").clone()
}

/// Process-wide override for the worker count (0 = unset). The CLI's
/// `--jobs` flag sets this; `DMDC_JOBS` and the machine's parallelism are
/// the fallbacks.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (`0` clears the override).
pub fn set_default_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Resolves the worker count: explicit override (`set_default_jobs`), then
/// the `DMDC_JOBS` environment variable, then available parallelism.
pub fn default_jobs() -> usize {
    let o = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = std::env::var("DMDC_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide switch (the CLI's `--profile` flag): when set, every
/// verified run collects a [`SimProfile`] and folds it into the global
/// [`ProfileTotals`], so experiment commands can report a per-stage
/// breakdown without threading an option through every regenerator.
static PROFILE_ENABLED: AtomicBool = AtomicBool::new(false);

static PROFILE_TOTALS: Mutex<ProfileTotals> = Mutex::new(ProfileTotals::new());

/// Enables (or disables) run profiling process-wide.
pub fn set_profile(enabled: bool) {
    PROFILE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether run profiling is enabled process-wide.
pub fn profile_enabled() -> bool {
    PROFILE_ENABLED.load(Ordering::Relaxed)
}

/// Folds one run's profile into the process-wide totals. Called by the
/// execution funnel whenever a run carries a profile.
pub(crate) fn record_profile(profile: &SimProfile, stats: &SimStats) {
    PROFILE_TOTALS
        .lock()
        .expect("profile totals poisoned")
        .add(profile, stats);
}

/// Returns and resets the accumulated profile totals.
pub fn take_profile_totals() -> ProfileTotals {
    std::mem::take(&mut *PROFILE_TOTALS.lock().expect("profile totals poisoned"))
}

/// Aggregated [`SimProfile`]s across every profiled run since the last
/// [`take_profile_totals`] call.
#[derive(Debug, Clone, Copy)]
pub struct ProfileTotals {
    /// Host nanoseconds per stage, summed over runs.
    pub stage_nanos: [u64; PROFILE_STAGES],
    /// Active (work-performing) cycles per stage, summed over runs.
    pub stage_active_cycles: [u64; PROFILE_STAGES],
    /// Executed cycles, summed.
    pub executed_cycles: u64,
    /// Simulated cycles, summed.
    pub simulated_cycles: u64,
    /// Skipped cycles, summed.
    pub skipped_cycles: u64,
    /// Fast-forward jumps, summed.
    pub fast_forwards: u64,
    /// Number of runs folded in.
    pub runs: u64,
}

impl ProfileTotals {
    const fn new() -> ProfileTotals {
        ProfileTotals {
            stage_nanos: [0; PROFILE_STAGES],
            stage_active_cycles: [0; PROFILE_STAGES],
            executed_cycles: 0,
            simulated_cycles: 0,
            skipped_cycles: 0,
            fast_forwards: 0,
            runs: 0,
        }
    }

    fn add(&mut self, p: &SimProfile, stats: &SimStats) {
        for i in 0..PROFILE_STAGES {
            self.stage_nanos[i] += p.stage_nanos[i];
            self.stage_active_cycles[i] += p.stage_active_cycles[i];
        }
        self.executed_cycles += p.executed_cycles;
        self.simulated_cycles += stats.cycles;
        self.skipped_cycles += stats.skipped_cycles;
        self.fast_forwards += stats.fast_forwards;
        self.runs += 1;
    }

    /// Multi-line human-readable report over all folded-in runs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let skipped_pct = if self.simulated_cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 * 100.0 / self.simulated_cycles as f64
        };
        let _ = writeln!(
            out,
            "[profile] {} runs: {} cycles simulated, {} executed, {} skipped ({:.1}%) in {} fast-forwards",
            self.runs,
            self.simulated_cycles,
            self.executed_cycles,
            self.skipped_cycles,
            skipped_pct,
            self.fast_forwards,
        );
        let _ = writeln!(
            out,
            "[profile] {:<10} {:>12} {:>14}",
            "stage", "time(ms)", "active-cycles"
        );
        for (i, name) in PROFILE_STAGE_NAMES.iter().enumerate() {
            let _ = writeln!(
                out,
                "[profile] {:<10} {:>12.2} {:>14}",
                name,
                self.stage_nanos[i] as f64 / 1.0e6,
                self.stage_active_cycles[i],
            );
        }
        out
    }
}

impl Default for ProfileTotals {
    fn default() -> ProfileTotals {
        ProfileTotals::new()
    }
}

/// Memoized functional-emulator reference state, one slot per workload.
struct EmuOracle {
    checksums: Vec<OnceLock<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EmuOracle {
    fn new(n: usize) -> EmuOracle {
        EmuOracle {
            checksums: (0..n).map(|_| OnceLock::new()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The reference checksum for `workloads[index]`, emulating on first
    /// use only. Concurrent first users block on one computation.
    fn checksum(&self, workloads: &[Workload], index: usize) -> u64 {
        let slot = &self.checksums[index];
        // Track whether *this* call ran the initializer: a caller that
        // blocks inside `get_or_init` while another thread computes is a
        // cache hit too, so hits + misses always equals consultations.
        let mut computed = false;
        let c = *slot.get_or_init(|| {
            computed = true;
            self.misses.fetch_add(1, Ordering::Relaxed);
            let w = &workloads[index];
            let mut emu = Emulator::new(&w.program);
            emu.run(u64::MAX)
                .unwrap_or_else(|e| panic!("{} must halt under emulation: {e}", w.name));
            emu.state_checksum()
        });
        if !computed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        c
    }
}

/// The parallel experiment engine for one workload set.
///
/// # Examples
///
/// ```
/// use dmdc_core::experiments::PolicyKind;
/// use dmdc_core::runner::{Engine, RunSpec};
/// use dmdc_ooo::CoreConfig;
/// use dmdc_workloads::SyntheticKernel;
///
/// let workloads = vec![SyntheticKernel::new(500).build()];
/// let config = CoreConfig::config2();
/// let engine = Engine::with_jobs(&workloads, 2);
/// let specs = vec![
///     RunSpec::new(0, &config, PolicyKind::Baseline),
///     RunSpec::new(0, &config, PolicyKind::DmdcGlobal),
/// ];
/// let runs = engine.run_all(&specs);
/// assert_eq!(runs.len(), 2);
/// let (hits, misses) = engine.oracle_stats();
/// assert_eq!((hits, misses), (1, 1), "one emulation, shared by the second cell");
/// ```
pub struct Engine<'w> {
    workloads: &'w [Workload],
    oracle: EmuOracle,
    jobs: usize,
    cache: Option<Arc<CellCache>>,
    digests: Vec<OnceLock<u64>>,
}

impl<'w> Engine<'w> {
    /// An engine using the resolved default worker count and the
    /// process-wide cell cache (if one is installed).
    pub fn new(workloads: &'w [Workload]) -> Engine<'w> {
        Engine::with_jobs(workloads, default_jobs())
    }

    /// An engine with an explicit worker count (`1` = fully serial) and
    /// the process-wide cell cache (if one is installed).
    pub fn with_jobs(workloads: &'w [Workload], jobs: usize) -> Engine<'w> {
        Engine {
            workloads,
            oracle: EmuOracle::new(workloads.len()),
            jobs: jobs.max(1),
            cache: global_cell_cache(),
            digests: (0..workloads.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Replaces the engine's cell cache (`None` disables caching for this
    /// engine regardless of the process-wide default).
    pub fn with_cache(mut self, cache: Option<Arc<CellCache>>) -> Engine<'w> {
        self.cache = cache;
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cell cache's counters, if this engine carries a cache.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// The content digest of `workloads[index]`, computed at most once.
    fn digest(&self, index: usize) -> u64 {
        *self.digests[index].get_or_init(|| workload_digest(&self.workloads[index]))
    }

    /// (hits, misses) of the emulator-oracle cache so far. `misses` never
    /// exceeds the number of distinct workloads referenced by any spec.
    pub fn oracle_stats(&self) -> (u64, u64) {
        (
            self.oracle.hits.load(Ordering::Relaxed),
            self.oracle.misses.load(Ordering::Relaxed),
        )
    }

    /// Executes one cell, verifying a halting run against the memoized
    /// emulator reference. With a cache attached, the cell is first looked
    /// up by content address; a hit skips the simulation (and the oracle —
    /// the cache stores only verified results), a miss simulates and
    /// persists.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails or its architectural state diverges
    /// from the functional emulator — the experiment's numbers would be
    /// meaningless, so this is fatal (as in the serial path).
    pub fn run_cell(&self, spec: &RunSpec) -> CellResult {
        let Some(cache) = &self.cache else {
            return self.simulate(spec);
        };
        let key = cache.key(self.digest(spec.workload), &spec.desc());
        if let Some(cell) = cache.load(key, self.workloads[spec.workload].name) {
            return cell;
        }
        let cell = self.simulate(spec);
        cache.store(key, &cell);
        cell
    }

    /// Simulates one cell unconditionally (no cache consultation).
    fn simulate(&self, spec: &RunSpec) -> CellResult {
        let w = &self.workloads[spec.workload];
        crate::experiments::execute_verified(w, &spec.config, &spec.policy, spec.opts, || {
            self.oracle.checksum(self.workloads, spec.workload)
        })
    }

    /// Executes every cell and returns the results in spec order.
    ///
    /// With `jobs = 1` the cells run serially on the calling thread; with
    /// more, a scoped worker pool pulls cells off a shared cursor. Either
    /// way the returned vector is index-aligned with `specs`, so the
    /// output of any aggregation over it is identical.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Run> {
        let workers = self.jobs.min(specs.len());
        if workers <= 1 {
            return specs.iter().map(|s| self.run_cell(s)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Run>>> = specs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let run = self.run_cell(&specs[i]);
                    *results[i].lock().expect("result slot poisoned") = Some(run);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("cell executed")
            })
            .collect()
    }
}

/// Convenience: runs `specs` over `workloads` with the default worker
/// count and reports the oracle counters through the returned engine-less
/// tuple `(runs, hits, misses)`.
pub fn run_specs(workloads: &[Workload], specs: &[RunSpec]) -> (Vec<Run>, u64, u64) {
    let engine = Engine::new(workloads);
    let runs = engine.run_all(specs);
    let (hits, misses) = engine.oracle_stats();
    (runs, hits, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_workloads::{fp_suite, int_suite, Scale};

    fn mini() -> Vec<Workload> {
        vec![
            int_suite(Scale::Smoke).remove(6),
            fp_suite(Scale::Smoke).remove(1),
        ]
    }

    #[test]
    fn parallel_matches_serial_cell_for_cell() {
        let ws = mini();
        let config = CoreConfig::config2();
        let specs: Vec<RunSpec> = (0..ws.len())
            .flat_map(|i| {
                [
                    RunSpec::new(i, &config, PolicyKind::Baseline),
                    RunSpec::new(i, &config, PolicyKind::DmdcGlobal),
                    RunSpec::new(i, &config, PolicyKind::DmdcLocal),
                ]
            })
            .collect();
        let serial = Engine::with_jobs(&ws, 1).run_all(&specs);
        let parallel = Engine::with_jobs(&ws, 4).run_all(&specs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload, p.workload);
            assert_eq!(s.group, p.group);
            assert_eq!(s.stats.cycles, p.stats.cycles);
            assert_eq!(s.stats.committed, p.stats.committed);
            assert_eq!(s.stats.replay_squashes, p.stats.replay_squashes);
        }
    }

    #[test]
    fn oracle_emulates_each_workload_once() {
        let ws = mini();
        let config = CoreConfig::config2();
        let mut specs = Vec::new();
        for _ in 0..5 {
            for i in 0..ws.len() {
                specs.push(RunSpec::new(i, &config, PolicyKind::DmdcGlobal));
            }
        }
        let engine = Engine::with_jobs(&ws, 2);
        engine.run_all(&specs);
        let (hits, misses) = engine.oracle_stats();
        assert_eq!(
            misses,
            ws.len() as u64,
            "one emulation per distinct workload"
        );
        assert_eq!(
            hits + misses,
            specs.len() as u64,
            "every halting cell consulted the oracle"
        );
    }

    #[test]
    fn cache_serves_repeated_cells_verbatim() {
        let ws = mini();
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/dmdc-cache-runner-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = CoreConfig::config2();
        let specs = vec![
            RunSpec::new(0, &config, PolicyKind::DmdcGlobal),
            RunSpec::new(1, &config, PolicyKind::Baseline),
        ];
        let cold_engine =
            Engine::with_jobs(&ws, 1).with_cache(Some(Arc::new(CellCache::new(&dir))));
        let cold = cold_engine.run_all(&specs);
        let c = cold_engine.cache_counters().unwrap();
        assert_eq!((c.hits, c.misses, c.stores), (0, 2, 2));
        let warm_engine =
            Engine::with_jobs(&ws, 1).with_cache(Some(Arc::new(CellCache::new(&dir))));
        let warm = warm_engine.run_all(&specs);
        let c = warm_engine.cache_counters().unwrap();
        assert_eq!((c.hits, c.misses, c.stores), (2, 0, 0));
        assert_eq!(cold, warm, "cached cells must replay byte-for-byte");
        let (hits, misses) = warm_engine.oracle_stats();
        assert_eq!((hits, misses), (0, 0), "warm cells never touch the oracle");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_resolution_prefers_override() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
