//! DMDC: Delayed Memory Dependence Checking through Age-Based Filtering —
//! the paper's contribution, implemented against the `dmdc-ooo` substrate.
//!
//! The crate provides four memory-dependence policies plugging into
//! [`dmdc_ooo::Simulator`]:
//!
//! * [`YlaPolicy`] — YLA-based filtering in front of a conventional CAM
//!   load queue (paper §3);
//! * [`DmdcPolicy`] — the full DMDC design: no associative LQ, commit-time
//!   checking through a hashed table, global or local windows, safe loads,
//!   INV-bit coherence support (paper §4);
//! * [`CheckingQueuePolicy`] — DMDC with an associative checking queue
//!   instead of the table (paper §4.4);
//! * [`BloomPolicy`] — Sethumadhavan-style bloom-filter search filtering,
//!   the paper's Figure 3 comparison point;
//!
//! plus the [`experiments`] module — a declarative registry regenerating
//! every table and figure of the paper's evaluation section through a
//! plan → run → reduce → emit pipeline — with [`runner`] (the parallel
//! engine), [`cache`] (the persistent content-addressed cell cache),
//! [`cell`] (the unified per-run metrics record) and [`report`] (tables
//! and the text/JSON/CSV emitters) underneath. [`service`] wraps the
//! whole registry in a long-running HTTP/JSON daemon (`dmdc serve`) with
//! a priority [`queue`] and [`flight`]-based single-flight coalescing of
//! duplicate cells.
//!
//! # Examples
//!
//! ```
//! use dmdc_core::{DmdcConfig, DmdcPolicy};
//! use dmdc_ooo::{CoreConfig, SimOptions, Simulator};
//! use dmdc_workloads::SyntheticKernel;
//!
//! let workload = SyntheticKernel::new(2_000).build();
//! let config = CoreConfig::config2();
//! let policy = Box::new(DmdcPolicy::new(DmdcConfig::global(&config)));
//! let mut sim = Simulator::new(&workload.program, config, policy);
//! let result = sim.run(SimOptions::default()).unwrap();
//! assert!(result.halted);
//! ```

mod bloom;
pub mod cache;
pub mod cell;
mod checking_queue;
pub mod distrib;
mod dmdc;
pub mod experiments;
pub mod faults;
pub mod flight;
pub mod fuzz;
pub mod journal;
pub mod queue;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod sampling;
pub mod service;
mod yla;

pub use bloom::{BloomPolicy, CountingBloom};
pub use cache::{CacheCounters, CellCache};
pub use cell::{CellFailure, CellResult, FailureKind};
pub use checking_queue::CheckingQueuePolicy;
pub use dmdc::{DmdcConfig, DmdcPolicy};
pub use yla::{Interleave, YlaBank, YlaPolicy};
