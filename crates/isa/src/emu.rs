use std::fmt;

use dmdc_types::{AccessSize, Addr, MemSpan};

use crate::inst::Inst;
use crate::mem::SparseMemory;
use crate::program::Program;
use crate::reg::{FReg, Reg};

/// Error conditions the functional emulator can hit.
///
/// All of them indicate a broken *workload* (or a broken timing model when
/// the same checks fire there), not a recoverable runtime situation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the text segment without halting.
    PcOutOfRange { pc: u32 },
    /// A memory access was not naturally aligned. The ISA requires natural
    /// alignment so no access ever straddles a quad word (which the DMDC
    /// bitmap logic relies on).
    Misaligned {
        pc: u32,
        addr: Addr,
        size: AccessSize,
    },
    /// The instruction limit was reached before the program halted.
    InstructionLimit { executed: u64 },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "pc @{pc} left the text segment"),
            EmuError::Misaligned { pc, addr, size } => {
                write!(f, "misaligned {size} access to {addr} at pc @{pc}")
            }
            EmuError::InstructionLimit { executed } => {
                write!(f, "program did not halt within {executed} instructions")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// One architecturally retired instruction, as reported by [`Emulator::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// Instruction index that executed.
    pub pc: u32,
    /// Instruction index control transferred to.
    pub next_pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// For memory instructions, the span accessed.
    pub mem: Option<MemSpan>,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
}

/// The architectural-level interpreter: the golden reference every timing
/// simulation must agree with.
///
/// # Examples
///
/// ```
/// use dmdc_isa::{Assembler, Emulator};
///
/// let p = Assembler::new().assemble("li x1, 7\nmuli x2, x1, 6\nhalt").unwrap();
/// let mut emu = Emulator::new(&p);
/// emu.run(100).unwrap();
/// assert_eq!(emu.int_reg(2), 42);
/// assert!(emu.halted());
/// ```
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    // Fields are crate-visible so the block-compiled silent-run engine
    // (`crate::blocks`) can execute directly against the architectural
    // state; everything outside the crate goes through the accessors.
    pub(crate) program: &'p Program,
    pub(crate) int_regs: [u64; Reg::COUNT],
    pub(crate) fp_regs: [f64; FReg::COUNT],
    pub(crate) mem: SparseMemory,
    pub(crate) pc: u32,
    pub(crate) halted: bool,
    pub(crate) retired: u64,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator positioned at the program's entry point, with the
    /// program's initial data loaded.
    pub fn new(program: &'p Program) -> Emulator<'p> {
        Emulator {
            program,
            int_regs: [0; Reg::COUNT],
            fp_regs: [0.0; FReg::COUNT],
            mem: program.initial_memory(),
            pc: program.entry(),
            halted: false,
            retired: 0,
        }
    }

    /// Reconstructs an emulator from externally captured mid-program
    /// state: program counter, register files, memory image and retired
    /// count. This is the deserialization half of the sampling engine's
    /// checkpoints — the caller guarantees the state came from an
    /// emulation of the same `program`.
    pub fn restore(
        program: &'p Program,
        pc: u32,
        int_regs: [u64; Reg::COUNT],
        fp_regs: [f64; FReg::COUNT],
        mem: SparseMemory,
        retired: u64,
    ) -> Emulator<'p> {
        Emulator {
            program,
            int_regs,
            fp_regs,
            mem,
            pc,
            halted: false,
            retired,
        }
    }

    /// All 32 integer registers.
    pub fn int_regs(&self) -> &[u64; Reg::COUNT] {
        &self.int_regs
    }

    /// All 32 FP registers.
    pub fn fp_regs(&self) -> &[f64; FReg::COUNT] {
        &self.fp_regs
    }

    /// Current value of integer register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn int_reg(&self, index: u8) -> u64 {
        self.int_regs[Reg::new(index).index()]
    }

    /// Current value of FP register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn fp_reg(&self, index: u8) -> f64 {
        self.fp_regs[FReg::new(index).index()]
    }

    /// The memory image.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Swaps this emulator's memory image with `other`.
    ///
    /// The multi-threaded reference executor ([`crate::threads`]) keeps one
    /// *shared* memory for all cores and per-core emulators whose private
    /// images are empty; a core steps by swapping the shared image in,
    /// executing, and swapping it back out. The swap is O(1) (a `Vec`
    /// pointer exchange inside [`SparseMemory`]).
    pub fn swap_memory(&mut self, other: &mut SparseMemory) {
        std::mem::swap(&mut self.mem, other);
    }

    /// Whether the program has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of retired instructions so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// A checksum over the full architectural state (registers + memory).
    /// The timing simulator computes the same function over its committed
    /// state; equality is the golden-state invariant.
    pub fn state_checksum(&self) -> u64 {
        arch_checksum(&self.int_regs, &self.fp_regs, &self.mem)
    }

    fn write_int(&mut self, rd: Reg, value: u64) {
        if !rd.is_zero() {
            self.int_regs[rd.index()] = value;
        }
    }

    fn ea(&self, base: Reg, offset: i16) -> Addr {
        Addr(self.int_regs[base.index()]).wrapping_offset(offset as i64)
    }

    fn check_aligned(&self, addr: Addr, size: AccessSize) -> Result<(), EmuError> {
        if addr.is_aligned(size.bytes()) {
            Ok(())
        } else {
            Err(EmuError::Misaligned {
                pc: self.pc,
                addr,
                size,
            })
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// See [`EmuError`]. After `halt`, further steps return the final
    /// `Retired` for the halt instruction without advancing.
    pub fn step(&mut self) -> Result<Retired, EmuError> {
        let pc = self.pc;
        let was_halted = self.halted;
        let inst = self
            .program
            .fetch(pc)
            .ok_or(EmuError::PcOutOfRange { pc })?;
        let mut next_pc = pc + 1;
        let mut mem_span = None;
        let mut taken = None;

        match inst {
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.int_regs[rs1.index()], self.int_regs[rs2.index()]);
                self.write_int(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.int_regs[rs1.index()], imm as i64 as u64);
                self.write_int(rd, v);
            }
            Inst::Lui { rd, imm } => {
                self.write_int(rd, ((imm as i64) << 16) as u64);
            }
            Inst::Load {
                size,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = self.ea(base, offset);
                self.check_aligned(addr, size)?;
                let raw = self.mem.read(addr, size);
                let v = if signed { sign_extend(raw, size) } else { raw };
                self.write_int(rd, v);
                mem_span = Some(MemSpan::new(addr, size));
            }
            Inst::Store {
                size,
                src,
                base,
                offset,
            } => {
                let addr = self.ea(base, offset);
                self.check_aligned(addr, size)?;
                self.mem.write(addr, size, self.int_regs[src.index()]);
                mem_span = Some(MemSpan::new(addr, size));
            }
            Inst::FLoad {
                size,
                fd,
                base,
                offset,
            } => {
                let addr = self.ea(base, offset);
                self.check_aligned(addr, size)?;
                let raw = self.mem.read(addr, size);
                self.fp_regs[fd.index()] = fp_from_bits(raw, size);
                mem_span = Some(MemSpan::new(addr, size));
            }
            Inst::FStore {
                size,
                src,
                base,
                offset,
            } => {
                let addr = self.ea(base, offset);
                self.check_aligned(addr, size)?;
                self.mem
                    .write(addr, size, fp_to_bits(self.fp_regs[src.index()], size));
                mem_span = Some(MemSpan::new(addr, size));
            }
            Inst::Fpu { op, fd, fs1, fs2 } => {
                self.fp_regs[fd.index()] =
                    op.eval(self.fp_regs[fs1.index()], self.fp_regs[fs2.index()]);
            }
            Inst::Fcmp { cond, rd, fs1, fs2 } => {
                let v = cond.eval(self.fp_regs[fs1.index()], self.fp_regs[fs2.index()]) as u64;
                self.write_int(rd, v);
            }
            Inst::IntToFp { fd, rs } => {
                self.fp_regs[fd.index()] = self.int_regs[rs.index()] as i64 as f64;
            }
            Inst::FpToInt { rd, fs } => {
                self.write_int(rd, fp_to_int(self.fp_regs[fs.index()]));
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let t = cond.eval(self.int_regs[rs1.index()], self.int_regs[rs2.index()]);
                taken = Some(t);
                if t {
                    next_pc = target;
                }
            }
            Inst::Jal { rd, target } => {
                self.write_int(rd, (pc + 1) as u64);
                next_pc = target;
            }
            Inst::Jalr { rd, rs1 } => {
                let target = self.int_regs[rs1.index()] as u32;
                self.write_int(rd, (pc + 1) as u64);
                next_pc = target;
            }
        }

        self.pc = next_pc;
        if !was_halted {
            self.retired += 1;
        }
        Ok(Retired {
            pc,
            next_pc,
            inst,
            mem: mem_span,
            taken,
        })
    }

    /// Runs until `halt` or until the **total** retired count reaches
    /// `max_insts`.
    ///
    /// `max_insts` is a target for [`Emulator::retired`], *not* an
    /// increment: on an emulator that has already retired `max_insts` or
    /// more instructions this returns [`EmuError::InstructionLimit`]
    /// immediately without executing anything. Use [`Emulator::run_for`]
    /// to execute a further `n` instructions from the current position.
    ///
    /// Returns the total number of retired instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError`] from [`Emulator::step`]; reaching the limit
    /// without halting is [`EmuError::InstructionLimit`].
    pub fn run(&mut self, max_insts: u64) -> Result<u64, EmuError> {
        while !self.halted {
            if self.retired >= max_insts {
                return Err(EmuError::InstructionLimit {
                    executed: self.retired,
                });
            }
            self.step()?;
        }
        Ok(self.retired)
    }

    /// Executes up to `n` further instructions from the current position
    /// (the increment counterpart of [`Emulator::run`]'s total-target
    /// semantics). Stops early at `halt` — that is a normal outcome here,
    /// not an error.
    ///
    /// Returns how many instructions actually retired, which is less than
    /// `n` exactly when the program halted.
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError`] from [`Emulator::step`].
    pub fn run_for(&mut self, n: u64) -> Result<u64, EmuError> {
        let start = self.retired;
        let target = start.saturating_add(n);
        while !self.halted && self.retired < target {
            self.step()?;
        }
        Ok(self.retired - start)
    }

    /// Runs silently — no [`Retired`] records — until `halt` or until the
    /// total retired count reaches `target`, executing whole pre-compiled
    /// straight-line blocks from `code` and falling back to
    /// [`Emulator::step`] only for the partial block at the boundary.
    ///
    /// Architectural state afterwards is bit-identical to stepping the
    /// same stretch, including on error; reaching `target` is a normal
    /// return (never [`EmuError::InstructionLimit`]), matching how the
    /// sampling engine treats the end of a silent stretch. `code` must be
    /// compiled from this emulator's program.
    ///
    /// # Errors
    ///
    /// [`EmuError::PcOutOfRange`] and [`EmuError::Misaligned`] exactly as
    /// [`Emulator::step`] would raise them.
    pub fn run_silent(
        &mut self,
        code: &crate::blocks::BlockCode,
        target: u64,
    ) -> Result<crate::blocks::SilentStats, EmuError> {
        crate::blocks::run_silent(self, code, target)
    }

    /// Runs until `halt` or until the total retired count reaches
    /// `target`, reporting every retirement to `obs` — the fast
    /// replacement for a `step()` + observe loop when the observer only
    /// needs the events a [`SilentObserver`](crate::SilentObserver)
    /// exposes, not full [`Retired`] records.
    ///
    /// Architectural state afterwards is bit-identical to stepping the
    /// same stretch (including on error), the observer sees exactly the
    /// events a `step()` stream would expose in the same order, and a
    /// faulting instruction is not observed (a `step()` loop's error
    /// return pre-empts observation the same way). Reaching `target` is a
    /// normal return. `code` must be compiled from this emulator's
    /// program.
    ///
    /// # Errors
    ///
    /// [`EmuError::PcOutOfRange`] and [`EmuError::Misaligned`] exactly as
    /// [`Emulator::step`] would raise them.
    pub fn run_observed<O: crate::blocks::SilentObserver>(
        &mut self,
        code: &crate::blocks::BlockCode,
        target: u64,
        obs: &mut O,
    ) -> Result<(), EmuError> {
        crate::blocks::run_observed(self, code, target, obs)
    }
}

/// Sign-extends the low bytes of `raw` to 64 bits.
pub fn sign_extend(raw: u64, size: AccessSize) -> u64 {
    match size {
        AccessSize::B1 => raw as u8 as i8 as i64 as u64,
        AccessSize::B2 => raw as u16 as i16 as i64 as u64,
        AccessSize::B4 => raw as u32 as i32 as i64 as u64,
        AccessSize::B8 => raw,
    }
}

/// Interprets raw little-endian bytes as an FP value (`f32` widened for
/// 4-byte accesses).
pub fn fp_from_bits(raw: u64, size: AccessSize) -> f64 {
    match size {
        AccessSize::B4 => f32::from_bits(raw as u32) as f64,
        AccessSize::B8 => f64::from_bits(raw),
        _ => unreachable!("fp accesses are 4 or 8 bytes"),
    }
}

/// Converts an FP value to its memory representation (`f32` narrowed for
/// 4-byte accesses).
pub fn fp_to_bits(value: f64, size: AccessSize) -> u64 {
    match size {
        AccessSize::B4 => (value as f32).to_bits() as u64,
        AccessSize::B8 => value.to_bits(),
        _ => unreachable!("fp accesses are 4 or 8 bytes"),
    }
}

/// Truncating, saturating double→signed-integer conversion; NaN maps to 0.
pub fn fp_to_int(value: f64) -> u64 {
    if value.is_nan() {
        0
    } else if value >= i64::MAX as f64 {
        i64::MAX as u64
    } else if value <= i64::MIN as f64 {
        i64::MIN as u64
    } else {
        value as i64 as u64
    }
}

/// The architectural-state checksum shared by the emulator and the timing
/// simulator's committed state.
pub fn arch_checksum(int_regs: &[u64; 32], fp_regs: &[f64; 32], mem: &SparseMemory) -> u64 {
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &r in int_regs {
        for b in r.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    for &r in fp_regs {
        for b in r.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h ^ mem.checksum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn run_asm(src: &str) -> Emulator<'_> {
        // Leak the program so the emulator can borrow it in a helper; tests
        // only create a handful.
        let p = Box::leak(Box::new(Assembler::new().assemble(src).expect("assembles")));
        let mut e = Emulator::new(p);
        e.run(1_000_000).expect("runs to halt");
        e
    }

    #[test]
    fn arithmetic_loop() {
        let e = run_asm(
            "        li   x1, 10
                     li   x2, 0
             loop:   add  x2, x2, x1
                     addi x1, x1, -1
                     bne  x1, x0, loop
                     halt",
        );
        assert_eq!(e.int_reg(2), 55);
    }

    #[test]
    fn memory_roundtrip_with_sizes() {
        let e = run_asm(
            "        li   x1, 0x1000
                     li   x2, -2
                     sw   x2, 0(x1)
                     lw   x3, 0(x1)
                     lwu  x4, 0(x1)
                     lh   x5, 0(x1)
                     lhu  x6, 0(x1)
                     lb   x7, 0(x1)
                     lbu  x8, 0(x1)
                     halt",
        );
        assert_eq!(e.int_reg(3) as i64, -2);
        assert_eq!(e.int_reg(4), 0xFFFF_FFFE);
        assert_eq!(e.int_reg(5) as i64, -2);
        assert_eq!(e.int_reg(6), 0xFFFE);
        assert_eq!(e.int_reg(7) as i64, -2);
        assert_eq!(e.int_reg(8), 0xFE);
    }

    #[test]
    fn fp_pipeline() {
        let e = run_asm(
            "        li   x1, 9
                     i2f  f1, x1
                     fsqrt f2, f1
                     li   x2, 0x2000
                     fsd  f2, 0(x2)
                     fld  f3, 0(x2)
                     f2i  x3, f3
                     halt",
        );
        assert_eq!(e.int_reg(3), 3);
        assert_eq!(e.fp_reg(3), 3.0);
    }

    #[test]
    fn fp_word_accesses_narrow_to_f32() {
        let e = run_asm(
            "        li   x1, 0x3000
                     li   x2, 1
                     i2f  f1, x2
                     li   x3, 3
                     i2f  f2, x3
                     fdiv f3, f1, f2
                     fsw  f3, 0(x1)
                     flw  f4, 0(x1)
                     halt",
        );
        assert_eq!(e.fp_reg(4), (1.0f32 / 3.0f32) as f64);
    }

    #[test]
    fn jal_and_jalr_build_a_call() {
        let e = run_asm(
            "        li   x10, 5
                     jal  x31, double
                     add  x11, x10, x0
                     halt
             double: add  x10, x10, x10
                     jr   x31",
        );
        assert_eq!(e.int_reg(11), 10);
    }

    #[test]
    fn misaligned_access_errors() {
        let p = Assembler::new()
            .assemble("li x1, 0x1001\nlw x2, 0(x1)\nhalt")
            .unwrap();
        let mut e = Emulator::new(&p);
        let err = e.run(100).unwrap_err();
        assert!(matches!(err, EmuError::Misaligned { .. }), "{err}");
    }

    #[test]
    fn runaway_program_hits_limit() {
        let p = Assembler::new().assemble("loop: j loop\nhalt").unwrap();
        let mut e = Emulator::new(&p);
        let err = e.run(1000).unwrap_err();
        assert_eq!(err, EmuError::InstructionLimit { executed: 1000 });
    }

    #[test]
    fn x0_is_immutable() {
        let e = run_asm("addi x0, x0, 5\nadd x1, x0, x0\nhalt");
        assert_eq!(e.int_reg(1), 0);
    }

    #[test]
    fn checksum_reflects_state() {
        let a = run_asm("li x1, 1\nhalt");
        let b = run_asm("li x1, 2\nhalt");
        let c = run_asm("li x1, 1\nhalt");
        assert_ne!(a.state_checksum(), b.state_checksum());
        assert_eq!(a.state_checksum(), c.state_checksum());
    }

    #[test]
    fn fp_to_int_saturates() {
        assert_eq!(fp_to_int(f64::NAN), 0);
        assert_eq!(fp_to_int(1e300), i64::MAX as u64);
        assert_eq!(fp_to_int(-1e300), i64::MIN as u64);
        assert_eq!(fp_to_int(-2.9), (-2i64) as u64);
    }

    #[test]
    fn step_after_halt_is_stable() {
        let p = Assembler::new().assemble("halt").unwrap();
        let mut e = Emulator::new(&p);
        e.step().unwrap();
        assert!(e.halted());
        let retired = e.retired();
        e.step().unwrap();
        assert_eq!(e.retired(), retired, "halt does not retire twice");
        assert_eq!(e.pc(), 0);
    }

    #[test]
    fn run_is_a_total_target_and_run_for_an_increment() {
        // Pins the boundary the sampler depends on at the warming-horizon
        // edge: after `run(k)` stops with InstructionLimit the emulator
        // has retired exactly k — not k-1, not k+1 — and a further
        // `run(k)` on the same emulator executes nothing, while
        // `run_for(n)` always advances by n from wherever it stands.
        let p = Assembler::new()
            .assemble("loop: addi x1, x1, 1\nj loop")
            .unwrap();
        let mut e = Emulator::new(&p);
        let err = e.run(10).unwrap_err();
        assert_eq!(err, EmuError::InstructionLimit { executed: 10 });
        assert_eq!(e.retired(), 10, "run(k) stops at exactly k total");

        // Same target again: a total, not an increment — nothing runs.
        let err = e.run(10).unwrap_err();
        assert_eq!(err, EmuError::InstructionLimit { executed: 10 });
        assert_eq!(e.retired(), 10);

        // The increment form advances by n from the current position.
        assert_eq!(e.run_for(5).unwrap(), 5);
        assert_eq!(e.retired(), 15);

        // run_for stops quietly at halt and reports the shortfall.
        let p = Assembler::new().assemble("addi x1, x1, 1\nhalt").unwrap();
        let mut e = Emulator::new(&p);
        assert_eq!(e.run_for(10).unwrap(), 2, "addi + halt then stop");
        assert!(e.halted());
        assert_eq!(e.run_for(10).unwrap(), 0, "halted emulator stays put");
    }

    #[test]
    fn taken_flag_reported() {
        let p = Assembler::new()
            .assemble("li x1, 1\nbeq x1, x0, skip\nbne x1, x0, skip\nskip: halt")
            .unwrap();
        let mut e = Emulator::new(&p);
        // li expands to one instruction here (fits i16).
        e.step().unwrap();
        let not_taken = e.step().unwrap();
        assert_eq!(not_taken.taken, Some(false));
        let taken = e.step().unwrap();
        assert_eq!(taken.taken, Some(true));
        assert_eq!(taken.next_pc, 3);
    }
}
