//! A small RISC instruction set, assembler and functional emulator.
//!
//! The DMDC paper evaluates on SPEC CPU2000 binaries running under
//! SimpleScalar's PISA. Neither is available here, so this crate provides the
//! substrate the reproduction's workloads are written in:
//!
//! * [`Inst`] — a load/store RISC ISA with 32 integer and 32 floating-point
//!   registers, 1/2/4/8-byte memory accesses, integer and floating-point
//!   arithmetic and compare-and-branch control flow.
//! * [`encode`]/[`decode`] — a fixed 32-bit binary encoding (round-trippable,
//!   property-tested) so instruction fetch has real bytes to read.
//! * [`Assembler`] — a two-pass text assembler with labels, used by the
//!   workload crate to keep benchmark kernels readable.
//! * [`Emulator`] — an architectural-level interpreter. The timing simulator
//!   executes values through physical registers on its own; the emulator is
//!   the *golden reference* that every timing run must match.
//! * [`BlockCode`] — a program pre-decoded into straight-line runs of
//!   flattened micro-ops, driven by [`Emulator::run_silent`]: the
//!   bit-identical fast path the sampling engine uses to fast-forward
//!   through the silent stretch before each detailed window.
//!
//! # Examples
//!
//! ```
//! use dmdc_isa::{Assembler, Emulator, Program};
//!
//! let program = Assembler::new()
//!     .assemble(
//!         "        li   x1, 5
//!                  li   x2, 0
//!          loop:   add  x2, x2, x1
//!                  addi x1, x1, -1
//!                  bne  x1, x0, loop
//!                  halt",
//!     )
//!     .unwrap();
//! let mut emu = Emulator::new(&program);
//! emu.run(10_000).unwrap();
//! assert_eq!(emu.int_reg(2), 5 + 4 + 3 + 2 + 1);
//! ```

mod asm;
mod blocks;
mod emu;
mod encode;
mod inst;
mod mem;
mod program;
mod reg;
mod threads;

pub use asm::{AsmError, Assembler};
pub use blocks::{BlockCode, SilentObserver, SilentStats};
pub use emu::{
    arch_checksum, fp_from_bits, fp_to_bits, fp_to_int, sign_extend, EmuError, Emulator, Retired,
};
pub use encode::{decode, encode, DecodeError};
pub use inst::{AluOp, BranchCond, FpuOp, Inst, InstClass};
pub use mem::SparseMemory;
pub use program::{Program, TEXT_BASE};
pub use reg::{ArchReg, FReg, Reg};
pub use threads::{enumerate_outcomes, EnumError, EnumLimits, SharedSystem};
