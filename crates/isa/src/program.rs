use std::fmt;

use dmdc_types::Addr;

use crate::inst::Inst;
use crate::mem::SparseMemory;

/// Base address of the text segment. Instruction `pc` lives at
/// `TEXT_BASE + 4 * pc`, which is what the instruction cache is probed with.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// An executable program: text, initial data and an entry point.
///
/// Programs come out of the [`Assembler`](crate::Assembler) or are built
/// directly from [`Inst`] vectors; workloads attach initial data segments
/// before handing the program to the emulator or the timing simulator.
///
/// # Examples
///
/// ```
/// use dmdc_isa::{Inst, Program};
/// use dmdc_types::Addr;
///
/// let p = Program::new("demo", vec![Inst::Halt])
///     .with_data(Addr(0x1_0000), vec![1, 2, 3, 4]);
/// assert_eq!(p.len(), 1);
/// let mem = p.initial_memory();
/// assert_eq!(mem.read_byte(Addr(0x1_0000)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    data: Vec<(Addr, Vec<u8>)>,
    entry: u32,
}

impl Program {
    /// Creates a program from raw instructions, entry point 0.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty: a program must at least halt.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Program {
        assert!(
            !insts.is_empty(),
            "a program needs at least one instruction"
        );
        Program {
            name: name.into(),
            insts,
            data: Vec::new(),
            entry: 0,
        }
    }

    /// Adds an initial data segment (consuming builder).
    pub fn with_data(mut self, base: Addr, bytes: Vec<u8>) -> Program {
        self.data.push((base, bytes));
        self
    }

    /// Sets the entry instruction index (consuming builder).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn with_entry(mut self, entry: u32) -> Program {
        assert!(
            (entry as usize) < self.insts.len(),
            "entry point out of range"
        );
        self.entry = entry;
        self
    }

    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at index `pc`, or `None` past the end of text.
    pub fn fetch(&self, pc: u32) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the text segment is empty (never true: see [`Program::new`]).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry instruction index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// All instructions, in text order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The initial data segments, as `(base address, bytes)` pairs in the
    /// order they were added. Content digests (e.g. the experiment cell
    /// cache's workload key) hash these together with the encoded text.
    pub fn data_segments(&self) -> &[(Addr, Vec<u8>)] {
        &self.data
    }

    /// The byte address of instruction `pc` in the simulated address space
    /// (what the I-cache sees).
    pub fn text_addr(pc: u32) -> Addr {
        Addr(TEXT_BASE + 4 * pc as u64)
    }

    /// Builds the initial memory image: all data segments applied to a fresh
    /// [`SparseMemory`].
    pub fn initial_memory(&self) -> SparseMemory {
        let mut mem = SparseMemory::new();
        for (base, bytes) in &self.data {
            mem.write_bytes(*base, bytes);
        }
        mem
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {} ({} insts, entry @{})",
            self.name,
            self.insts.len(),
            self.entry
        )?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "  {i:5}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst};
    use crate::reg::Reg;

    fn halt_program() -> Program {
        Program::new("t", vec![Inst::Nop, Inst::Halt])
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = halt_program();
        assert_eq!(p.fetch(0), Some(Inst::Nop));
        assert_eq!(p.fetch(1), Some(Inst::Halt));
        assert_eq!(p.fetch(2), None);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_program_rejected() {
        Program::new("t", vec![]);
    }

    #[test]
    #[should_panic(expected = "entry point out of range")]
    fn bad_entry_rejected() {
        halt_program().with_entry(5);
    }

    #[test]
    fn text_addresses_are_word_spaced() {
        assert_eq!(Program::text_addr(0), Addr(TEXT_BASE));
        assert_eq!(Program::text_addr(3), Addr(TEXT_BASE + 12));
    }

    #[test]
    fn initial_memory_applies_segments() {
        let p = halt_program()
            .with_data(Addr(0x1000), vec![0xAA])
            .with_data(Addr(0x2000), vec![0xBB, 0xCC]);
        let mem = p.initial_memory();
        assert_eq!(mem.read_byte(Addr(0x1000)), 0xAA);
        assert_eq!(mem.read_byte(Addr(0x2001)), 0xCC);
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new(
            "d",
            vec![Inst::Alu {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                rs2: Reg::new(3),
            }],
        );
        let s = p.to_string();
        assert!(s.contains("program d"));
        assert!(s.contains("Add x1, x2, x3"));
    }
}
