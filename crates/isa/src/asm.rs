//! A two-pass text assembler for the mini ISA.
//!
//! Syntax is RISC-V-flavoured: one instruction per line, `#` comments,
//! `label:` definitions, `offset(base)` memory operands. Registers are
//! `x0`–`x31` (alias `zero` for `x0`) and `f0`–`f31`.
//!
//! Supported pseudo-instructions: `li` (one or two real instructions
//! depending on the immediate), `mv`, `fmv`, `neg`, `not`, `j`, `jr`,
//! `bgt`, `ble`, `bgtu`, `bleu`.

use std::collections::HashMap;
use std::fmt;

use dmdc_types::AccessSize;

use crate::inst::{AluOp, BranchCond, FcmpCond, FpuOp, Inst};
use crate::program::Program;
use crate::reg::{FReg, Reg};

/// An assembly error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// The assembler. Stateless today; a struct so options can grow without
/// breaking the API.
///
/// # Examples
///
/// ```
/// use dmdc_isa::Assembler;
///
/// let program = Assembler::new()
///     .assemble("li x1, 3\naddi x1, x1, 4\nhalt")?;
/// assert_eq!(program.len(), 3);
/// # Ok::<(), dmdc_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    _private: (),
}

/// An instruction whose control-flow target may still be a label.
#[derive(Debug, Clone)]
enum Pending {
    Ready(Inst),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
        line: usize,
    },
    Jal {
        rd: Reg,
        label: String,
        line: usize,
    },
}

impl Assembler {
    /// Creates an assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Assembles `src` into a program named `"asm"`.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered.
    pub fn assemble(&self, src: &str) -> Result<Program, AsmError> {
        self.assemble_named("asm", src)
    }

    /// Assembles `src` into a program with the given name.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered.
    pub fn assemble_named(&self, name: &str, src: &str) -> Result<Program, AsmError> {
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut pending: Vec<Pending> = Vec::new();

        for (line_no, raw) in src.lines().enumerate() {
            let line_no = line_no + 1;
            let mut text = raw;
            if let Some(i) = text.find('#') {
                text = &text[..i];
            }
            let mut text = text.trim();

            // Peel off leading labels.
            while let Some(colon) = text.find(':') {
                let (label, rest) = text.split_at(colon);
                let label = label.trim();
                if label.is_empty() || !is_ident(label) {
                    return Err(err(line_no, format!("bad label `{label}`")));
                }
                if labels
                    .insert(label.to_string(), pending.len() as u32)
                    .is_some()
                {
                    return Err(err(line_no, format!("duplicate label `{label}`")));
                }
                text = rest[1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            parse_inst(text, line_no, &mut pending)?;
        }

        if pending.is_empty() {
            return Err(err(0, "empty program".to_string()));
        }
        if pending.len() >= (1 << 16) {
            return Err(err(
                0,
                format!("program too large: {} instructions", pending.len()),
            ));
        }

        let insts = pending
            .into_iter()
            .map(|p| match p {
                Pending::Ready(i) => Ok(i),
                Pending::Branch {
                    cond,
                    rs1,
                    rs2,
                    label,
                    line,
                } => {
                    let target = *labels
                        .get(&label)
                        .ok_or_else(|| err(line, format!("undefined label `{label}`")))?;
                    Ok(Inst::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    })
                }
                Pending::Jal { rd, label, line } => {
                    let target = *labels
                        .get(&label)
                        .ok_or_else(|| err(line, format!("undefined label `{label}`")))?;
                    Ok(Inst::Jal { rd, target })
                }
            })
            .collect::<Result<Vec<_>, AsmError>>()?;

        Ok(Program::new(name, insts))
    }
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    if tok == "zero" {
        return Ok(Reg::ZERO);
    }
    let idx = tok
        .strip_prefix('x')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| err(line, format!("expected integer register, got `{tok}`")))?;
    Ok(Reg::new(idx))
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, AsmError> {
    let idx = tok
        .strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| err(line, format!("expected fp register, got `{tok}`")))?;
    Ok(FReg::new(idx))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad integer `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_imm16(tok: &str, line: usize) -> Result<i16, AsmError> {
    let v = parse_int(tok, line)?;
    i16::try_from(v).map_err(|_| err(line, format!("immediate {v} does not fit in 16 bits")))
}

/// Parses `offset(base)`.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line, format!("unbalanced parens in `{tok}`")))?;
    let off_str = tok[..open].trim();
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_imm16(off_str, line)?
    };
    let base = parse_reg(tok[open + 1..close].trim(), line)?;
    Ok((offset, base))
}

fn alu_op_from_name(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond_from_name(name: &str) -> Option<BranchCond> {
    Some(match name {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn fpu_op_from_name(name: &str) -> Option<FpuOp> {
    Some(match name {
        "fadd" => FpuOp::Fadd,
        "fsub" => FpuOp::Fsub,
        "fmul" => FpuOp::Fmul,
        "fdiv" => FpuOp::Fdiv,
        "fmin" => FpuOp::Fmin,
        "fmax" => FpuOp::Fmax,
        _ => return None,
    })
}

fn load_from_name(name: &str) -> Option<(AccessSize, bool)> {
    Some(match name {
        "lb" => (AccessSize::B1, true),
        "lbu" => (AccessSize::B1, false),
        "lh" => (AccessSize::B2, true),
        "lhu" => (AccessSize::B2, false),
        "lw" => (AccessSize::B4, true),
        "lwu" => (AccessSize::B4, false),
        "ld" => (AccessSize::B8, true),
        _ => return None,
    })
}

fn store_from_name(name: &str) -> Option<AccessSize> {
    Some(match name {
        "sb" => AccessSize::B1,
        "sh" => AccessSize::B2,
        "sw" => AccessSize::B4,
        "sd" => AccessSize::B8,
        _ => return None,
    })
}

fn parse_inst(text: &str, line: usize, out: &mut Vec<Pending>) -> Result<(), AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(|s| s.trim()).collect()
    };

    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    // Register-register ALU.
    if let Some(op) = alu_op_from_name(mnemonic) {
        want(3)?;
        out.push(Pending::Ready(Inst::Alu {
            op,
            rd: parse_reg(ops[0], line)?,
            rs1: parse_reg(ops[1], line)?,
            rs2: parse_reg(ops[2], line)?,
        }));
        return Ok(());
    }
    // Register-immediate ALU: `<op>i`, with `sltui` for sltu.
    if let Some(base) = mnemonic.strip_suffix('i') {
        if let Some(op) = alu_op_from_name(base) {
            want(3)?;
            out.push(Pending::Ready(Inst::AluImm {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: parse_imm16(ops[2], line)?,
            }));
            return Ok(());
        }
    }
    if let Some((size, signed)) = load_from_name(mnemonic) {
        want(2)?;
        let rd = parse_reg(ops[0], line)?;
        let (offset, base) = parse_mem_operand(ops[1], line)?;
        out.push(Pending::Ready(Inst::Load {
            size,
            signed,
            rd,
            base,
            offset,
        }));
        return Ok(());
    }
    if let Some(size) = store_from_name(mnemonic) {
        want(2)?;
        let src = parse_reg(ops[0], line)?;
        let (offset, base) = parse_mem_operand(ops[1], line)?;
        out.push(Pending::Ready(Inst::Store {
            size,
            src,
            base,
            offset,
        }));
        return Ok(());
    }
    if let Some(op) = fpu_op_from_name(mnemonic) {
        want(3)?;
        out.push(Pending::Ready(Inst::Fpu {
            op,
            fd: parse_freg(ops[0], line)?,
            fs1: parse_freg(ops[1], line)?,
            fs2: parse_freg(ops[2], line)?,
        }));
        return Ok(());
    }
    if let Some(cond) = branch_cond_from_name(mnemonic) {
        want(3)?;
        out.push(Pending::Branch {
            cond,
            rs1: parse_reg(ops[0], line)?,
            rs2: parse_reg(ops[1], line)?,
            label: ops[2].to_string(),
            line,
        });
        return Ok(());
    }

    match mnemonic {
        "lui" => {
            want(2)?;
            out.push(Pending::Ready(Inst::Lui {
                rd: parse_reg(ops[0], line)?,
                imm: parse_imm16(ops[1], line)?,
            }));
        }
        "li" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let v = parse_int(ops[1], line)?;
            expand_li(rd, v, line, out)?;
        }
        "flw" | "fld" => {
            want(2)?;
            let size = if mnemonic == "flw" {
                AccessSize::B4
            } else {
                AccessSize::B8
            };
            let fd = parse_freg(ops[0], line)?;
            let (offset, base) = parse_mem_operand(ops[1], line)?;
            out.push(Pending::Ready(Inst::FLoad {
                size,
                fd,
                base,
                offset,
            }));
        }
        "fsw" | "fsd" => {
            want(2)?;
            let size = if mnemonic == "fsw" {
                AccessSize::B4
            } else {
                AccessSize::B8
            };
            let src = parse_freg(ops[0], line)?;
            let (offset, base) = parse_mem_operand(ops[1], line)?;
            out.push(Pending::Ready(Inst::FStore {
                size,
                src,
                base,
                offset,
            }));
        }
        "fsqrt" => {
            want(2)?;
            let fd = parse_freg(ops[0], line)?;
            let fs1 = parse_freg(ops[1], line)?;
            out.push(Pending::Ready(Inst::Fpu {
                op: FpuOp::Fsqrt,
                fd,
                fs1,
                fs2: fs1,
            }));
        }
        "feq" | "flt" | "fle" => {
            want(3)?;
            let cond = match mnemonic {
                "feq" => FcmpCond::Feq,
                "flt" => FcmpCond::Flt,
                _ => FcmpCond::Fle,
            };
            out.push(Pending::Ready(Inst::Fcmp {
                cond,
                rd: parse_reg(ops[0], line)?,
                fs1: parse_freg(ops[1], line)?,
                fs2: parse_freg(ops[2], line)?,
            }));
        }
        "i2f" => {
            want(2)?;
            out.push(Pending::Ready(Inst::IntToFp {
                fd: parse_freg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
            }));
        }
        "f2i" => {
            want(2)?;
            out.push(Pending::Ready(Inst::FpToInt {
                rd: parse_reg(ops[0], line)?,
                fs: parse_freg(ops[1], line)?,
            }));
        }
        // Reversed-operand branch pseudos.
        "bgt" | "ble" | "bgtu" | "bleu" => {
            want(3)?;
            let cond = match mnemonic {
                "bgt" => BranchCond::Lt,
                "ble" => BranchCond::Ge,
                "bgtu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            out.push(Pending::Branch {
                cond,
                rs1: parse_reg(ops[1], line)?,
                rs2: parse_reg(ops[0], line)?,
                label: ops[2].to_string(),
                line,
            });
        }
        "jal" => {
            want(2)?;
            out.push(Pending::Jal {
                rd: parse_reg(ops[0], line)?,
                label: ops[1].to_string(),
                line,
            });
        }
        "j" => {
            want(1)?;
            out.push(Pending::Jal {
                rd: Reg::ZERO,
                label: ops[0].to_string(),
                line,
            });
        }
        "jalr" => {
            want(2)?;
            out.push(Pending::Ready(Inst::Jalr {
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
            }));
        }
        "jr" => {
            want(1)?;
            out.push(Pending::Ready(Inst::Jalr {
                rd: Reg::ZERO,
                rs1: parse_reg(ops[0], line)?,
            }));
        }
        "mv" => {
            want(2)?;
            out.push(Pending::Ready(Inst::AluImm {
                op: AluOp::Add,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: 0,
            }));
        }
        "fmv" => {
            want(2)?;
            let fd = parse_freg(ops[0], line)?;
            let fs = parse_freg(ops[1], line)?;
            out.push(Pending::Ready(Inst::Fpu {
                op: FpuOp::Fmin,
                fd,
                fs1: fs,
                fs2: fs,
            }));
        }
        "neg" => {
            want(2)?;
            out.push(Pending::Ready(Inst::Alu {
                op: AluOp::Sub,
                rd: parse_reg(ops[0], line)?,
                rs1: Reg::ZERO,
                rs2: parse_reg(ops[1], line)?,
            }));
        }
        "not" => {
            want(2)?;
            out.push(Pending::Ready(Inst::AluImm {
                op: AluOp::Xor,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: -1,
            }));
        }
        "nop" => {
            want(0)?;
            out.push(Pending::Ready(Inst::Nop));
        }
        "halt" => {
            want(0)?;
            out.push(Pending::Ready(Inst::Halt));
        }
        _ => return Err(err(line, format!("unknown mnemonic `{mnemonic}`"))),
    }
    Ok(())
}

/// Expands `li rd, v` into one `addi` or a `lui`+`addi` pair.
fn expand_li(rd: Reg, v: i64, line: usize, out: &mut Vec<Pending>) -> Result<(), AsmError> {
    if let Ok(imm) = i16::try_from(v) {
        out.push(Pending::Ready(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm,
        }));
        return Ok(());
    }
    let lo = v as i16;
    let hi = (v - lo as i64) >> 16;
    let hi = i16::try_from(hi).map_err(|_| {
        err(
            line,
            format!("li immediate {v} out of two-instruction range"),
        )
    })?;
    out.push(Pending::Ready(Inst::Lui { rd, imm: hi }));
    if lo != 0 {
        out.push(Pending::Ready(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm: lo,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::Emulator;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    fn asm_err(src: &str) -> AsmError {
        Assembler::new().assemble(src).expect_err("should fail")
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = asm("start: beq x0, x0, end
                    nop
             end:   bne x0, x1, start
                    halt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                target: 2
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::ZERO,
                rs2: Reg::new(1),
                target: 0
            })
        );
    }

    #[test]
    fn label_on_its_own_line() {
        let p = asm("top:\n  j top\n  halt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 0
            })
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = asm("# header\n\n  nop # trailing\n  halt");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn li_small_is_single_instruction() {
        let p = asm("li x1, -5\nhalt");
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.fetch(0),
            Some(Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::ZERO,
                imm: -5
            })
        );
    }

    #[test]
    fn li_large_expands_and_evaluates() {
        for &v in &[
            0x1234_5678i64,
            -0x1234_5678,
            0x7FFF_0000,
            65536,
            0x10000 - 1,
            0x8000,
        ] {
            let src = format!("li x1, {v}\nhalt");
            let p = asm(&src);
            let mut e = Emulator::new(&p);
            e.run(10).unwrap();
            assert_eq!(e.int_reg(1) as i64, v, "li {v:#x}");
        }
    }

    #[test]
    fn li_out_of_range_is_error() {
        let e = asm_err("li x1, 0x100000000\nhalt");
        assert!(e.msg.contains("out of two-instruction range"), "{e}");
    }

    #[test]
    fn mem_operands_parse() {
        let p = asm("lw x1, 8(x2)\nsw x1, -4(x3)\nld x4, (x5)\nhalt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::Load {
                size: AccessSize::B4,
                signed: true,
                rd: Reg::new(1),
                base: Reg::new(2),
                offset: 8
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Store {
                size: AccessSize::B4,
                src: Reg::new(1),
                base: Reg::new(3),
                offset: -4
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::Load {
                size: AccessSize::B8,
                signed: true,
                rd: Reg::new(4),
                base: Reg::new(5),
                offset: 0
            })
        );
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = asm("mv x1, x2\nneg x3, x4\nnot x5, x6\njr x31\nhalt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                imm: 0
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Alu {
                op: AluOp::Sub,
                rd: Reg::new(3),
                rs1: Reg::ZERO,
                rs2: Reg::new(4)
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::AluImm {
                op: AluOp::Xor,
                rd: Reg::new(5),
                rs1: Reg::new(6),
                imm: -1
            })
        );
        assert_eq!(
            p.fetch(3),
            Some(Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::new(31)
            })
        );
    }

    #[test]
    fn reversed_branch_pseudos() {
        let p = asm("t: bgt x1, x2, t\nble x1, x2, t\nhalt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::Branch {
                cond: BranchCond::Lt,
                rs1: Reg::new(2),
                rs2: Reg::new(1),
                target: 0
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Branch {
                cond: BranchCond::Ge,
                rs1: Reg::new(2),
                rs2: Reg::new(1),
                target: 0
            })
        );
    }

    #[test]
    fn zero_alias() {
        let p = asm("add x1, zero, zero\nhalt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::Alu {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::ZERO,
                rs2: Reg::ZERO
            })
        );
    }

    #[test]
    fn fp_mnemonics() {
        let p = asm("fadd f1, f2, f3\nfsqrt f4, f5\nfeq x1, f1, f2\ni2f f0, x1\nf2i x2, f0\nfmv f6, f7\nhalt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::Fpu {
                op: FpuOp::Fadd,
                fd: FReg::new(1),
                fs1: FReg::new(2),
                fs2: FReg::new(3)
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Fpu {
                op: FpuOp::Fsqrt,
                fd: FReg::new(4),
                fs1: FReg::new(5),
                fs2: FReg::new(5)
            })
        );
        assert_eq!(
            p.fetch(5),
            Some(Inst::Fpu {
                op: FpuOp::Fmin,
                fd: FReg::new(6),
                fs1: FReg::new(7),
                fs2: FReg::new(7)
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(asm_err("nop\nbogus x1\nhalt").line, 2);
        assert_eq!(asm_err("addi x1, x2\nhalt").line, 1);
        assert_eq!(asm_err("lw x1, 4[x2]\nhalt").line, 1);
    }

    #[test]
    fn undefined_label_is_error() {
        let e = asm_err("beq x0, x0, nowhere\nhalt");
        assert!(e.msg.contains("undefined label"), "{e}");
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = asm_err("a: nop\na: halt");
        assert!(e.msg.contains("duplicate label"), "{e}");
    }

    #[test]
    fn bad_register_is_error() {
        assert!(asm_err("add x1, x2, x32\nhalt").msg.contains("register"));
        assert!(asm_err("fadd f1, f2, x3\nhalt").msg.contains("fp register"));
    }

    #[test]
    fn immediate_range_checked() {
        let e = asm_err("addi x1, x0, 40000\nhalt");
        assert!(e.msg.contains("does not fit"), "{e}");
    }

    #[test]
    fn empty_program_is_error() {
        let e = asm_err("# nothing here\n");
        assert!(e.msg.contains("empty program"), "{e}");
    }

    #[test]
    fn sltui_parses() {
        let p = asm("sltui x1, x2, 10\nhalt");
        assert_eq!(
            p.fetch(0),
            Some(Inst::AluImm {
                op: AluOp::Sltu,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                imm: 10
            })
        );
    }
}
