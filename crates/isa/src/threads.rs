//! Shared-memory multi-threaded execution over per-core [`Emulator`]s, and
//! the operational memory-model reference executor.
//!
//! Two pieces live here:
//!
//! * [`SharedSystem`] — N emulators (one per core, each running its own
//!   [`Program`]) stepping against one shared [`SparseMemory`]. A core
//!   executes by swapping the shared image into its emulator, stepping, and
//!   swapping it back out, so every core's loads and stores hit the same
//!   bytes with exact single-core semantics. This is both the functional
//!   substrate the multi-core timing simulator checks against and the state
//!   the reference enumerator explores.
//! * [`enumerate_outcomes`] — an *operational* sequential-consistency
//!   reference in the spirit of Zhang et al.'s instantaneous-instruction
//!   framework: instructions execute atomically in some interleaving of the
//!   per-core program orders, and the executor enumerates every reachable
//!   final state by depth-first search over core choices. Memoization on the
//!   full architectural state (QED-style pruned enumeration) collapses the
//!   exponential schedule space onto the much smaller state space, and also
//!   terminates exploration of spinning schedules (a repeated state proves
//!   the branch adds nothing new).
//!
//! The timing simulator's litmus harness asserts that every outcome it
//! observes is a member of the set this module computes; a non-member is a
//! sequential-consistency violation in the timing model.

use std::collections::BTreeSet;
use std::collections::HashSet;

use crate::emu::{EmuError, Emulator};
use crate::mem::SparseMemory;
use crate::program::Program;

/// N cores stepping their own programs against one shared memory.
///
/// # Examples
///
/// ```
/// use dmdc_isa::{Assembler, SharedSystem};
///
/// let p0 = Assembler::new().assemble("li x1, 0x2000\nli x2, 7\nsw x2, 0(x1)\nhalt").unwrap();
/// let p1 = Assembler::new().assemble("li x1, 0x2000\nlw x20, 0(x1)\nhalt").unwrap();
/// let mut sys = SharedSystem::new(&[&p0, &p1]);
/// // Writer first, then reader: the reader observes the store.
/// while !sys.core(0).halted() { sys.step_core(0).unwrap(); }
/// while !sys.core(1).halted() { sys.step_core(1).unwrap(); }
/// assert_eq!(sys.core(1).int_reg(20), 7);
/// ```
#[derive(Clone)]
pub struct SharedSystem<'p> {
    cores: Vec<Emulator<'p>>,
    mem: SparseMemory,
}

impl<'p> SharedSystem<'p> {
    /// Builds a system with one core per program. The shared memory is the
    /// union of every program's initial data segments (later programs win on
    /// overlap, byte-wise); each core's private image is left empty so all
    /// data accesses see the shared bytes.
    pub fn new(programs: &[&'p Program]) -> SharedSystem<'p> {
        let mut mem = SparseMemory::new();
        for p in programs {
            for (base, bytes) in p.data_segments() {
                mem.write_bytes(*base, bytes);
            }
        }
        let cores = programs
            .iter()
            .map(|p| {
                let mut e = Emulator::new(p);
                // Drop the private copy of the data segments: shared memory
                // is the single source of truth.
                e.mem = SparseMemory::new();
                e
            })
            .collect();
        SharedSystem { cores, mem }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Read-only view of core `i`'s architectural state.
    pub fn core(&self, i: usize) -> &Emulator<'p> {
        &self.cores[i]
    }

    /// The shared memory image.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted())
    }

    /// Executes one instruction on core `i` against the shared memory.
    /// Stepping a halted core is a no-op (mirroring [`Emulator::step`]'s
    /// post-halt behaviour).
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError`] from the underlying emulator. The shared
    /// memory is restored even on error.
    pub fn step_core(&mut self, i: usize) -> Result<(), EmuError> {
        self.cores[i].swap_memory(&mut self.mem);
        let r = self.cores[i].step();
        self.cores[i].swap_memory(&mut self.mem);
        r.map(|_| ())
    }

    /// Total instructions retired across all cores.
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired()).sum()
    }

    /// FNV-1a hash of the complete system state: per-core pc / halt flag /
    /// register files plus the shared memory checksum. Two systems with
    /// equal keys behave identically from here on, which is what makes the
    /// enumeration memo sound.
    fn state_key(&self) -> u64 {
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        };
        for c in &self.cores {
            mix(c.pc as u64);
            mix(c.halted as u64);
            for &r in &c.int_regs {
                mix(r);
            }
            for &r in &c.fp_regs {
                mix(r.to_bits());
            }
        }
        mix(self.mem.checksum());
        h
    }

    /// The observer vector: the named integer registers read out of the
    /// named cores, in order.
    pub fn observe(&self, observers: &[(usize, u8)]) -> Vec<u64> {
        observers
            .iter()
            .map(|&(core, reg)| self.cores[core].int_reg(reg))
            .collect()
    }
}

/// Resource caps for [`enumerate_outcomes`]. Litmus kernels are tiny, so the
/// defaults are generous; hitting either cap is an error (a truncated
/// allowed-set would make the litmus subset check vacuously unsound).
#[derive(Debug, Clone, Copy)]
pub struct EnumLimits {
    /// Maximum distinct states to expand before giving up.
    pub max_states: usize,
    /// Maximum instructions along any single schedule (guards against
    /// non-halting programs the memo cannot collapse).
    pub max_insts_per_path: u64,
}

impl Default for EnumLimits {
    fn default() -> EnumLimits {
        EnumLimits {
            max_states: 1 << 20,
            max_insts_per_path: 100_000,
        }
    }
}

/// Errors from [`enumerate_outcomes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// A schedule faulted in the emulator (bad kernel, not a model issue).
    Emu(EmuError),
    /// `EnumLimits::max_states` distinct states were expanded.
    StateLimit,
    /// Some schedule exceeded `EnumLimits::max_insts_per_path`.
    PathLimit,
}

impl std::fmt::Display for EnumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumError::Emu(e) => write!(f, "emulator fault during enumeration: {e}"),
            EnumError::StateLimit => write!(f, "state limit exceeded during enumeration"),
            EnumError::PathLimit => write!(f, "instruction path limit exceeded during enumeration"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Enumerates every sequentially-consistent outcome of running `programs`
/// concurrently against shared memory, projected through `observers`
/// (`(core, register)` pairs read at the end of each complete execution).
///
/// Instructions execute atomically and in program order per core; the
/// search branches on which non-halted core steps next and collects the
/// observer vector at every all-halted leaf. States already expanded are
/// pruned via a full-state memo, which both keeps the search polynomial in
/// the reachable state count and guarantees termination for kernels whose
/// only loops re-enter earlier states.
///
/// # Errors
///
/// See [`EnumError`]; any error means the result would be untrustworthy and
/// no partial set is returned.
///
/// # Examples
///
/// ```
/// use dmdc_isa::{enumerate_outcomes, Assembler, EnumLimits};
///
/// // Store buffering: in every SC interleaving at least one of the two
/// // stores precedes both loads, so (0,0) — the classic TSO-visible
/// // outcome — must be absent from the allowed set.
/// let p0 = Assembler::new()
///     .assemble("li x1, 0x2000\nli x2, 0x2100\nli x3, 1\nsw x3, 0(x1)\nlw x20, 0(x2)\nhalt")
///     .unwrap();
/// let p1 = Assembler::new()
///     .assemble("li x1, 0x2000\nli x2, 0x2100\nli x3, 1\nsw x3, 0(x2)\nlw x20, 0(x1)\nhalt")
///     .unwrap();
/// let allowed = enumerate_outcomes(&[&p0, &p1], &[(0, 20), (1, 20)], EnumLimits::default())
///     .unwrap();
/// assert!(!allowed.contains(&vec![0, 0]), "SB (0,0) is not SC");
/// assert!(allowed.contains(&vec![1, 1]));
/// ```
pub fn enumerate_outcomes(
    programs: &[&Program],
    observers: &[(usize, u8)],
    limits: EnumLimits,
) -> Result<BTreeSet<Vec<u64>>, EnumError> {
    let root = SharedSystem::new(programs);
    let mut outcomes = BTreeSet::new();
    let mut memo: HashSet<u64> = HashSet::new();
    // Depth-first over (state, instructions-executed-so-far).
    let mut stack: Vec<(SharedSystem, u64)> = vec![(root, 0)];
    while let Some((sys, depth)) = stack.pop() {
        if !memo.insert(sys.state_key()) {
            continue;
        }
        if memo.len() > limits.max_states {
            return Err(EnumError::StateLimit);
        }
        if sys.all_halted() {
            outcomes.insert(sys.observe(observers));
            continue;
        }
        if depth >= limits.max_insts_per_path {
            return Err(EnumError::PathLimit);
        }
        for i in 0..sys.num_cores() {
            if sys.core(i).halted() {
                continue;
            }
            let mut next = sys.clone();
            next.step_core(i).map_err(EnumError::Emu)?;
            stack.push((next, depth + 1));
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    #[test]
    fn shared_memory_is_visible_across_cores() {
        let p0 = asm("li x1, 0x2000\nli x2, 41\nsw x2, 0(x1)\nhalt");
        let p1 = asm("li x1, 0x2000\nlw x20, 0(x1)\naddi x20, x20, 1\nhalt");
        let mut sys = SharedSystem::new(&[&p0, &p1]);
        while !sys.core(0).halted() {
            sys.step_core(0).unwrap();
        }
        while !sys.core(1).halted() {
            sys.step_core(1).unwrap();
        }
        assert_eq!(sys.core(1).int_reg(20), 42);
        assert_eq!(sys.observe(&[(1, 20)]), vec![42]);
    }

    #[test]
    fn step_after_halt_is_noop() {
        let p = asm("halt");
        let mut sys = SharedSystem::new(&[&p]);
        sys.step_core(0).unwrap();
        let retired = sys.core(0).retired();
        sys.step_core(0).unwrap();
        assert_eq!(sys.core(0).retired(), retired);
        assert!(sys.all_halted());
    }

    #[test]
    fn message_passing_forbids_stale_data_after_flag() {
        // MP: P0 stores data then flag; P1 reads flag then data. Under SC,
        // flag=1 implies data=1.
        let p0 = asm("li x1, 0x2000\nli x2, 0x2100\nli x3, 1\nsw x3, 0(x1)\nsw x3, 0(x2)\nhalt");
        let p1 = asm("li x1, 0x2000\nli x2, 0x2100\nlw x20, 0(x2)\nlw x21, 0(x1)\nhalt");
        let allowed =
            enumerate_outcomes(&[&p0, &p1], &[(1, 20), (1, 21)], EnumLimits::default()).unwrap();
        assert!(allowed.contains(&vec![0, 0]));
        assert!(allowed.contains(&vec![0, 1]));
        assert!(allowed.contains(&vec![1, 1]));
        assert!(!allowed.contains(&vec![1, 0]), "MP (1,0) violates SC");
    }

    #[test]
    fn spin_loop_terminates_via_memoization() {
        // P1 spins until the flag flips. The spin re-enters the same state,
        // so memoization prunes the infinite branch and only the productive
        // schedules survive.
        let p0 = asm("li x1, 0x2000\nli x2, 1\nsw x2, 0(x1)\nhalt");
        let p1 = asm("li x1, 0x2000\nspin: lw x20, 0(x1)\nbeq x20, x0, spin\nhalt");
        let allowed = enumerate_outcomes(&[&p0, &p1], &[(1, 20)], EnumLimits::default()).unwrap();
        assert_eq!(allowed, BTreeSet::from([vec![1]]));
    }

    #[test]
    fn path_limit_rejects_runaway_single_core() {
        // A core that never halts and never repeats state (a counter) must
        // hit the path cap rather than loop forever.
        let p = asm("loop: addi x1, x1, 1\nj loop");
        let err = enumerate_outcomes(
            &[&p],
            &[],
            EnumLimits {
                max_states: 1 << 20,
                max_insts_per_path: 500,
            },
        )
        .unwrap_err();
        // Every state is fresh, so either cap can fire depending on order;
        // with one core the path cap fires first.
        assert_eq!(err, EnumError::PathLimit);
    }
}
