//! Fixed 32-bit binary encoding of [`Inst`].
//!
//! Layout (bit 31 is the MSB):
//!
//! ```text
//! opcode[31:26] | a[25:21] | b[20:16] | c[15:11] | low[10:0]
//! ```
//!
//! Register-register forms put `rd/rs1/rs2` in `a/b/c` and a function code
//! in `low[4:0]`; immediate forms put a 16-bit immediate in bits `[15:0]`.
//! Branch targets are absolute instruction indices (16 bits), `jal` targets
//! get 21 bits. The encoding exists so instruction fetch operates on real
//! bytes and so the round-trip property `decode(encode(i)) == i` can be
//! tested.

use core::fmt;

use dmdc_types::AccessSize;

use crate::inst::{AluOp, BranchCond, FcmpCond, FpuOp, Inst};
use crate::reg::{FReg, Reg};

/// Error returned by [`decode`] on a malformed instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
    reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

const OP_NOP: u32 = 0;
const OP_HALT: u32 = 1;
const OP_ALU: u32 = 2;
const OP_ALU_IMM_BASE: u32 = 3; // ..=15, one per AluOp
const OP_LUI: u32 = 16;
const OP_LOAD_BASE: u32 = 17; // +0 B1s, +1 B1u, +2 B2s, +3 B2u, +4 B4s, +5 B4u, +6 B8
const OP_STORE_BASE: u32 = 24; // +0 B1, +1 B2, +2 B4, +3 B8
const OP_FLW: u32 = 28;
const OP_FLD: u32 = 29;
const OP_FSW: u32 = 30;
const OP_FSD: u32 = 31;
const OP_FPU: u32 = 32;
const OP_FCMP: u32 = 33;
const OP_I2F: u32 = 34;
const OP_F2I: u32 = 35;
const OP_BRANCH_BASE: u32 = 36; // ..=41, one per BranchCond
const OP_JAL: u32 = 42;
const OP_JALR: u32 = 43;

fn alu_code(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Sra => 10,
        AluOp::Slt => 11,
        AluOp::Sltu => 12,
    }
}

fn alu_from_code(code: u32) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Sra,
        11 => AluOp::Slt,
        12 => AluOp::Sltu,
        _ => return None,
    })
}

fn fpu_code(op: FpuOp) -> u32 {
    match op {
        FpuOp::Fadd => 0,
        FpuOp::Fsub => 1,
        FpuOp::Fmul => 2,
        FpuOp::Fdiv => 3,
        FpuOp::Fsqrt => 4,
        FpuOp::Fmin => 5,
        FpuOp::Fmax => 6,
    }
}

fn fpu_from_code(code: u32) -> Option<FpuOp> {
    Some(match code {
        0 => FpuOp::Fadd,
        1 => FpuOp::Fsub,
        2 => FpuOp::Fmul,
        3 => FpuOp::Fdiv,
        4 => FpuOp::Fsqrt,
        5 => FpuOp::Fmin,
        6 => FpuOp::Fmax,
        _ => return None,
    })
}

fn fcmp_code(c: FcmpCond) -> u32 {
    match c {
        FcmpCond::Feq => 0,
        FcmpCond::Flt => 1,
        FcmpCond::Fle => 2,
    }
}

fn fcmp_from_code(code: u32) -> Option<FcmpCond> {
    Some(match code {
        0 => FcmpCond::Feq,
        1 => FcmpCond::Flt,
        2 => FcmpCond::Fle,
        _ => return None,
    })
}

fn branch_code(c: BranchCond) -> u32 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn branch_from_code(code: u32) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return None,
    })
}

fn load_opcode(size: AccessSize, signed: bool) -> u32 {
    let s = match size {
        AccessSize::B1 => 0,
        AccessSize::B2 => 2,
        AccessSize::B4 => 4,
        AccessSize::B8 => 6,
    };
    // B8 has a single form; signedness is irrelevant at full width.
    if size == AccessSize::B8 {
        OP_LOAD_BASE + 6
    } else {
        OP_LOAD_BASE + s + if signed { 0 } else { 1 }
    }
}

fn store_opcode(size: AccessSize) -> u32 {
    OP_STORE_BASE
        + match size {
            AccessSize::B1 => 0,
            AccessSize::B2 => 1,
            AccessSize::B4 => 2,
            AccessSize::B8 => 3,
        }
}

#[inline]
fn pack(opcode: u32, a: u32, b: u32, c: u32, low: u32) -> u32 {
    debug_assert!(opcode < 64 && a < 32 && b < 32 && c < 32 && low < (1 << 11));
    (opcode << 26) | (a << 21) | (b << 16) | (c << 11) | low
}

#[inline]
fn pack_imm(opcode: u32, a: u32, b: u32, imm: i16) -> u32 {
    (opcode << 26) | (a << 21) | (b << 16) | (imm as u16 as u32)
}

/// Encodes an instruction into its 32-bit machine word.
///
/// # Panics
///
/// Panics if a branch target exceeds 16 bits or a `jal` target exceeds 21
/// bits. The assembler validates targets before encoding; constructing such
/// an instruction by hand is a program-construction bug.
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Nop => pack(OP_NOP, 0, 0, 0, 0),
        Inst::Halt => pack(OP_HALT, 0, 0, 0, 0),
        Inst::Alu { op, rd, rs1, rs2 } => pack(
            OP_ALU,
            rd.index() as u32,
            rs1.index() as u32,
            rs2.index() as u32,
            alu_code(op),
        ),
        Inst::AluImm { op, rd, rs1, imm } => pack_imm(
            OP_ALU_IMM_BASE + alu_code(op),
            rd.index() as u32,
            rs1.index() as u32,
            imm,
        ),
        Inst::Lui { rd, imm } => pack_imm(OP_LUI, rd.index() as u32, 0, imm),
        Inst::Load {
            size,
            signed,
            rd,
            base,
            offset,
        } => pack_imm(
            load_opcode(size, signed),
            rd.index() as u32,
            base.index() as u32,
            offset,
        ),
        Inst::Store {
            size,
            src,
            base,
            offset,
        } => pack_imm(
            store_opcode(size),
            src.index() as u32,
            base.index() as u32,
            offset,
        ),
        Inst::FLoad {
            size,
            fd,
            base,
            offset,
        } => {
            let op = if size == AccessSize::B4 {
                OP_FLW
            } else {
                OP_FLD
            };
            assert!(
                matches!(size, AccessSize::B4 | AccessSize::B8),
                "fp loads are 4 or 8 bytes"
            );
            pack_imm(op, fd.index() as u32, base.index() as u32, offset)
        }
        Inst::FStore {
            size,
            src,
            base,
            offset,
        } => {
            let op = if size == AccessSize::B4 {
                OP_FSW
            } else {
                OP_FSD
            };
            assert!(
                matches!(size, AccessSize::B4 | AccessSize::B8),
                "fp stores are 4 or 8 bytes"
            );
            pack_imm(op, src.index() as u32, base.index() as u32, offset)
        }
        Inst::Fpu { op, fd, fs1, fs2 } => pack(
            OP_FPU,
            fd.index() as u32,
            fs1.index() as u32,
            fs2.index() as u32,
            fpu_code(op),
        ),
        Inst::Fcmp { cond, rd, fs1, fs2 } => pack(
            OP_FCMP,
            rd.index() as u32,
            fs1.index() as u32,
            fs2.index() as u32,
            fcmp_code(cond),
        ),
        Inst::IntToFp { fd, rs } => pack(OP_I2F, fd.index() as u32, rs.index() as u32, 0, 0),
        Inst::FpToInt { rd, fs } => pack(OP_F2I, rd.index() as u32, fs.index() as u32, 0, 0),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            assert!(
                target < (1 << 16),
                "branch target out of encodable range: {target}"
            );
            (OP_BRANCH_BASE + branch_code(cond)) << 26
                | (rs1.index() as u32) << 21
                | (rs2.index() as u32) << 16
                | target
        }
        Inst::Jal { rd, target } => {
            assert!(
                target < (1 << 21),
                "jal target out of encodable range: {target}"
            );
            (OP_JAL << 26) | ((rd.index() as u32) << 21) | target
        }
        Inst::Jalr { rd, rs1 } => pack(OP_JALR, rd.index() as u32, rs1.index() as u32, 0, 0),
    }
}

/// Decodes a 32-bit machine word back into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or a function code is not part of
/// the encoding.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let err = |reason| DecodeError { word, reason };
    let opcode = word >> 26;
    let a = ((word >> 21) & 31) as u8;
    let b = ((word >> 16) & 31) as u8;
    let c = ((word >> 11) & 31) as u8;
    let low = word & 0x7FF;
    let imm = (word & 0xFFFF) as u16 as i16;

    Ok(match opcode {
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        OP_ALU => Inst::Alu {
            op: alu_from_code(low & 31).ok_or_else(|| err("bad ALU function code"))?,
            rd: Reg::new(a),
            rs1: Reg::new(b),
            rs2: Reg::new(c),
        },
        o if (OP_ALU_IMM_BASE..OP_LUI).contains(&o) => Inst::AluImm {
            op: alu_from_code(o - OP_ALU_IMM_BASE).expect("range-checked"),
            rd: Reg::new(a),
            rs1: Reg::new(b),
            imm,
        },
        OP_LUI => Inst::Lui {
            rd: Reg::new(a),
            imm,
        },
        o if (OP_LOAD_BASE..OP_LOAD_BASE + 7).contains(&o) => {
            let v = o - OP_LOAD_BASE;
            let (size, signed) = match v {
                0 => (AccessSize::B1, true),
                1 => (AccessSize::B1, false),
                2 => (AccessSize::B2, true),
                3 => (AccessSize::B2, false),
                4 => (AccessSize::B4, true),
                5 => (AccessSize::B4, false),
                6 => (AccessSize::B8, true),
                _ => unreachable!(),
            };
            Inst::Load {
                size,
                signed,
                rd: Reg::new(a),
                base: Reg::new(b),
                offset: imm,
            }
        }
        o if (OP_STORE_BASE..OP_STORE_BASE + 4).contains(&o) => {
            let size = match o - OP_STORE_BASE {
                0 => AccessSize::B1,
                1 => AccessSize::B2,
                2 => AccessSize::B4,
                3 => AccessSize::B8,
                _ => unreachable!(),
            };
            Inst::Store {
                size,
                src: Reg::new(a),
                base: Reg::new(b),
                offset: imm,
            }
        }
        OP_FLW => Inst::FLoad {
            size: AccessSize::B4,
            fd: FReg::new(a),
            base: Reg::new(b),
            offset: imm,
        },
        OP_FLD => Inst::FLoad {
            size: AccessSize::B8,
            fd: FReg::new(a),
            base: Reg::new(b),
            offset: imm,
        },
        OP_FSW => Inst::FStore {
            size: AccessSize::B4,
            src: FReg::new(a),
            base: Reg::new(b),
            offset: imm,
        },
        OP_FSD => Inst::FStore {
            size: AccessSize::B8,
            src: FReg::new(a),
            base: Reg::new(b),
            offset: imm,
        },
        OP_FPU => Inst::Fpu {
            op: fpu_from_code(low & 31).ok_or_else(|| err("bad FPU function code"))?,
            fd: FReg::new(a),
            fs1: FReg::new(b),
            fs2: FReg::new(c),
        },
        OP_FCMP => Inst::Fcmp {
            cond: fcmp_from_code(low & 31).ok_or_else(|| err("bad FCMP function code"))?,
            rd: Reg::new(a),
            fs1: FReg::new(b),
            fs2: FReg::new(c),
        },
        OP_I2F => Inst::IntToFp {
            fd: FReg::new(a),
            rs: Reg::new(b),
        },
        OP_F2I => Inst::FpToInt {
            rd: Reg::new(a),
            fs: FReg::new(b),
        },
        o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => Inst::Branch {
            cond: branch_from_code(o - OP_BRANCH_BASE).expect("range-checked"),
            rs1: Reg::new(a),
            rs2: Reg::new(b),
            target: word & 0xFFFF,
        },
        OP_JAL => Inst::Jal {
            rd: Reg::new(a),
            target: word & 0x1F_FFFF,
        },
        OP_JALR => Inst::Jalr {
            rd: Reg::new(a),
            rs1: Reg::new(b),
        },
        _ => return Err(err("unknown opcode")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    fn freg_strategy() -> impl Strategy<Value = FReg> {
        (0u8..32).prop_map(FReg::new)
    }

    fn alu_op_strategy() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::Div),
            Just(AluOp::Rem),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Sll),
            Just(AluOp::Srl),
            Just(AluOp::Sra),
            Just(AluOp::Slt),
            Just(AluOp::Sltu),
        ]
    }

    fn size_strategy() -> impl Strategy<Value = AccessSize> {
        prop_oneof![
            Just(AccessSize::B1),
            Just(AccessSize::B2),
            Just(AccessSize::B4),
            Just(AccessSize::B8)
        ]
    }

    fn inst_strategy() -> impl Strategy<Value = Inst> {
        prop_oneof![
            Just(Inst::Nop),
            Just(Inst::Halt),
            (
                alu_op_strategy(),
                reg_strategy(),
                reg_strategy(),
                reg_strategy()
            )
                .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
            (
                alu_op_strategy(),
                reg_strategy(),
                reg_strategy(),
                any::<i16>()
            )
                .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
            (reg_strategy(), any::<i16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
            (
                size_strategy(),
                any::<bool>(),
                reg_strategy(),
                reg_strategy(),
                any::<i16>()
            )
                .prop_map(|(size, signed, rd, base, offset)| Inst::Load {
                    size,
                    // B8 collapses signed/unsigned into one opcode.
                    signed: signed || size == AccessSize::B8,
                    rd,
                    base,
                    offset
                }),
            (
                size_strategy(),
                reg_strategy(),
                reg_strategy(),
                any::<i16>()
            )
                .prop_map(|(size, src, base, offset)| Inst::Store {
                    size,
                    src,
                    base,
                    offset
                }),
            (any::<bool>(), freg_strategy(), reg_strategy(), any::<i16>()).prop_map(
                |(wide, fd, base, offset)| Inst::FLoad {
                    size: if wide { AccessSize::B8 } else { AccessSize::B4 },
                    fd,
                    base,
                    offset
                }
            ),
            (any::<bool>(), freg_strategy(), reg_strategy(), any::<i16>()).prop_map(
                |(wide, src, base, offset)| Inst::FStore {
                    size: if wide { AccessSize::B8 } else { AccessSize::B4 },
                    src,
                    base,
                    offset
                }
            ),
            (
                prop_oneof![
                    Just(FpuOp::Fadd),
                    Just(FpuOp::Fsub),
                    Just(FpuOp::Fmul),
                    Just(FpuOp::Fdiv),
                    Just(FpuOp::Fsqrt),
                    Just(FpuOp::Fmin),
                    Just(FpuOp::Fmax)
                ],
                freg_strategy(),
                freg_strategy(),
                freg_strategy()
            )
                .prop_map(|(op, fd, fs1, fs2)| Inst::Fpu { op, fd, fs1, fs2 }),
            (
                prop_oneof![
                    Just(FcmpCond::Feq),
                    Just(FcmpCond::Flt),
                    Just(FcmpCond::Fle)
                ],
                reg_strategy(),
                freg_strategy(),
                freg_strategy()
            )
                .prop_map(|(cond, rd, fs1, fs2)| Inst::Fcmp { cond, rd, fs1, fs2 }),
            (freg_strategy(), reg_strategy()).prop_map(|(fd, rs)| Inst::IntToFp { fd, rs }),
            (reg_strategy(), freg_strategy()).prop_map(|(rd, fs)| Inst::FpToInt { rd, fs }),
            (
                prop_oneof![
                    Just(BranchCond::Eq),
                    Just(BranchCond::Ne),
                    Just(BranchCond::Lt),
                    Just(BranchCond::Ge),
                    Just(BranchCond::Ltu),
                    Just(BranchCond::Geu)
                ],
                reg_strategy(),
                reg_strategy(),
                0u32..(1 << 16)
            )
                .prop_map(|(cond, rs1, rs2, target)| Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target
                }),
            (reg_strategy(), 0u32..(1 << 21)).prop_map(|(rd, target)| Inst::Jal { rd, target }),
            (reg_strategy(), reg_strategy()).prop_map(|(rd, rs1)| Inst::Jalr { rd, rs1 }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(inst in inst_strategy()) {
            let word = encode(inst);
            let back = decode(word).expect("encoded word must decode");
            prop_assert_eq!(inst, back);
        }
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        let word = 63u32 << 26;
        assert!(decode(word).is_err());
        let msg = decode(word).unwrap_err().to_string();
        assert!(msg.contains("unknown opcode"), "{msg}");
    }

    #[test]
    fn bad_function_codes_are_errors() {
        // ALU with funct 31.
        assert!(decode((OP_ALU << 26) | 31).is_err());
        // FPU with funct 20.
        assert!(decode((OP_FPU << 26) | 20).is_err());
        // FCMP with funct 9.
        assert!(decode((OP_FCMP << 26) | 9).is_err());
    }

    #[test]
    fn specific_encodings_are_stable() {
        // A couple of pinned encodings guard against accidental layout drift.
        assert_eq!(encode(Inst::Nop), 0);
        assert_eq!(encode(Inst::Halt), 1 << 26);
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        assert_eq!(encode(add), (2 << 26) | (1 << 21) | (2 << 16) | (3 << 11));
    }

    #[test]
    #[should_panic(expected = "branch target out of encodable range")]
    fn oversized_branch_target_panics() {
        encode(Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: 1 << 16,
        });
    }
}
