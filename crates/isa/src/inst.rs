use core::fmt;

use dmdc_types::AccessSize;

use crate::reg::{ArchReg, FReg, Reg};

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low 64 bits).
    Mul,
    /// Signed division; division by zero yields all-ones (RISC-V semantics).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (by low 6 bits of the second operand).
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Set-if-less-than, signed (result 0 or 1).
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    u64::MAX
                } else if a == i64::MIN && b == -1 {
                    a as u64
                } else {
                    (a / b) as u64
                }
            }
            AluOp::Rem => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    a as u64
                } else if a == i64::MIN && b == -1 {
                    0
                } else {
                    (a % b) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// Whether the operation uses the long-latency multiplier/divider unit.
    pub fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

/// Floating-point operations (on IEEE doubles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    Fadd,
    /// Subtraction.
    Fsub,
    /// Multiplication.
    Fmul,
    /// Division.
    Fdiv,
    /// Square root of the first operand (second operand ignored).
    Fsqrt,
    /// Minimum.
    Fmin,
    /// Maximum.
    Fmax,
}

impl FpuOp {
    /// Evaluates the operation.
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpuOp::Fadd => a + b,
            FpuOp::Fsub => a - b,
            FpuOp::Fmul => a * b,
            FpuOp::Fdiv => a / b,
            FpuOp::Fsqrt => a.sqrt(),
            FpuOp::Fmin => a.min(b),
            FpuOp::Fmax => a.max(b),
        }
    }

    /// Whether the operation uses the long-latency FP multiply/divide unit.
    pub fn is_long_latency(self) -> bool {
        matches!(self, FpuOp::Fmul | FpuOp::Fdiv | FpuOp::Fsqrt)
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two 64-bit register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// One machine instruction.
///
/// Branch and jump targets are *absolute instruction indices* into the
/// program text; the assembler resolves labels to these. Memory offsets are
/// byte displacements added to a base register.
///
/// # Examples
///
/// ```
/// use dmdc_isa::{AluOp, Inst, InstClass, Reg};
///
/// let i = Inst::Alu { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::new(2), rs2: Reg::new(3) };
/// assert_eq!(i.class(), InstClass::IntAlu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Three-register integer ALU operation: `rd = rs1 op rs2`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Register-immediate integer ALU operation: `rd = rs1 op imm`.
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    /// Load upper immediate: `rd = imm << 16`.
    Lui { rd: Reg, imm: i16 },
    /// Integer load: `rd = sign/zero-extend(mem[rs1 + offset])`.
    Load {
        size: AccessSize,
        signed: bool,
        rd: Reg,
        base: Reg,
        offset: i16,
    },
    /// Integer store: `mem[rs1 + offset] = low bytes of rs`.
    Store {
        size: AccessSize,
        src: Reg,
        base: Reg,
        offset: i16,
    },
    /// FP load (4 bytes load an `f32` widened to `f64`; 8 bytes an `f64`).
    FLoad {
        size: AccessSize,
        fd: FReg,
        base: Reg,
        offset: i16,
    },
    /// FP store (4 bytes store the value narrowed to `f32`).
    FStore {
        size: AccessSize,
        src: FReg,
        base: Reg,
        offset: i16,
    },
    /// Three-register FP operation: `fd = fs1 op fs2`.
    Fpu {
        op: FpuOp,
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
    },
    /// FP compare into an integer register: `rd = (fs1 < fs2)` (Flt) or
    /// `(fs1 <= fs2)` (Fle) or `(fs1 == fs2)` (Feq); selected by `cond`.
    Fcmp {
        cond: FcmpCond,
        rd: Reg,
        fs1: FReg,
        fs2: FReg,
    },
    /// Convert signed integer to double: `fd = rs as f64`.
    IntToFp { fd: FReg, rs: Reg },
    /// Convert double to signed integer (truncating, saturating): `rd = fs as i64`.
    FpToInt { rd: Reg, fs: FReg },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// Unconditional jump; `rd` receives the return instruction index
    /// (`pc + 1`). Use `x0` to discard.
    Jal { rd: Reg, target: u32 },
    /// Indirect jump to the instruction index held in `rs1`; `rd` receives
    /// `pc + 1`.
    Jalr { rd: Reg, rs1: Reg },
    /// Stop the program.
    Halt,
    /// No operation.
    Nop,
}

/// FP comparison conditions for [`Inst::Fcmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcmpCond {
    /// Equal.
    Feq,
    /// Less-than.
    Flt,
    /// Less-or-equal.
    Fle,
}

impl FcmpCond {
    /// Evaluates the comparison; any NaN operand makes it false.
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FcmpCond::Feq => a == b,
            FcmpCond::Flt => a < b,
            FcmpCond::Fle => a <= b,
        }
    }
}

/// The execution class of an instruction, used to route it to an issue
/// queue and functional unit in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU (also address generation and branches).
    IntAlu,
    /// Integer multiply/divide.
    IntMulDiv,
    /// FP add/sub/min/max/compare/convert.
    FpAlu,
    /// FP multiply/divide/sqrt.
    FpMulDiv,
    /// Memory load (integer or FP destination).
    Load,
    /// Memory store.
    Store,
    /// Control transfer (branch or jump).
    Branch,
    /// Program end marker.
    Halt,
    /// No-op.
    Nop,
}

impl InstClass {
    /// Whether this class dispatches to the floating-point issue queue.
    pub fn is_fp_queue(self) -> bool {
        matches!(self, InstClass::FpAlu | InstClass::FpMulDiv)
    }
}

impl Inst {
    /// The execution class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => {
                if op.is_long_latency() {
                    InstClass::IntMulDiv
                } else {
                    InstClass::IntAlu
                }
            }
            Inst::Lui { .. } => InstClass::IntAlu,
            Inst::Load { .. } | Inst::FLoad { .. } => InstClass::Load,
            Inst::Store { .. } | Inst::FStore { .. } => InstClass::Store,
            Inst::Fpu { op, .. } => {
                if op.is_long_latency() {
                    InstClass::FpMulDiv
                } else {
                    InstClass::FpAlu
                }
            }
            Inst::Fcmp { .. } | Inst::IntToFp { .. } | Inst::FpToInt { .. } => InstClass::FpAlu,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } => InstClass::Branch,
            Inst::Halt => InstClass::Halt,
            Inst::Nop => InstClass::Nop,
        }
    }

    /// The architectural registers this instruction reads, in operand order.
    pub fn sources(&self) -> SourceList {
        let mut s = SourceList::default();
        match *self {
            Inst::Alu { rs1, rs2, .. } => {
                s.push(ArchReg::Int(rs1));
                s.push(ArchReg::Int(rs2));
            }
            Inst::AluImm { rs1, .. } => s.push(ArchReg::Int(rs1)),
            Inst::Lui { .. } => {}
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => s.push(ArchReg::Int(base)),
            Inst::Store { src, base, .. } => {
                s.push(ArchReg::Int(base));
                s.push(ArchReg::Int(src));
            }
            Inst::FStore { src, base, .. } => {
                s.push(ArchReg::Int(base));
                s.push(ArchReg::Fp(src));
            }
            Inst::Fpu { fs1, fs2, .. } => {
                s.push(ArchReg::Fp(fs1));
                s.push(ArchReg::Fp(fs2));
            }
            Inst::Fcmp { fs1, fs2, .. } => {
                s.push(ArchReg::Fp(fs1));
                s.push(ArchReg::Fp(fs2));
            }
            Inst::IntToFp { rs, .. } => s.push(ArchReg::Int(rs)),
            Inst::FpToInt { fs, .. } => s.push(ArchReg::Fp(fs)),
            Inst::Branch { rs1, rs2, .. } => {
                s.push(ArchReg::Int(rs1));
                s.push(ArchReg::Int(rs2));
            }
            Inst::Jal { .. } => {}
            Inst::Jalr { rs1, .. } => s.push(ArchReg::Int(rs1)),
            Inst::Halt | Inst::Nop => {}
        }
        s
    }

    /// The architectural register this instruction writes, if any.
    ///
    /// Writes to `x0` are reported as `None` — they are architectural no-ops
    /// and the rename stage must not allocate for them.
    pub fn dest(&self) -> Option<ArchReg> {
        let d = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Lui { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Fcmp { rd, .. }
            | Inst::FpToInt { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. } => ArchReg::Int(rd),
            Inst::FLoad { fd, .. } | Inst::Fpu { fd, .. } | Inst::IntToFp { fd, .. } => {
                ArchReg::Fp(fd)
            }
            Inst::Store { .. }
            | Inst::FStore { .. }
            | Inst::Branch { .. }
            | Inst::Halt
            | Inst::Nop => return None,
        };
        if d.is_int_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// For memory instructions, the access width; otherwise `None`.
    pub fn mem_size(&self) -> Option<AccessSize> {
        match *self {
            Inst::Load { size, .. }
            | Inst::Store { size, .. }
            | Inst::FLoad { size, .. }
            | Inst::FStore { size, .. } => Some(size),
            _ => None,
        }
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        self.class() == InstClass::Branch
    }

    /// Whether this is a *conditional* branch (predictable direction).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }
}

/// A fixed-capacity list of source registers (at most two in this ISA).
#[derive(Debug, Clone, Copy, Default)]
pub struct SourceList {
    regs: [Option<ArchReg>; 2],
    len: usize,
}

impl SourceList {
    fn push(&mut self, r: ArchReg) {
        self.regs[self.len] = Some(r);
        self.len += 1;
    }

    /// Iterates over the sources in operand order.
    pub fn iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.regs[..self.len]
            .iter()
            .map(|r| r.expect("filled slot"))
    }

    /// Number of sources (0–2).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the instruction reads no registers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Inst::Lui { rd, imm } => write!(f, "Lui {rd}, {imm}"),
            Inst::Load {
                size,
                signed,
                rd,
                base,
                offset,
            } => {
                write!(
                    f,
                    "Load{size}{} {rd}, {offset}({base})",
                    if signed { "s" } else { "u" }
                )
            }
            Inst::Store {
                size,
                src,
                base,
                offset,
            } => write!(f, "Store{size} {src}, {offset}({base})"),
            Inst::FLoad {
                size,
                fd,
                base,
                offset,
            } => write!(f, "FLoad{size} {fd}, {offset}({base})"),
            Inst::FStore {
                size,
                src,
                base,
                offset,
            } => write!(f, "FStore{size} {src}, {offset}({base})"),
            Inst::Fpu { op, fd, fs1, fs2 } => write!(f, "{op:?} {fd}, {fs1}, {fs2}"),
            Inst::Fcmp { cond, rd, fs1, fs2 } => write!(f, "{cond:?} {rd}, {fs1}, {fs2}"),
            Inst::IntToFp { fd, rs } => write!(f, "IntToFp {fd}, {rs}"),
            Inst::FpToInt { rd, fs } => write!(f, "FpToInt {rd}, {fs}"),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "B{cond:?} {rs1}, {rs2}, @{target}"),
            Inst::Jal { rd, target } => write!(f, "Jal {rd}, @{target}"),
            Inst::Jalr { rd, rs1 } => write!(f, "Jalr {rd}, {rs1}"),
            Inst::Halt => write!(f, "Halt"),
            Inst::Nop => write!(f, "Nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), (-1i64) as u64);
        assert_eq!(AluOp::Mul.eval(6, 7), 42);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn alu_division_edge_cases() {
        assert_eq!(AluOp::Div.eval(7, 0), u64::MAX, "div by zero is all-ones");
        assert_eq!(AluOp::Rem.eval(7, 0), 7, "rem by zero is the dividend");
        assert_eq!(
            AluOp::Div.eval(i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
        assert_eq!(AluOp::Rem.eval(i64::MIN as u64, (-1i64) as u64), 0);
        assert_eq!(AluOp::Div.eval((-7i64) as u64, 2), (-3i64) as u64);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1, "shift amount is mod 64");
        assert_eq!(AluOp::Srl.eval((-8i64) as u64, 1), ((-8i64) as u64) >> 1);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn alu_compares() {
        assert_eq!(AluOp::Slt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i64) as u64, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BranchCond::Ge.eval(0, (-1i64) as u64));
        assert!(BranchCond::Geu.eval((-1i64) as u64, 0));
    }

    #[test]
    fn fpu_eval() {
        assert_eq!(FpuOp::Fadd.eval(1.5, 2.5), 4.0);
        assert_eq!(FpuOp::Fsqrt.eval(9.0, 0.0), 3.0);
        assert!(FpuOp::Fsqrt.eval(-1.0, 0.0).is_nan());
        assert_eq!(FpuOp::Fmin.eval(1.0, 2.0), 1.0);
        assert_eq!(FpuOp::Fmax.eval(1.0, 2.0), 2.0);
    }

    #[test]
    fn fcmp_nan_is_false() {
        assert!(!FcmpCond::Feq.eval(f64::NAN, f64::NAN));
        assert!(!FcmpCond::Flt.eval(f64::NAN, 1.0));
        assert!(FcmpCond::Fle.eval(1.0, 1.0));
    }

    #[test]
    fn classes_route_correctly() {
        let r = Reg::new(1);
        let fr = FReg::new(1);
        assert_eq!(
            Inst::Alu {
                op: AluOp::Add,
                rd: r,
                rs1: r,
                rs2: r
            }
            .class(),
            InstClass::IntAlu
        );
        assert_eq!(
            Inst::Alu {
                op: AluOp::Div,
                rd: r,
                rs1: r,
                rs2: r
            }
            .class(),
            InstClass::IntMulDiv
        );
        assert_eq!(
            Inst::Fpu {
                op: FpuOp::Fadd,
                fd: fr,
                fs1: fr,
                fs2: fr
            }
            .class(),
            InstClass::FpAlu
        );
        assert_eq!(
            Inst::Fpu {
                op: FpuOp::Fdiv,
                fd: fr,
                fs1: fr,
                fs2: fr
            }
            .class(),
            InstClass::FpMulDiv
        );
        assert!(InstClass::FpAlu.is_fp_queue());
        assert!(!InstClass::Load.is_fp_queue());
    }

    #[test]
    fn dest_hides_x0_writes() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::new(1),
            imm: 1,
        };
        assert_eq!(i.dest(), None);
        let j = Inst::Jal {
            rd: Reg::ZERO,
            target: 0,
        };
        assert_eq!(j.dest(), None);
    }

    #[test]
    fn store_sources_include_data_and_base() {
        let s = Inst::Store {
            size: AccessSize::B4,
            src: Reg::new(2),
            base: Reg::new(3),
            offset: 8,
        };
        let srcs: Vec<_> = s.sources().iter().collect();
        assert_eq!(
            srcs,
            vec![ArchReg::Int(Reg::new(3)), ArchReg::Int(Reg::new(2))]
        );
        assert_eq!(s.dest(), None);
        assert_eq!(s.mem_size(), Some(AccessSize::B4));
    }

    #[test]
    fn control_detection() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: 0,
        };
        assert!(b.is_control());
        assert!(b.is_cond_branch());
        let j = Inst::Jal {
            rd: Reg::ZERO,
            target: 0,
        };
        assert!(j.is_control());
        assert!(!j.is_cond_branch());
        assert!(!Inst::Nop.is_control());
    }
}
