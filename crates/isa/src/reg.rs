use core::fmt;

/// An integer architectural register, `x0`–`x31`.
///
/// `x0` is hardwired to zero: writes are discarded, reads return 0.
///
/// # Examples
///
/// ```
/// use dmdc_isa::Reg;
///
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "x5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Number of integer architectural registers.
    pub const COUNT: usize = 32;

    /// Creates `x{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "integer register out of range: {index}"
        );
        Reg(index)
    }

    /// The register number, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point architectural register, `f0`–`f31`.
///
/// FP registers hold IEEE-754 doubles; word-sized FP accesses convert
/// through `f32`.
///
/// # Examples
///
/// ```
/// use dmdc_isa::FReg;
///
/// assert_eq!(FReg::new(3).to_string(), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Number of floating-point architectural registers.
    pub const COUNT: usize = 32;

    /// Creates `f{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> FReg {
        assert!(
            (index as usize) < FReg::COUNT,
            "fp register out of range: {index}"
        );
        FReg(index)
    }

    /// The register number, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Either register file's register — the currency of the rename stage.
///
/// # Examples
///
/// ```
/// use dmdc_isa::{ArchReg, Reg};
///
/// let r = ArchReg::Int(Reg::new(1));
/// assert!(!r.is_int_zero());
/// assert!(ArchReg::Int(Reg::ZERO).is_int_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchReg {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

impl ArchReg {
    /// Whether this is the integer zero register (which is never renamed).
    #[inline]
    pub fn is_int_zero(self) -> bool {
        matches!(self, ArchReg::Int(r) if r.is_zero())
    }

    /// A dense index over both files: integer registers map to `0..32`,
    /// floating-point to `32..64`. Used by rename map tables.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self {
            ArchReg::Int(r) => r.index(),
            ArchReg::Fp(r) => Reg::COUNT + r.index(),
        }
    }

    /// Total number of flat indices ([`ArchReg::flat_index`] range).
    pub const FLAT_COUNT: usize = Reg::COUNT + FReg::COUNT;
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchReg::Int(r) => write!(f, "{r}"),
            ArchReg::Fp(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(31).index(), 31);
        assert_eq!(FReg::new(31).index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_rejects_32() {
        Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_rejects_32() {
        FReg::new(32);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert!(ArchReg::Int(Reg::ZERO).is_int_zero());
        assert!(!ArchReg::Fp(FReg::new(0)).is_int_zero());
    }

    #[test]
    fn flat_index_is_dense_and_disjoint() {
        let mut seen = [false; ArchReg::FLAT_COUNT];
        for i in 0..32 {
            seen[ArchReg::Int(Reg::new(i)).flat_index()] = true;
        }
        for i in 0..32 {
            seen[ArchReg::Fp(FReg::new(i)).flat_index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(9).to_string(), "x9");
        assert_eq!(FReg::new(9).to_string(), "f9");
        assert_eq!(ArchReg::Fp(FReg::new(2)).to_string(), "f2");
    }
}
