use std::cell::Cell;
use std::fmt;

use dmdc_types::{AccessSize, Addr};

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sentinel page number for an empty map slot / invalid cache entry.
/// Real page numbers never reach it (it would need an address ≥ 2^64+12).
const NO_PAGE: u64 = u64::MAX;

type Page = Box<[u8; PAGE_SIZE]>;

/// A sparse, page-granular byte-addressable memory.
///
/// Pages materialize on first touch and read as zero before that. Values are
/// little-endian. Both the functional emulator and the timing simulator's
/// committed memory use this type, so the golden-state comparison can simply
/// compare [`SparseMemory::checksum`] values.
///
/// Internally pages live in an open-addressed hash table with linear
/// probing (power-of-two capacity, ≤ 50% load), and a one-entry
/// *last-page cache* remembers the slot of the most recent lookup. Loads
/// and stores overwhelmingly hit the same page as their predecessor, so
/// the hot path is a tag compare plus an indexed slice access — no tree
/// walk, no hashing. Wide accesses that stay within one page (all
/// naturally aligned accesses do) are resolved to the page once and
/// copied as a slice instead of byte-by-byte.
///
/// # Examples
///
/// ```
/// use dmdc_isa::SparseMemory;
/// use dmdc_types::{AccessSize, Addr};
///
/// let mut m = SparseMemory::new();
/// m.write(Addr(0x1000), AccessSize::B4, 0xDEAD_BEEF);
/// assert_eq!(m.read(Addr(0x1000), AccessSize::B4), 0xDEAD_BEEF);
/// assert_eq!(m.read(Addr(0x1002), AccessSize::B2), 0xDEAD);
/// assert_eq!(m.read(Addr(0x2000), AccessSize::B8), 0, "untouched memory is zero");
/// ```
#[derive(Clone)]
pub struct SparseMemory {
    /// Open-addressed (page number, page) slots; `NO_PAGE` tags empties.
    slots: Vec<(u64, Option<Page>)>,
    /// Number of occupied slots.
    len: usize,
    /// Last-lookup cache: (page number, slot index). Interior mutability
    /// lets read paths refresh it; it is pure acceleration state — a clone
    /// copies it, which stays valid because slot layout is copied too.
    last: Cell<(u64, usize)>,
}

impl Default for SparseMemory {
    fn default() -> SparseMemory {
        SparseMemory::new()
    }
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> SparseMemory {
        SparseMemory {
            slots: Vec::new(),
            len: 0,
            last: Cell::new((NO_PAGE, 0)),
        }
    }

    #[inline]
    fn hash(page_no: u64, mask: usize) -> usize {
        // Fibonacci hashing spreads consecutive page numbers across slots.
        (page_no.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & mask
    }

    /// Finds the slot holding `page_no`, if present, via the last-page
    /// cache and then linear probing.
    #[inline]
    fn find(&self, page_no: u64) -> Option<usize> {
        let (cached_no, cached_slot) = self.last.get();
        if cached_no == page_no {
            return Some(cached_slot);
        }
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(page_no, mask);
        loop {
            let (tag, _) = self.slots[i];
            if tag == page_no {
                self.last.set((page_no, i));
                return Some(i);
            }
            if tag == NO_PAGE {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns the slot index for `page_no`, allocating (and possibly
    /// rehashing) if the page does not exist yet.
    fn find_or_insert(&mut self, page_no: u64) -> usize {
        if let Some(i) = self.find(page_no) {
            return i;
        }
        // Grow at 50% load so probe chains stay short. Rehashing moves
        // every slot, so the cache is invalidated.
        if self.slots.is_empty() || (self.len + 1) * 2 > self.slots.len() {
            let new_cap = (self.slots.len() * 2).max(16);
            let old = std::mem::replace(&mut self.slots, vec![(NO_PAGE, None); new_cap]);
            self.last.set((NO_PAGE, 0));
            let mask = new_cap - 1;
            for (tag, page) in old {
                if tag != NO_PAGE {
                    let mut i = Self::hash(tag, mask);
                    while self.slots[i].0 != NO_PAGE {
                        i = (i + 1) & mask;
                    }
                    self.slots[i] = (tag, page);
                }
            }
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(page_no, mask);
        while self.slots[i].0 != NO_PAGE {
            i = (i + 1) & mask;
        }
        self.slots[i] = (page_no, Some(Box::new([0; PAGE_SIZE])));
        self.len += 1;
        self.last.set((page_no, i));
        i
    }

    #[inline]
    fn page(&self, page_no: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.find(page_no).map(|i| {
            self.slots[i]
                .1
                .as_deref()
                .expect("occupied slot holds a page")
        })
    }

    #[inline]
    fn page_mut(&mut self, addr: Addr) -> &mut [u8; PAGE_SIZE] {
        let i = self.find_or_insert(addr.0 >> PAGE_SHIFT);
        self.slots[i]
            .1
            .as_deref_mut()
            .expect("occupied slot holds a page")
    }

    /// Reads one byte.
    #[inline]
    pub fn read_byte(&self, addr: Addr) -> u8 {
        match self.page(addr.0 >> PAGE_SHIFT) {
            Some(p) => p[(addr.0 as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_byte(&mut self, addr: Addr, value: u8) {
        let off = (addr.0 as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = value;
    }

    /// Reads a little-endian value of the given width, zero-extended to 64
    /// bits.
    #[inline]
    pub fn read(&self, addr: Addr, size: AccessSize) -> u64 {
        let bytes = size.bytes() as usize;
        let off = (addr.0 as usize) & (PAGE_SIZE - 1);
        if off + bytes <= PAGE_SIZE {
            // Single-page fast path: resolve the page once, then a
            // fixed-width little-endian load (a dynamic-length slice copy
            // would lower to a libc memcpy call per access).
            match self.page(addr.0 >> PAGE_SHIFT) {
                Some(p) => match size {
                    AccessSize::B1 => p[off] as u64,
                    AccessSize::B2 => {
                        u16::from_le_bytes(p[off..off + 2].try_into().unwrap()) as u64
                    }
                    AccessSize::B4 => {
                        u32::from_le_bytes(p[off..off + 4].try_into().unwrap()) as u64
                    }
                    AccessSize::B8 => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
                },
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..size.bytes() {
                v |= (self.read_byte(addr + i) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `size` bytes of `value`, little-endian.
    #[inline]
    pub fn write(&mut self, addr: Addr, size: AccessSize, value: u64) {
        let bytes = size.bytes() as usize;
        let off = (addr.0 as usize) & (PAGE_SIZE - 1);
        if off + bytes <= PAGE_SIZE {
            // Single-page fast path: resolve the page once, then a
            // fixed-width little-endian store (see `read` on why not a
            // dynamic-length slice copy).
            let p = self.page_mut(addr);
            match size {
                AccessSize::B1 => p[off] = value as u8,
                AccessSize::B2 => p[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
                AccessSize::B4 => p[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
                AccessSize::B8 => p[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            }
        } else {
            for i in 0..size.bytes() {
                self.write_byte(addr + i, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Copies a byte slice into memory starting at `addr`, page by page.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr.0 as usize) & (PAGE_SIZE - 1);
            let chunk = rest.len().min(PAGE_SIZE - off);
            let p = self.page_mut(addr);
            p[off..off + chunk].copy_from_slice(&rest[..chunk]);
            addr = addr + chunk as u64;
            rest = &rest[chunk..];
        }
    }

    /// Number of pages that have been touched.
    pub fn page_count(&self) -> usize {
        self.len
    }

    /// All (page number, page) pairs sorted by page number. Checksums and
    /// footprint reports need a canonical order; the hot path does not.
    fn sorted_pages(&self) -> Vec<(u64, &[u8; PAGE_SIZE])> {
        let mut pages: Vec<(u64, &[u8; PAGE_SIZE])> = self
            .slots
            .iter()
            .filter(|(tag, _)| *tag != NO_PAGE)
            .map(|(tag, page)| (*tag, &**page.as_ref().expect("occupied slot holds a page")))
            .collect();
        pages.sort_unstable_by_key(|&(no, _)| no);
        pages
    }

    /// An order-independent FNV-1a checksum over all touched, non-zero
    /// content. Two memories with the same logical contents (regardless of
    /// which zero pages were materialized) produce the same checksum.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        for (page_no, page) in self.sorted_pages() {
            if page.iter().all(|&b| b == 0) {
                continue; // a touched-but-zero page is indistinguishable from absent
            }
            for b in page_no.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            for &b in page.iter() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// The page-aligned base addresses of all touched pages, in order.
    /// Invalidation injection samples target addresses from this footprint.
    pub fn touched_pages(&self) -> Vec<Addr> {
        self.sorted_pages()
            .into_iter()
            .map(|(no, _)| Addr(no << PAGE_SHIFT))
            .collect()
    }

    /// The raw bytes of the page containing `addr`, if it has been
    /// touched. Bulk consumers (checkpoint capture) read whole pages
    /// through this instead of issuing thousands of word-sized `read`s.
    pub fn page_bytes(&self, addr: Addr) -> Option<&[u8]> {
        self.page(addr.0 >> PAGE_SHIFT).map(|p| &p[..])
    }
}

impl fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SparseMemory")
            .field("pages", &self.len)
            .field("checksum", &format_args!("{:#x}", self.checksum()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_touch() {
        let m = SparseMemory::new();
        assert_eq!(m.read(Addr(0), AccessSize::B8), 0);
        assert_eq!(m.read_byte(Addr(12345)), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = SparseMemory::new();
        m.write(Addr(0x100), AccessSize::B8, 0x0102_0304_0506_0708);
        assert_eq!(m.read_byte(Addr(0x100)), 0x08);
        assert_eq!(m.read_byte(Addr(0x107)), 0x01);
        assert_eq!(m.read(Addr(0x100), AccessSize::B8), 0x0102_0304_0506_0708);
        assert_eq!(m.read(Addr(0x100), AccessSize::B4), 0x0506_0708);
    }

    #[test]
    fn narrow_write_preserves_neighbors() {
        let mut m = SparseMemory::new();
        m.write(Addr(0x200), AccessSize::B8, u64::MAX);
        m.write(Addr(0x202), AccessSize::B2, 0);
        assert_eq!(m.read(Addr(0x200), AccessSize::B8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = Addr((1 << PAGE_SHIFT) - 4);
        m.write(addr, AccessSize::B8, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.read(addr, AccessSize::B8), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn write_truncates_to_size() {
        let mut m = SparseMemory::new();
        m.write(Addr(0), AccessSize::B1, 0x1234);
        assert_eq!(m.read(Addr(0), AccessSize::B8), 0x34);
    }

    #[test]
    fn checksum_ignores_zero_pages() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write(Addr(0x1000), AccessSize::B4, 77);
        b.write(Addr(0x1000), AccessSize::B4, 77);
        b.write(Addr(0x9000), AccessSize::B1, 0); // touches a page with zero
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn checksum_distinguishes_content_and_location() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write(Addr(0x1000), AccessSize::B4, 77);
        b.write(Addr(0x1000), AccessSize::B4, 78);
        assert_ne!(a.checksum(), b.checksum());

        let mut c = SparseMemory::new();
        c.write(Addr(0x2000), AccessSize::B4, 77);
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = SparseMemory::new();
        m.write_bytes(Addr(0x10), &[1, 2, 3, 4]);
        assert_eq!(m.read(Addr(0x10), AccessSize::B4), 0x0403_0201);
    }

    #[test]
    fn write_bytes_straddles_pages() {
        let mut m = SparseMemory::new();
        let base = Addr((1 << PAGE_SHIFT) - 3);
        let data: Vec<u8> = (1..=10).collect();
        m.write_bytes(base, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_byte(base + i as u64), b);
        }
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn touched_pages_reports_footprint() {
        let mut m = SparseMemory::new();
        m.write_byte(Addr(0x1000), 1);
        m.write_byte(Addr(0x5000), 1);
        assert_eq!(m.touched_pages(), vec![Addr(0x1000), Addr(0x5000)]);
    }

    #[test]
    fn touched_pages_sorted_regardless_of_touch_order() {
        let mut m = SparseMemory::new();
        for page in [9u64, 2, 7, 1, 30, 4] {
            m.write_byte(Addr(page << PAGE_SHIFT), 1);
        }
        let pages = m.touched_pages();
        let mut sorted = pages.clone();
        sorted.sort_by_key(|a| a.0);
        assert_eq!(pages, sorted);
        assert_eq!(pages.len(), 6);
    }

    // --- fast-path-specific tests -----------------------------------------

    #[test]
    fn page_straddling_reads_and_writes_match_per_byte_path() {
        let mut m = SparseMemory::new();
        // An unaligned span crossing the page boundary exercises the
        // per-byte fallback; the bytes must land exactly where the
        // fast path would put them within each page.
        let boundary = 3u64 << PAGE_SHIFT;
        for delta in 1..8u64 {
            let addr = Addr(boundary - delta);
            let value = 0x1122_3344_5566_7788u64 ^ delta;
            m.write(addr, AccessSize::B8, value);
            assert_eq!(m.read(addr, AccessSize::B8), value, "delta {delta}");
            for i in 0..8u64 {
                assert_eq!(
                    m.read_byte(addr + i),
                    (value >> (8 * i)) as u8,
                    "delta {delta} byte {i}"
                );
            }
        }
    }

    #[test]
    fn access_ending_exactly_at_page_boundary_stays_on_fast_path() {
        // `off + bytes == PAGE_SIZE` is the fast path's edge: the access
        // touches the page's final bytes but does not straddle.
        let mut m = SparseMemory::new();
        for size in [
            AccessSize::B1,
            AccessSize::B2,
            AccessSize::B4,
            AccessSize::B8,
        ] {
            let addr = Addr((5 << PAGE_SHIFT) - u64::from(size.bytes()));
            let value = 0xF0E1_D2C3_B4A5_9687u64 & ((1u128 << (8 * size.bytes())) - 1) as u64;
            m.write(addr, size, value);
            assert_eq!(m.read(addr, size), value, "{size:?}");
        }
        assert_eq!(m.page_count(), 1, "boundary-ending accesses never spill");
    }

    #[test]
    fn straddling_read_zero_fills_the_unmaterialized_page() {
        let mut m = SparseMemory::new();
        // Write only the first page's half of a straddling span; the tail
        // falls on a page that never materializes and must read as zero.
        let boundary = 7u64 << PAGE_SHIFT;
        let addr = Addr(boundary - 2);
        m.write(addr, AccessSize::B2, 0xBEEF);
        assert_eq!(m.page_count(), 1);
        assert_eq!(m.read(addr, AccessSize::B8), 0xBEEF);
        assert_eq!(m.page_count(), 1, "straddling reads must not materialize");

        // And the mirror image: only the second page exists.
        let mut m = SparseMemory::new();
        m.write(Addr(boundary), AccessSize::B2, 0xCAFE);
        assert_eq!(m.read(addr, AccessSize::B4), 0xCAFE_0000);
    }

    #[test]
    fn straddling_write_then_narrow_reads_on_both_sides() {
        let mut m = SparseMemory::new();
        let boundary = 9u64 << PAGE_SHIFT;
        m.write(Addr(boundary - 4), AccessSize::B8, 0x1122_3344_5566_7788);
        // Narrow fast-path reads on each side see their half.
        assert_eq!(m.read(Addr(boundary - 4), AccessSize::B4), 0x5566_7788);
        assert_eq!(m.read(Addr(boundary), AccessSize::B4), 0x1122_3344);
        // Overwriting one side through the fast path updates the wide view.
        m.write(Addr(boundary), AccessSize::B4, 0xAABB_CCDD);
        assert_eq!(
            m.read(Addr(boundary - 4), AccessSize::B8),
            0xAABB_CCDD_5566_7788
        );
    }

    #[test]
    fn last_page_cache_survives_alternating_pages() {
        let mut m = SparseMemory::new();
        // Ping-pong between two pages: every access flips the cache, and
        // every value must still come back intact.
        for round in 0..64u64 {
            m.write(Addr(0x1000 + round * 8), AccessSize::B8, round);
            m.write(Addr(0x8000 + round * 8), AccessSize::B8, !round);
        }
        for round in 0..64u64 {
            assert_eq!(m.read(Addr(0x1000 + round * 8), AccessSize::B8), round);
            assert_eq!(m.read(Addr(0x8000 + round * 8), AccessSize::B8), !round);
        }
    }

    #[test]
    fn cache_invalidated_by_rehash_on_new_page_allocation() {
        let mut m = SparseMemory::new();
        // Fill enough pages to force several grows/rehashes; interleave
        // reads of the very first page so a stale cached slot (pointing at
        // a pre-rehash position) would be caught immediately.
        m.write(Addr(0), AccessSize::B8, 0xA5A5);
        for page in 1..200u64 {
            m.write(Addr(page << PAGE_SHIFT), AccessSize::B8, page);
            assert_eq!(m.read(Addr(0), AccessSize::B8), 0xA5A5, "after page {page}");
        }
        assert_eq!(m.page_count(), 200);
        for page in 1..200u64 {
            assert_eq!(m.read(Addr(page << PAGE_SHIFT), AccessSize::B8), page);
        }
    }

    #[test]
    fn zero_fill_semantics_preserved_on_fresh_and_partial_pages() {
        let mut m = SparseMemory::new();
        // A fresh page reads zero everywhere except the written span.
        m.write(Addr(0x2008), AccessSize::B4, 0xFFFF_FFFF);
        assert_eq!(m.read(Addr(0x2000), AccessSize::B8), 0);
        assert_eq!(m.read(Addr(0x200C), AccessSize::B4), 0);
        assert_eq!(m.read(Addr(0x2008), AccessSize::B8), 0xFFFF_FFFF);
        // Reading a never-touched page allocates nothing.
        let before = m.page_count();
        assert_eq!(m.read(Addr(0xFFFF_0000), AccessSize::B8), 0);
        assert_eq!(m.page_count(), before, "reads must not materialize pages");
    }

    #[test]
    fn clone_does_not_alias() {
        let mut a = SparseMemory::new();
        a.write(Addr(0x4000), AccessSize::B8, 42);
        let b = a.clone();
        // Divergent writes after the clone must not alias.
        a.write(Addr(0x4000), AccessSize::B8, 43);
        assert_eq!(b.read(Addr(0x4000), AccessSize::B8), 42);
        assert_eq!(a.read(Addr(0x4000), AccessSize::B8), 43);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn many_pages_random_order_roundtrip() {
        let mut m = SparseMemory::new();
        // A multiplicative-stride page walk exercises hash collisions and
        // probe chains across several growth generations.
        let mut page = 1u64;
        for i in 0..500u64 {
            page = page
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = Addr(((page >> 20) & 0xFFFFF) << PAGE_SHIFT) + (i % 512) * 8;
            m.write(addr, AccessSize::B8, i);
            assert_eq!(m.read(addr, AccessSize::B8), i);
        }
    }
}
