use std::collections::BTreeMap;
use std::fmt;

use dmdc_types::{AccessSize, Addr};

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse, page-granular byte-addressable memory.
///
/// Pages materialize on first touch and read as zero before that. Values are
/// little-endian. Both the functional emulator and the timing simulator's
/// committed memory use this type, so the golden-state comparison can simply
/// compare [`SparseMemory::checksum`] values.
///
/// # Examples
///
/// ```
/// use dmdc_isa::SparseMemory;
/// use dmdc_types::{AccessSize, Addr};
///
/// let mut m = SparseMemory::new();
/// m.write(Addr(0x1000), AccessSize::B4, 0xDEAD_BEEF);
/// assert_eq!(m.read(Addr(0x1000), AccessSize::B4), 0xDEAD_BEEF);
/// assert_eq!(m.read(Addr(0x1002), AccessSize::B2), 0xDEAD);
/// assert_eq!(m.read(Addr(0x2000), AccessSize::B8), 0, "untouched memory is zero");
/// ```
#[derive(Clone, Default)]
pub struct SparseMemory {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    fn page_mut(&mut self, addr: Addr) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr.0 >> PAGE_SHIFT).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr.0 >> PAGE_SHIFT)) {
            Some(p) => p[(addr.0 as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: Addr, value: u8) {
        let off = (addr.0 as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = value;
    }

    /// Reads a little-endian value of the given width, zero-extended to 64
    /// bits.
    pub fn read(&self, addr: Addr, size: AccessSize) -> u64 {
        let mut v = 0u64;
        for i in 0..size.bytes() {
            v |= (self.read_byte(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value`, little-endian.
    pub fn write(&mut self, addr: Addr, size: AccessSize, value: u64) {
        for i in 0..size.bytes() {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(addr + i as u64, b);
        }
    }

    /// Number of pages that have been touched.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// An order-independent FNV-1a checksum over all touched, non-zero
    /// content. Two memories with the same logical contents (regardless of
    /// which zero pages were materialized) produce the same checksum.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        for (&page_no, page) in &self.pages {
            if page.iter().all(|&b| b == 0) {
                continue; // a touched-but-zero page is indistinguishable from absent
            }
            for b in page_no.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            for &b in page.iter() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// The page-aligned base addresses of all touched pages, in order.
    /// Invalidation injection samples target addresses from this footprint.
    pub fn touched_pages(&self) -> Vec<Addr> {
        self.pages.keys().map(|&p| Addr(p << PAGE_SHIFT)).collect()
    }
}

impl fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SparseMemory")
            .field("pages", &self.pages.len())
            .field("checksum", &format_args!("{:#x}", self.checksum()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_touch() {
        let m = SparseMemory::new();
        assert_eq!(m.read(Addr(0), AccessSize::B8), 0);
        assert_eq!(m.read_byte(Addr(12345)), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = SparseMemory::new();
        m.write(Addr(0x100), AccessSize::B8, 0x0102_0304_0506_0708);
        assert_eq!(m.read_byte(Addr(0x100)), 0x08);
        assert_eq!(m.read_byte(Addr(0x107)), 0x01);
        assert_eq!(m.read(Addr(0x100), AccessSize::B8), 0x0102_0304_0506_0708);
        assert_eq!(m.read(Addr(0x100), AccessSize::B4), 0x0506_0708);
    }

    #[test]
    fn narrow_write_preserves_neighbors() {
        let mut m = SparseMemory::new();
        m.write(Addr(0x200), AccessSize::B8, u64::MAX);
        m.write(Addr(0x202), AccessSize::B2, 0);
        assert_eq!(m.read(Addr(0x200), AccessSize::B8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = Addr((1 << PAGE_SHIFT) - 4);
        m.write(addr, AccessSize::B8, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.read(addr, AccessSize::B8), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn write_truncates_to_size() {
        let mut m = SparseMemory::new();
        m.write(Addr(0), AccessSize::B1, 0x1234);
        assert_eq!(m.read(Addr(0), AccessSize::B8), 0x34);
    }

    #[test]
    fn checksum_ignores_zero_pages() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write(Addr(0x1000), AccessSize::B4, 77);
        b.write(Addr(0x1000), AccessSize::B4, 77);
        b.write(Addr(0x9000), AccessSize::B1, 0); // touches a page with zero
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn checksum_distinguishes_content_and_location() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write(Addr(0x1000), AccessSize::B4, 77);
        b.write(Addr(0x1000), AccessSize::B4, 78);
        assert_ne!(a.checksum(), b.checksum());

        let mut c = SparseMemory::new();
        c.write(Addr(0x2000), AccessSize::B4, 77);
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = SparseMemory::new();
        m.write_bytes(Addr(0x10), &[1, 2, 3, 4]);
        assert_eq!(m.read(Addr(0x10), AccessSize::B4), 0x0403_0201);
    }

    #[test]
    fn touched_pages_reports_footprint() {
        let mut m = SparseMemory::new();
        m.write_byte(Addr(0x1000), 1);
        m.write_byte(Addr(0x5000), 1);
        assert_eq!(m.touched_pages(), vec![Addr(0x1000), Addr(0x5000)]);
    }
}
