//! Block-compiled silent execution: the fast-forward engine behind
//! statistical sampling.
//!
//! [`Emulator::step`] is built for observability — it returns a
//! [`Retired`](crate::Retired) record (with a `MemSpan` for memory
//! instructions and a taken flag for branches) per instruction, which the
//! warming and audit layers consume. During a sampled run's *silent*
//! fast-forward stretch nobody reads any of that: tens of millions of
//! instructions are executed purely for their architectural effect. This
//! module pre-decodes a [`Program`] once into straight-line runs of
//! flattened [`MicroOp`]s and executes them in a tight loop that skips
//! `Retired` construction, `MemSpan` building, per-step fetch
//! bounds-checks and per-step halt re-checks.
//!
//! The compiled form resolves everything resolvable at compile time:
//!
//! * register operands become raw array indices (no `Reg` unwrapping);
//! * immediates are pre-sign-extended to their 64-bit runtime form;
//! * effective-address offsets are pre-widened and the natural-alignment
//!   mask (`size - 1`) is pre-computed, so the per-access check is one
//!   AND (the dynamic base register keeps full pre-validation static
//!   offsets alone cannot provide);
//! * `lui` and ALU-immediate ops reading `x0` fold to load-constant;
//!   architectural no-ops (any op writing only `x0`, never-taken
//!   same-register branches) fold to `Nop`; always-taken same-register
//!   branches fold to unconditional jumps.
//!
//! **Equivalence contract**: executing `n` instructions through
//! [`Emulator::run_silent`] leaves the emulator in *bit-identical* state
//! (pc, retired count, halted flag, registers, memory, and therefore
//! [`Emulator::state_checksum`]) to `n` [`Emulator::step`] calls, and
//! raises the same [`EmuError`] at the same instruction. The differential
//! proptest in `tests/block_equivalence.rs` pins this contract over random
//! fuzz kernels and every registry workload.

use dmdc_types::{AccessSize, Addr};

use crate::emu::{fp_from_bits, fp_to_bits, fp_to_int, sign_extend, EmuError, Emulator};
use crate::inst::{AluOp, BranchCond, FcmpCond, FpuOp, Inst};
use crate::program::Program;

/// One flattened micro-operation: an [`Inst`] with registers resolved to
/// indices, immediates widened, effective-address forms fused and
/// alignment masks pre-computed. Register fields are raw `[u64; 32]`
/// indices; ops whose integer destination is `x0` are never emitted with
/// `rd = 0` unless the variant's executor guards the write (loads and
/// jumps, where the access or transfer must still happen).
#[derive(Debug, Clone, Copy)]
enum MicroOp {
    /// No architectural effect (also: folded `x0`-destination ALU ops and
    /// never-taken same-register branches).
    Nop,
    /// `rd = value` — folded `lui` and constant-operand ALU forms.
    Const {
        rd: u8,
        value: u64,
    },
    /// `rd = rs1 + rs2`. The dominant ALU op gets its own dispatch arm so
    /// executing it is one indirect jump, not a jump into [`MicroOp::Alu`]
    /// followed by a second jump through [`AluOp::eval`]'s match.
    Add {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// `rd = rs1 + imm` — the dominant immediate form (loop counters and
    /// address bumps); see [`MicroOp::Add`] for why it is split out.
    AddImm {
        rd: u8,
        rs1: u8,
        imm: u64,
    },
    Alu {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: u64,
    },
    /// 8-byte load — the dominant width gets a dedicated arm so the size
    /// match inside [`SparseMemory::read`], the alignment mask and the
    /// (vacuous at 8 bytes) sign extension all fold at compile time.
    LoadD {
        rd: u8,
        base: u8,
        offset: i64,
    },
    /// 8-byte store (see [`MicroOp::LoadD`]).
    StoreD {
        src: u8,
        base: u8,
        offset: i64,
    },
    /// 8-byte FP load (see [`MicroOp::LoadD`]).
    FLoadD {
        fd: u8,
        base: u8,
        offset: i64,
    },
    /// 8-byte FP store (see [`MicroOp::LoadD`]).
    FStoreD {
        src: u8,
        base: u8,
        offset: i64,
    },
    Load {
        rd: u8,
        base: u8,
        offset: i64,
        size: AccessSize,
        signed: bool,
        align_mask: u64,
    },
    Store {
        src: u8,
        base: u8,
        offset: i64,
        size: AccessSize,
        align_mask: u64,
    },
    FLoad {
        fd: u8,
        base: u8,
        offset: i64,
        size: AccessSize,
        align_mask: u64,
    },
    FStore {
        src: u8,
        base: u8,
        offset: i64,
        size: AccessSize,
        align_mask: u64,
    },
    Fpu {
        op: FpuOp,
        fd: u8,
        fs1: u8,
        fs2: u8,
    },
    Fcmp {
        cond: FcmpCond,
        rd: u8,
        fs1: u8,
        fs2: u8,
    },
    IntToFp {
        fd: u8,
        rs: u8,
    },
    FpToInt {
        rd: u8,
        fs: u8,
    },
    // Control terminators: `run_len` is 0 at these pcs and the outer loop
    // executes them individually.
    /// `beq` — the common loop conditions get their own dispatch arms
    /// (see [`MicroOp::Add`]); [`MicroOp::Branch`] keeps the rest.
    BranchEq {
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// `bne` (see [`MicroOp::BranchEq`]).
    BranchNe {
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// `blt`, signed (see [`MicroOp::BranchEq`]).
    BranchLt {
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// Unconditional jump (also: folded always-taken same-register
    /// branches, with `rd = 0`).
    Jal {
        rd: u8,
        target: u32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
    },
    Halt,
}

impl MicroOp {
    /// Whether this op terminates a straight-line run.
    fn is_control(&self) -> bool {
        matches!(
            self,
            MicroOp::BranchEq { .. }
                | MicroOp::BranchNe { .. }
                | MicroOp::BranchLt { .. }
                | MicroOp::Branch { .. }
                | MicroOp::Jal { .. }
                | MicroOp::Jalr { .. }
                | MicroOp::Halt
        )
    }
}

/// Lowers one instruction to its flattened form, folding what is constant
/// at compile time. Every fold preserves exact architectural semantics:
/// the folded op retires, advances the pc and writes (or not) exactly as
/// [`Emulator::step`] would.
fn lower(inst: Inst) -> MicroOp {
    match inst {
        Inst::Nop => MicroOp::Nop,
        Inst::Halt => MicroOp::Halt,
        Inst::Alu { op, rd, rs1, rs2 } => {
            if rd.is_zero() {
                MicroOp::Nop
            } else if rs1.is_zero() && rs2.is_zero() {
                MicroOp::Const {
                    rd: rd.index() as u8,
                    value: op.eval(0, 0),
                }
            } else if op == AluOp::Add {
                MicroOp::Add {
                    rd: rd.index() as u8,
                    rs1: rs1.index() as u8,
                    rs2: rs2.index() as u8,
                }
            } else {
                MicroOp::Alu {
                    op,
                    rd: rd.index() as u8,
                    rs1: rs1.index() as u8,
                    rs2: rs2.index() as u8,
                }
            }
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let imm = imm as i64 as u64;
            if rd.is_zero() {
                MicroOp::Nop
            } else if rs1.is_zero() {
                MicroOp::Const {
                    rd: rd.index() as u8,
                    value: op.eval(0, imm),
                }
            } else if op == AluOp::Add {
                MicroOp::AddImm {
                    rd: rd.index() as u8,
                    rs1: rs1.index() as u8,
                    imm,
                }
            } else {
                MicroOp::AluImm {
                    op,
                    rd: rd.index() as u8,
                    rs1: rs1.index() as u8,
                    imm,
                }
            }
        }
        Inst::Lui { rd, imm } => {
            if rd.is_zero() {
                MicroOp::Nop
            } else {
                MicroOp::Const {
                    rd: rd.index() as u8,
                    value: ((imm as i64) << 16) as u64,
                }
            }
        }
        Inst::Load {
            size,
            signed,
            rd,
            base,
            offset,
        } => {
            if size == AccessSize::B8 {
                // `signed` is vacuous at full width: sign_extend(x, B8) = x.
                MicroOp::LoadD {
                    rd: rd.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                }
            } else {
                MicroOp::Load {
                    rd: rd.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                    size,
                    signed,
                    align_mask: size.bytes() - 1,
                }
            }
        }
        Inst::Store {
            size,
            src,
            base,
            offset,
        } => {
            if size == AccessSize::B8 {
                MicroOp::StoreD {
                    src: src.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                }
            } else {
                MicroOp::Store {
                    src: src.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                    size,
                    align_mask: size.bytes() - 1,
                }
            }
        }
        Inst::FLoad {
            size,
            fd,
            base,
            offset,
        } => {
            if size == AccessSize::B8 {
                MicroOp::FLoadD {
                    fd: fd.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                }
            } else {
                MicroOp::FLoad {
                    fd: fd.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                    size,
                    align_mask: size.bytes() - 1,
                }
            }
        }
        Inst::FStore {
            size,
            src,
            base,
            offset,
        } => {
            if size == AccessSize::B8 {
                MicroOp::FStoreD {
                    src: src.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                }
            } else {
                MicroOp::FStore {
                    src: src.index() as u8,
                    base: base.index() as u8,
                    offset: offset as i64,
                    size,
                    align_mask: size.bytes() - 1,
                }
            }
        }
        Inst::Fpu { op, fd, fs1, fs2 } => MicroOp::Fpu {
            op,
            fd: fd.index() as u8,
            fs1: fs1.index() as u8,
            fs2: fs2.index() as u8,
        },
        Inst::Fcmp { cond, rd, fs1, fs2 } => {
            if rd.is_zero() {
                MicroOp::Nop
            } else {
                MicroOp::Fcmp {
                    cond,
                    rd: rd.index() as u8,
                    fs1: fs1.index() as u8,
                    fs2: fs2.index() as u8,
                }
            }
        }
        Inst::IntToFp { fd, rs } => MicroOp::IntToFp {
            fd: fd.index() as u8,
            rs: rs.index() as u8,
        },
        Inst::FpToInt { rd, fs } => {
            if rd.is_zero() {
                MicroOp::Nop
            } else {
                MicroOp::FpToInt {
                    rd: rd.index() as u8,
                    fs: fs.index() as u8,
                }
            }
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            if rs1 == rs2 {
                // Same-register compare: the outcome is a compile-time
                // constant (`a op a`). Taken folds to an unconditional
                // jump, not-taken to a plain fall-through.
                if cond.eval(0, 0) {
                    MicroOp::Jal { rd: 0, target }
                } else {
                    MicroOp::Nop
                }
            } else {
                let (rs1, rs2) = (rs1.index() as u8, rs2.index() as u8);
                match cond {
                    BranchCond::Eq => MicroOp::BranchEq { rs1, rs2, target },
                    BranchCond::Ne => MicroOp::BranchNe { rs1, rs2, target },
                    BranchCond::Lt => MicroOp::BranchLt { rs1, rs2, target },
                    _ => MicroOp::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    },
                }
            }
        }
        Inst::Jal { rd, target } => MicroOp::Jal {
            rd: rd.index() as u8,
            target,
        },
        Inst::Jalr { rd, rs1 } => MicroOp::Jalr {
            rd: rd.index() as u8,
            rs1: rs1.index() as u8,
        },
    }
}

/// Counters from one [`Emulator::run_silent`] call: how much of the
/// stretch executed as whole straight-line blocks versus the single-step
/// fallback used for the partial block at the stop boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SilentStats {
    /// Straight-line runs and control transfers executed whole.
    pub blocks: u64,
    /// Instructions executed through the [`Emulator::step`] fallback
    /// (the partial block truncated by the retired-count target).
    pub fallback_steps: u64,
}

impl SilentStats {
    /// Folds another call's counters into this one.
    pub fn merge(&mut self, other: SilentStats) {
        self.blocks += other.blocks;
        self.fallback_steps += other.fallback_steps;
    }
}

/// What one pc held *before* lowering, for the observed executor: the
/// compile-time folds erase whether an op was a conditional branch or an
/// indirect jump, but the functional warmer must still train the branch
/// predictor and BTB exactly as a `step()` stream would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstKind {
    Other,
    CondBranch,
    IndirectJump,
}

/// A program pre-decoded for silent execution: one [`MicroOp`] per
/// instruction index, the length of the straight-line run starting at
/// each pc (0 at control terminators), and the original instruction kind
/// (so folded branches still reach the observer). Compile once per
/// program, reuse across every fast-forward over it.
#[derive(Debug, Clone)]
pub struct BlockCode {
    ops: Vec<MicroOp>,
    run_len: Vec<u32>,
    kinds: Vec<InstKind>,
}

impl BlockCode {
    /// Pre-decodes `program`. Cost is linear in the static instruction
    /// count — negligible next to a single fast-forward over it.
    pub fn compile(program: &Program) -> BlockCode {
        let ops: Vec<MicroOp> = program.insts().iter().map(|&i| lower(i)).collect();
        let kinds = program
            .insts()
            .iter()
            .map(|i| match i {
                Inst::Branch { .. } => InstKind::CondBranch,
                Inst::Jalr { .. } => InstKind::IndirectJump,
                _ => InstKind::Other,
            })
            .collect();
        let mut run_len = vec![0u32; ops.len()];
        for pc in (0..ops.len()).rev() {
            if !ops[pc].is_control() {
                run_len[pc] = 1 + if pc + 1 < ops.len() {
                    run_len[pc + 1]
                } else {
                    0
                };
            }
        }
        BlockCode {
            ops,
            run_len,
            kinds,
        }
    }

    /// Static instruction count of the compiled program.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the compiled program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The silent-run driver behind [`Emulator::run_silent`]: executes until
/// `target` total retired instructions or `halt`, whole blocks at a time,
/// degrading to `step()` only for the partial block at the boundary.
///
/// The pc and retired count live in locals for the duration of the loop
/// (synced back to the emulator at every exit, including faults), so the
/// hot path never round-trips them through memory.
pub(crate) fn run_silent(
    emu: &mut Emulator<'_>,
    code: &BlockCode,
    target: u64,
) -> Result<SilentStats, EmuError> {
    debug_assert_eq!(
        code.len(),
        emu.program.insts().len(),
        "BlockCode compiled from a different program"
    );
    let mut stats = SilentStats::default();
    if emu.halted || emu.retired >= target {
        return Ok(stats);
    }
    let ops = code.ops.as_slice();
    let run_len = code.run_len.as_slice();
    let mut pc = emu.pc;
    let mut retired = emu.retired;
    // Register indices below are always `(x & 31) as usize`: compiled
    // indices are already < 32, so the mask is a no-op semantically, but
    // it lets the optimizer drop the slice bounds check (and its panic
    // branch) from every register access in the hot loop.
    macro_rules! checked_ea {
        ($i:expr, $base:expr, $offset:expr, $size:expr, $mask:expr) => {{
            let addr = Addr(emu.int_regs[($base & 31) as usize]).wrapping_offset($offset);
            if addr.0 & $mask != 0 {
                // A `step()` sequence would fault with the pc and retired
                // count advanced to the offending instruction.
                emu.pc = pc + $i as u32;
                emu.retired = retired + $i as u64;
                return Err(EmuError::Misaligned {
                    pc: emu.pc,
                    addr,
                    size: $size,
                });
            }
            addr
        }};
    }
    loop {
        let pci = pc as usize;
        let Some(&n) = run_len.get(pci) else {
            emu.pc = pc;
            emu.retired = retired;
            return Err(EmuError::PcOutOfRange { pc });
        };
        let n = u64::from(n);
        if n == 0 {
            // Control terminator. Infallible: an out-of-range transfer
            // target surfaces as `PcOutOfRange` on the *next* dispatch,
            // exactly when a `step()` sequence would fail its fetch.
            match ops[pci] {
                MicroOp::Halt => {
                    // pc stays on the halt instruction, matching `step()`.
                    emu.halted = true;
                    stats.blocks += 1;
                    retired += 1;
                    break;
                }
                MicroOp::BranchEq { rs1, rs2, target } => {
                    pc = if emu.int_regs[(rs1 & 31) as usize] == emu.int_regs[(rs2 & 31) as usize] {
                        target
                    } else {
                        pc + 1
                    };
                }
                MicroOp::BranchNe { rs1, rs2, target } => {
                    pc = if emu.int_regs[(rs1 & 31) as usize] != emu.int_regs[(rs2 & 31) as usize] {
                        target
                    } else {
                        pc + 1
                    };
                }
                MicroOp::BranchLt { rs1, rs2, target } => {
                    pc = if (emu.int_regs[(rs1 & 31) as usize] as i64)
                        < (emu.int_regs[(rs2 & 31) as usize] as i64)
                    {
                        target
                    } else {
                        pc + 1
                    };
                }
                MicroOp::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    pc = if cond.eval(
                        emu.int_regs[(rs1 & 31) as usize],
                        emu.int_regs[(rs2 & 31) as usize],
                    ) {
                        target
                    } else {
                        pc + 1
                    };
                }
                MicroOp::Jal { rd, target } => {
                    if rd != 0 {
                        emu.int_regs[(rd & 31) as usize] = (pc + 1) as u64;
                    }
                    pc = target;
                }
                MicroOp::Jalr { rd, rs1 } => {
                    // Read the target before the link write: rd may alias
                    // rs1.
                    let target = emu.int_regs[(rs1 & 31) as usize] as u32;
                    if rd != 0 {
                        emu.int_regs[(rd & 31) as usize] = (pc + 1) as u64;
                    }
                    pc = target;
                }
                _ => unreachable!("straight-line ops have a non-zero run_len"),
            }
            stats.blocks += 1;
            retired += 1;
            if retired >= target {
                break;
            }
            continue;
        }
        if n > target - retired {
            // The block would overshoot the stop point: fall back to the
            // observable interpreter for the truncated remainder so the
            // loop stops exactly at `target`. (The remainder is all
            // straight-line ops, so no halt can occur inside it.)
            emu.pc = pc;
            emu.retired = retired;
            for _ in retired..target {
                emu.step()?;
                stats.fallback_steps += 1;
            }
            pc = emu.pc;
            retired = emu.retired;
            break;
        }
        // One full straight-line run of non-control ops. On success the pc
        // and retired count advance past the whole slice; on a
        // misalignment fault they advance to the faulting instruction
        // exactly as a `step()` sequence would have left them.
        for (i, op) in ops[pci..pci + n as usize].iter().enumerate() {
            match *op {
                MicroOp::Nop => {}
                MicroOp::Const { rd, value } => emu.int_regs[(rd & 31) as usize] = value,
                MicroOp::Add { rd, rs1, rs2 } => {
                    emu.int_regs[(rd & 31) as usize] = emu.int_regs[(rs1 & 31) as usize]
                        .wrapping_add(emu.int_regs[(rs2 & 31) as usize]);
                }
                MicroOp::AddImm { rd, rs1, imm } => {
                    emu.int_regs[(rd & 31) as usize] =
                        emu.int_regs[(rs1 & 31) as usize].wrapping_add(imm);
                }
                MicroOp::Alu { op, rd, rs1, rs2 } => {
                    emu.int_regs[(rd & 31) as usize] = op.eval(
                        emu.int_regs[(rs1 & 31) as usize],
                        emu.int_regs[(rs2 & 31) as usize],
                    );
                }
                MicroOp::AluImm { op, rd, rs1, imm } => {
                    emu.int_regs[(rd & 31) as usize] =
                        op.eval(emu.int_regs[(rs1 & 31) as usize], imm);
                }
                MicroOp::LoadD { rd, base, offset } => {
                    let addr = checked_ea!(i, base, offset, AccessSize::B8, 7);
                    let raw = emu.mem.read(addr, AccessSize::B8);
                    if rd != 0 {
                        emu.int_regs[(rd & 31) as usize] = raw;
                    }
                }
                MicroOp::StoreD { src, base, offset } => {
                    let addr = checked_ea!(i, base, offset, AccessSize::B8, 7);
                    emu.mem
                        .write(addr, AccessSize::B8, emu.int_regs[(src & 31) as usize]);
                }
                MicroOp::FLoadD { fd, base, offset } => {
                    let addr = checked_ea!(i, base, offset, AccessSize::B8, 7);
                    emu.fp_regs[(fd & 31) as usize] =
                        f64::from_bits(emu.mem.read(addr, AccessSize::B8));
                }
                MicroOp::FStoreD { src, base, offset } => {
                    let addr = checked_ea!(i, base, offset, AccessSize::B8, 7);
                    emu.mem.write(
                        addr,
                        AccessSize::B8,
                        emu.fp_regs[(src & 31) as usize].to_bits(),
                    );
                }
                MicroOp::Load {
                    rd,
                    base,
                    offset,
                    size,
                    signed,
                    align_mask,
                } => {
                    let addr = checked_ea!(i, base, offset, size, align_mask);
                    let raw = emu.mem.read(addr, size);
                    if rd != 0 {
                        emu.int_regs[(rd & 31) as usize] =
                            if signed { sign_extend(raw, size) } else { raw };
                    }
                }
                MicroOp::Store {
                    src,
                    base,
                    offset,
                    size,
                    align_mask,
                } => {
                    let addr = checked_ea!(i, base, offset, size, align_mask);
                    emu.mem.write(addr, size, emu.int_regs[(src & 31) as usize]);
                }
                MicroOp::FLoad {
                    fd,
                    base,
                    offset,
                    size,
                    align_mask,
                } => {
                    let addr = checked_ea!(i, base, offset, size, align_mask);
                    emu.fp_regs[(fd & 31) as usize] = fp_from_bits(emu.mem.read(addr, size), size);
                }
                MicroOp::FStore {
                    src,
                    base,
                    offset,
                    size,
                    align_mask,
                } => {
                    let addr = checked_ea!(i, base, offset, size, align_mask);
                    emu.mem.write(
                        addr,
                        size,
                        fp_to_bits(emu.fp_regs[(src & 31) as usize], size),
                    );
                }
                MicroOp::Fpu { op, fd, fs1, fs2 } => {
                    emu.fp_regs[(fd & 31) as usize] = op.eval(
                        emu.fp_regs[(fs1 & 31) as usize],
                        emu.fp_regs[(fs2 & 31) as usize],
                    );
                }
                MicroOp::Fcmp { cond, rd, fs1, fs2 } => {
                    emu.int_regs[(rd & 31) as usize] = cond.eval(
                        emu.fp_regs[(fs1 & 31) as usize],
                        emu.fp_regs[(fs2 & 31) as usize],
                    ) as u64;
                }
                MicroOp::IntToFp { fd, rs } => {
                    emu.fp_regs[(fd & 31) as usize] =
                        emu.int_regs[(rs & 31) as usize] as i64 as f64;
                }
                MicroOp::FpToInt { rd, fs } => {
                    emu.int_regs[(rd & 31) as usize] = fp_to_int(emu.fp_regs[(fs & 31) as usize]);
                }
                MicroOp::BranchEq { .. }
                | MicroOp::BranchNe { .. }
                | MicroOp::BranchLt { .. }
                | MicroOp::Branch { .. }
                | MicroOp::Jal { .. }
                | MicroOp::Jalr { .. }
                | MicroOp::Halt => {
                    unreachable!("control ops never appear inside a straight-line run")
                }
            }
        }
        pc += n as u32;
        retired += n;
        stats.blocks += 1;
        if retired >= target {
            break;
        }
    }
    emu.pc = pc;
    emu.retired = retired;
    Ok(stats)
}

/// The retirement events a `step()` stream exposes, re-derived from the
/// compiled form so [`Emulator::run_observed`] can drive functional
/// warming without building [`Retired`](crate::Retired) records.
///
/// Call order per retired instruction is fixed: `retire`, then `mem` (for
/// memory ops), then `branch`/`jalr` (for control ops) — the same order a
/// consumer of `Retired` naturally observes its fields. A faulting
/// instruction produces **no** callbacks, matching a `step()` loop where
/// the error return pre-empts observation.
pub trait SilentObserver {
    /// Every retired instruction, in program order.
    fn retire(&mut self, pc: u32);
    /// Every committed memory access (integer and FP loads and stores).
    fn mem(&mut self, addr: Addr);
    /// Every *original* conditional branch with its outcome — including
    /// branches the compiler folded to `Nop` (never taken) or an
    /// unconditional jump (always taken).
    fn branch(&mut self, pc: u32, taken: bool);
    /// Every indirect jump with its resolved target.
    fn jalr(&mut self, pc: u32, next_pc: u32);
}

/// The observed-run driver behind [`Emulator::run_observed`]: executes
/// until `target` total retired instructions or `halt`, one pre-decoded
/// micro-op at a time, reporting each retirement to `obs`. Architectural
/// effects, stop conditions and fault positioning are bit-identical to a
/// `step()` loop over the same stretch; the savings come from skipping
/// per-step fetch checks and `Retired`/`MemSpan` construction, which the
/// functional-warming loop never reads.
pub(crate) fn run_observed<O: SilentObserver>(
    emu: &mut Emulator<'_>,
    code: &BlockCode,
    target: u64,
    obs: &mut O,
) -> Result<(), EmuError> {
    debug_assert_eq!(
        code.len(),
        emu.program.insts().len(),
        "BlockCode compiled from a different program"
    );
    if emu.halted || emu.retired >= target {
        return Ok(());
    }
    let ops = code.ops.as_slice();
    let kinds = code.kinds.as_slice();
    let mut pc = emu.pc;
    let mut retired = emu.retired;
    macro_rules! checked_ea {
        ($base:expr, $offset:expr, $size:expr, $mask:expr) => {{
            let addr = Addr(emu.int_regs[($base & 31) as usize]).wrapping_offset($offset);
            if addr.0 & $mask != 0 {
                emu.pc = pc;
                emu.retired = retired;
                return Err(EmuError::Misaligned {
                    pc,
                    addr,
                    size: $size,
                });
            }
            addr
        }};
    }
    loop {
        let pci = pc as usize;
        let Some(&op) = ops.get(pci) else {
            emu.pc = pc;
            emu.retired = retired;
            return Err(EmuError::PcOutOfRange { pc });
        };
        match op {
            MicroOp::Nop => {
                obs.retire(pc);
                // A never-taken same-register branch folded to `Nop`
                // still trains the predictor with its (constant) outcome.
                if kinds[pci] == InstKind::CondBranch {
                    obs.branch(pc, false);
                }
                pc += 1;
            }
            MicroOp::Const { rd, value } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] = value;
                pc += 1;
            }
            MicroOp::Add { rd, rs1, rs2 } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] = emu.int_regs[(rs1 & 31) as usize]
                    .wrapping_add(emu.int_regs[(rs2 & 31) as usize]);
                pc += 1;
            }
            MicroOp::AddImm { rd, rs1, imm } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] =
                    emu.int_regs[(rs1 & 31) as usize].wrapping_add(imm);
                pc += 1;
            }
            MicroOp::Alu { op, rd, rs1, rs2 } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] = op.eval(
                    emu.int_regs[(rs1 & 31) as usize],
                    emu.int_regs[(rs2 & 31) as usize],
                );
                pc += 1;
            }
            MicroOp::AluImm { op, rd, rs1, imm } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] = op.eval(emu.int_regs[(rs1 & 31) as usize], imm);
                pc += 1;
            }
            MicroOp::LoadD { rd, base, offset } => {
                let addr = checked_ea!(base, offset, AccessSize::B8, 7);
                obs.retire(pc);
                obs.mem(addr);
                let raw = emu.mem.read(addr, AccessSize::B8);
                if rd != 0 {
                    emu.int_regs[(rd & 31) as usize] = raw;
                }
                pc += 1;
            }
            MicroOp::StoreD { src, base, offset } => {
                let addr = checked_ea!(base, offset, AccessSize::B8, 7);
                obs.retire(pc);
                obs.mem(addr);
                emu.mem
                    .write(addr, AccessSize::B8, emu.int_regs[(src & 31) as usize]);
                pc += 1;
            }
            MicroOp::FLoadD { fd, base, offset } => {
                let addr = checked_ea!(base, offset, AccessSize::B8, 7);
                obs.retire(pc);
                obs.mem(addr);
                emu.fp_regs[(fd & 31) as usize] =
                    f64::from_bits(emu.mem.read(addr, AccessSize::B8));
                pc += 1;
            }
            MicroOp::FStoreD { src, base, offset } => {
                let addr = checked_ea!(base, offset, AccessSize::B8, 7);
                obs.retire(pc);
                obs.mem(addr);
                emu.mem.write(
                    addr,
                    AccessSize::B8,
                    emu.fp_regs[(src & 31) as usize].to_bits(),
                );
                pc += 1;
            }
            MicroOp::Load {
                rd,
                base,
                offset,
                size,
                signed,
                align_mask,
            } => {
                let addr = checked_ea!(base, offset, size, align_mask);
                obs.retire(pc);
                obs.mem(addr);
                let raw = emu.mem.read(addr, size);
                if rd != 0 {
                    emu.int_regs[(rd & 31) as usize] =
                        if signed { sign_extend(raw, size) } else { raw };
                }
                pc += 1;
            }
            MicroOp::Store {
                src,
                base,
                offset,
                size,
                align_mask,
            } => {
                let addr = checked_ea!(base, offset, size, align_mask);
                obs.retire(pc);
                obs.mem(addr);
                emu.mem.write(addr, size, emu.int_regs[(src & 31) as usize]);
                pc += 1;
            }
            MicroOp::FLoad {
                fd,
                base,
                offset,
                size,
                align_mask,
            } => {
                let addr = checked_ea!(base, offset, size, align_mask);
                obs.retire(pc);
                obs.mem(addr);
                emu.fp_regs[(fd & 31) as usize] = fp_from_bits(emu.mem.read(addr, size), size);
                pc += 1;
            }
            MicroOp::FStore {
                src,
                base,
                offset,
                size,
                align_mask,
            } => {
                let addr = checked_ea!(base, offset, size, align_mask);
                obs.retire(pc);
                obs.mem(addr);
                emu.mem.write(
                    addr,
                    size,
                    fp_to_bits(emu.fp_regs[(src & 31) as usize], size),
                );
                pc += 1;
            }
            MicroOp::Fpu { op, fd, fs1, fs2 } => {
                obs.retire(pc);
                emu.fp_regs[(fd & 31) as usize] = op.eval(
                    emu.fp_regs[(fs1 & 31) as usize],
                    emu.fp_regs[(fs2 & 31) as usize],
                );
                pc += 1;
            }
            MicroOp::Fcmp { cond, rd, fs1, fs2 } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] = cond.eval(
                    emu.fp_regs[(fs1 & 31) as usize],
                    emu.fp_regs[(fs2 & 31) as usize],
                ) as u64;
                pc += 1;
            }
            MicroOp::IntToFp { fd, rs } => {
                obs.retire(pc);
                emu.fp_regs[(fd & 31) as usize] = emu.int_regs[(rs & 31) as usize] as i64 as f64;
                pc += 1;
            }
            MicroOp::FpToInt { rd, fs } => {
                obs.retire(pc);
                emu.int_regs[(rd & 31) as usize] = fp_to_int(emu.fp_regs[(fs & 31) as usize]);
                pc += 1;
            }
            MicroOp::BranchEq { rs1, rs2, target } => {
                let taken = emu.int_regs[(rs1 & 31) as usize] == emu.int_regs[(rs2 & 31) as usize];
                obs.retire(pc);
                obs.branch(pc, taken);
                pc = if taken { target } else { pc + 1 };
            }
            MicroOp::BranchNe { rs1, rs2, target } => {
                let taken = emu.int_regs[(rs1 & 31) as usize] != emu.int_regs[(rs2 & 31) as usize];
                obs.retire(pc);
                obs.branch(pc, taken);
                pc = if taken { target } else { pc + 1 };
            }
            MicroOp::BranchLt { rs1, rs2, target } => {
                let taken = (emu.int_regs[(rs1 & 31) as usize] as i64)
                    < (emu.int_regs[(rs2 & 31) as usize] as i64);
                obs.retire(pc);
                obs.branch(pc, taken);
                pc = if taken { target } else { pc + 1 };
            }
            MicroOp::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(
                    emu.int_regs[(rs1 & 31) as usize],
                    emu.int_regs[(rs2 & 31) as usize],
                );
                obs.retire(pc);
                obs.branch(pc, taken);
                pc = if taken { target } else { pc + 1 };
            }
            MicroOp::Jal { rd, target } => {
                obs.retire(pc);
                // An always-taken same-register branch folded to a jump
                // still trains the predictor (`rd` is 0 for those folds,
                // so no link write happens).
                if kinds[pci] == InstKind::CondBranch {
                    obs.branch(pc, true);
                }
                if rd != 0 {
                    emu.int_regs[(rd & 31) as usize] = (pc + 1) as u64;
                }
                pc = target;
            }
            MicroOp::Jalr { rd, rs1 } => {
                let target = emu.int_regs[(rs1 & 31) as usize] as u32;
                obs.retire(pc);
                obs.jalr(pc, target);
                if rd != 0 {
                    emu.int_regs[(rd & 31) as usize] = (pc + 1) as u64;
                }
                pc = target;
            }
            MicroOp::Halt => {
                obs.retire(pc);
                // pc stays on the halt instruction, matching `step()`.
                emu.halted = true;
                retired += 1;
                break;
            }
        }
        retired += 1;
        if retired >= target {
            break;
        }
    }
    emu.pc = pc;
    emu.retired = retired;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn program(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    /// Steps `reference` and silently runs `fast` to the same retired
    /// count, asserting bit-identical state at every block-size boundary.
    fn assert_equivalent(p: &Program, targets: &[u64]) {
        let code = BlockCode::compile(p);
        for &t in targets {
            let mut fast = Emulator::new(p);
            let mut slow = Emulator::new(p);
            let fast_res = fast.run_silent(&code, t);
            let slow_res: Result<(), EmuError> = (|| {
                while !slow.halted() && slow.retired() < t {
                    slow.step()?;
                }
                Ok(())
            })();
            assert_eq!(
                fast_res.err(),
                slow_res.err(),
                "error mismatch at target {t}"
            );
            assert_eq!(fast.pc(), slow.pc(), "pc mismatch at target {t}");
            assert_eq!(fast.retired(), slow.retired(), "retired mismatch at {t}");
            assert_eq!(fast.halted(), slow.halted(), "halted mismatch at {t}");
            assert_eq!(
                fast.state_checksum(),
                slow.state_checksum(),
                "state mismatch at target {t}"
            );
        }
    }

    #[test]
    fn straight_line_and_loops_match_step() {
        let p = program(
            "        li   x1, 100
                     li   x2, 0
             loop:   add  x2, x2, x1
                     addi x1, x1, -1
                     bne  x1, x0, loop
                     halt",
        );
        assert_equivalent(&p, &[0, 1, 2, 3, 4, 5, 7, 100, 299, 300, 301, 302, 10_000]);
    }

    #[test]
    fn memory_and_fp_match_step() {
        let p = program(
            "        li   x1, 0x1000
                     li   x2, 9
                     sw   x2, 0(x1)
                     lw   x3, 0(x1)
                     i2f  f1, x3
                     fsqrt f2, f1
                     fsd  f2, 8(x1)
                     fld  f3, 8(x1)
                     f2i  x4, f3
                     fsw  f2, 16(x1)
                     flw  f4, 16(x1)
                     halt",
        );
        assert_equivalent(&p, &[0, 1, 3, 5, 6, 9, 11, 12, 13, 100]);
    }

    #[test]
    fn misaligned_fault_is_identical() {
        let p = program("li x1, 0x1001\nlw x2, 0(x1)\nhalt");
        assert_equivalent(&p, &[1, 2, 3, 10]);
    }

    #[test]
    fn call_and_indirect_jump_match_step() {
        let p = program(
            "        li   x10, 5
                     jal  x31, double
                     add  x11, x10, x0
                     halt
             double: add  x10, x10, x10
                     jr   x31",
        );
        assert_equivalent(&p, &[0, 1, 2, 3, 4, 5, 6, 7, 100]);
    }

    #[test]
    fn x0_folds_preserve_semantics() {
        let p = program(
            "        addi x0, x0, 5
                     add  x1, x0, x0
                     lui  x0, 7
                     beq  x0, x0, over
                     halt
             over:   bne  x3, x3, over
                     addi x2, x0, 42
                     halt",
        );
        assert_equivalent(&p, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 100]);
    }

    #[test]
    fn pc_escape_errors_identically() {
        // A program whose last instruction falls through past the text.
        let p = program("addi x1, x0, 1\naddi x2, x0, 2");
        assert_equivalent(&p, &[1, 2, 3, 10]);
    }

    #[test]
    fn silent_stats_count_blocks_and_fallbacks() {
        let p = program(
            "        li   x1, 10
                     li   x2, 0
             loop:   add  x2, x2, x1
                     addi x1, x1, -1
                     bne  x1, x0, loop
                     halt",
        );
        let code = BlockCode::compile(&p);
        let mut emu = Emulator::new(&p);
        // Stop mid-block: the first straight run is 4 ops (li/li/add/addi
        // — the lowered bne terminates it), so a target of 3 must go
        // through the step fallback.
        let stats = emu.run_silent(&code, 3).unwrap();
        assert_eq!(emu.retired(), 3);
        assert_eq!(stats.blocks, 0);
        assert_eq!(stats.fallback_steps, 3);
        // Resuming to a block boundary executes whole blocks only.
        let stats = emu.run_silent(&code, 5).unwrap();
        assert_eq!(emu.retired(), 5);
        assert!(stats.blocks >= 1);
    }

    #[test]
    fn run_silent_is_stable_after_halt() {
        let p = program("halt");
        let code = BlockCode::compile(&p);
        let mut emu = Emulator::new(&p);
        emu.run_silent(&code, 10).unwrap();
        assert!(emu.halted());
        assert_eq!(emu.retired(), 1);
        let stats = emu.run_silent(&code, 10).unwrap();
        assert_eq!(
            stats,
            SilentStats::default(),
            "halted emulator does nothing"
        );
        assert_eq!(emu.retired(), 1);
    }
}
