//! Common value types shared by every crate in the DMDC reproduction.
//!
//! The simulator manipulates three fundamental quantities — *memory
//! addresses*, *instruction ages* and *cycle counts* — and confusing any two
//! of them is a classic simulator bug. Each gets a dedicated newtype here
//! ([`Addr`], [`Age`], [`Cycle`]) so the compiler keeps them apart.
//!
//! The crate also provides [`MemSpan`] (an address range touched by a memory
//! access), [`AccessSize`] (the four access widths the ISA supports) and
//! [`SplitMix64`], a tiny deterministic RNG used where reproducibility
//! matters more than statistical quality.
//!
//! # Examples
//!
//! ```
//! use dmdc_types::{Addr, AccessSize, MemSpan};
//!
//! let store = MemSpan::new(Addr(0x1000), AccessSize::B4);
//! let load = MemSpan::new(Addr(0x1002), AccessSize::B2);
//! assert!(store.overlaps(load));
//! assert_eq!(store.addr.quad_word(), load.addr.quad_word());
//! ```

mod addr;
mod age;
mod rng;
mod span;

pub use addr::Addr;
pub use age::{Age, Cycle};
pub use rng::SplitMix64;
pub use span::{AccessSize, MemSpan};
