use core::fmt;

use crate::Addr;

/// The width of a memory access, in bytes.
///
/// The ISA supports byte, half-word, word and double-word accesses; the
/// DMDC checking table discriminates sub-quad-word widths with a 4-bit
/// bitmap (paper §4.4), which [`MemSpan::quad_word_bitmap`] computes.
///
/// # Examples
///
/// ```
/// use dmdc_types::AccessSize;
///
/// assert_eq!(AccessSize::B4.bytes(), 4);
/// assert_eq!(AccessSize::from_bytes(8), Some(AccessSize::B8));
/// assert_eq!(AccessSize::from_bytes(3), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessSize {
    /// 1 byte.
    B1,
    /// 2 bytes (half word).
    B2,
    /// 4 bytes (word).
    B4,
    /// 8 bytes (double / quad word in the paper's terminology).
    B8,
}

impl AccessSize {
    /// All sizes, smallest first.
    pub const ALL: [AccessSize; 4] = [
        AccessSize::B1,
        AccessSize::B2,
        AccessSize::B4,
        AccessSize::B8,
    ];

    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B2 => 2,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }

    /// The size with the given byte width, if it is one of 1/2/4/8.
    pub fn from_bytes(bytes: u64) -> Option<AccessSize> {
        match bytes {
            1 => Some(AccessSize::B1),
            2 => Some(AccessSize::B2),
            4 => Some(AccessSize::B4),
            8 => Some(AccessSize::B8),
            _ => None,
        }
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// A contiguous byte range touched by one memory access.
///
/// # Examples
///
/// ```
/// use dmdc_types::{Addr, AccessSize, MemSpan};
///
/// let a = MemSpan::new(Addr(0x100), AccessSize::B8);
/// let b = MemSpan::new(Addr(0x104), AccessSize::B2);
/// assert!(a.overlaps(b));
/// assert!(a.contains(b));
/// assert!(!b.contains(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemSpan {
    /// First byte touched.
    pub addr: Addr,
    /// Access width.
    pub size: AccessSize,
}

impl MemSpan {
    /// Creates a span starting at `addr` covering `size` bytes.
    #[inline]
    pub fn new(addr: Addr, size: AccessSize) -> MemSpan {
        MemSpan { addr, size }
    }

    /// First byte past the end of the span.
    #[inline]
    pub fn end(self) -> Addr {
        self.addr + self.size.bytes()
    }

    /// Returns `true` if any byte is shared between the two spans.
    #[inline]
    pub fn overlaps(self, other: MemSpan) -> bool {
        self.addr < other.end() && other.addr < self.end()
    }

    /// Returns `true` if `other` lies entirely within `self`.
    ///
    /// Store-to-load forwarding requires the store span to contain the load
    /// span; mere overlap is a *partial match* which the store queue rejects.
    #[inline]
    pub fn contains(self, other: MemSpan) -> bool {
        self.addr <= other.addr && other.end() <= self.end()
    }

    /// The paper's 4-bit sub-quad-word bitmap (§4.4): bit `i` covers bytes
    /// `2i..2i+2` of the quad word holding `self.addr`.
    ///
    /// Two accesses that share a quad word conflict only if their bitmaps
    /// intersect. Accesses that straddle a quad-word boundary conservatively
    /// set the bits they touch in the *first* quad word plus a synthetic
    /// "spill" handled by callers checking the next quad word too; the ISA
    /// keeps accesses naturally aligned so straddling never happens in
    /// practice (the assembler enforces alignment).
    #[inline]
    pub fn quad_word_bitmap(self) -> u8 {
        let start = self.addr.quad_word_offset();
        let end = (start + self.size.bytes()).min(8);
        let mut bm = 0u8;
        let mut half = start / 2;
        while half * 2 < end {
            bm |= 1 << half;
            half += 1;
        }
        bm
    }
}

impl fmt::Display for MemSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+{}]", self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(addr: u64, bytes: u64) -> MemSpan {
        MemSpan::new(Addr(addr), AccessSize::from_bytes(bytes).unwrap())
    }

    #[test]
    fn access_size_roundtrip() {
        for s in AccessSize::ALL {
            assert_eq!(AccessSize::from_bytes(s.bytes()), Some(s));
        }
        assert_eq!(AccessSize::from_bytes(0), None);
        assert_eq!(AccessSize::from_bytes(16), None);
    }

    #[test]
    fn overlap_is_symmetric_and_correct() {
        assert!(span(0x100, 4).overlaps(span(0x102, 4)));
        assert!(span(0x102, 4).overlaps(span(0x100, 4)));
        assert!(!span(0x100, 4).overlaps(span(0x104, 4)));
        assert!(!span(0x104, 4).overlaps(span(0x100, 4)));
        assert!(span(0x100, 1).overlaps(span(0x100, 8)));
    }

    #[test]
    fn adjacent_spans_do_not_overlap() {
        assert!(!span(0x100, 2).overlaps(span(0x102, 2)));
    }

    #[test]
    fn containment_requires_full_cover() {
        assert!(span(0x100, 8).contains(span(0x104, 4)));
        assert!(!span(0x104, 4).contains(span(0x100, 8)));
        assert!(span(0x100, 4).contains(span(0x100, 4)));
        // Partial overlap: neither contains the other.
        assert!(!span(0x100, 4).contains(span(0x102, 4)));
    }

    #[test]
    fn bitmap_covers_touched_halfwords() {
        assert_eq!(span(0x100, 8).quad_word_bitmap(), 0b1111);
        assert_eq!(span(0x100, 4).quad_word_bitmap(), 0b0011);
        assert_eq!(span(0x104, 4).quad_word_bitmap(), 0b1100);
        assert_eq!(span(0x100, 2).quad_word_bitmap(), 0b0001);
        assert_eq!(span(0x106, 2).quad_word_bitmap(), 0b1000);
        assert_eq!(span(0x100, 1).quad_word_bitmap(), 0b0001);
        assert_eq!(span(0x107, 1).quad_word_bitmap(), 0b1000);
    }

    #[test]
    fn bitmaps_intersect_iff_same_quad_word_accesses_conflict() {
        // Two accesses in the same quad word.
        let a = span(0x100, 2);
        let b = span(0x102, 2);
        assert!(!a.overlaps(b));
        assert_eq!(a.quad_word_bitmap() & b.quad_word_bitmap(), 0);

        let c = span(0x100, 4);
        assert!(c.overlaps(a));
        assert_ne!(c.quad_word_bitmap() & a.quad_word_bitmap(), 0);
    }

    #[test]
    fn byte_accesses_within_same_halfword_alias_in_bitmap() {
        // The 2-byte granularity of the bitmap makes 0x100 and 0x101 alias:
        // that is the documented conservative approximation.
        let a = span(0x100, 1);
        let b = span(0x101, 1);
        assert!(!a.overlaps(b));
        assert_ne!(a.quad_word_bitmap() & b.quad_word_bitmap(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(span(0x10, 4).to_string(), "[0x10+4B]");
    }
}
