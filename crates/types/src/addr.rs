use core::fmt;
use core::ops::{Add, Sub};

/// A byte address in the simulated machine's memory space.
///
/// Addresses are 64-bit; the workloads only touch a few megabytes but the
/// full width keeps wrap-around arithmetic out of the picture.
///
/// # Examples
///
/// ```
/// use dmdc_types::Addr;
///
/// let a = Addr(0x1234_5678);
/// assert_eq!(a.quad_word(), 0x1234_5678 >> 3);
/// assert_eq!(a.cache_line(128), 0x1234_5678 >> 7);
/// assert_eq!(a + 8, Addr(0x1234_5680));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The quad-word (8-byte block) index of this address.
    ///
    /// The DMDC checking table and the fine-grained YLA register bank are
    /// both indexed by quad-word address (paper §4.4).
    #[inline]
    pub fn quad_word(self) -> u64 {
        self.0 >> 3
    }

    /// The offset of this address within its quad word (0..8).
    #[inline]
    pub fn quad_word_offset(self) -> u64 {
        self.0 & 0x7
    }

    /// The cache-line index of this address for a given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[inline]
    pub fn cache_line(self, line_size: u64) -> u64 {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.0 >> line_size.trailing_zeros()
    }

    /// Aligns the address down to a multiple of `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn align_down(self, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0 & !(align - 1))
    }

    /// Returns `true` if the address is a multiple of `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.align_down(align) == self
    }

    /// Wrapping add used by effective-address computation, where the base
    /// register may legitimately hold a negative two's-complement value.
    #[inline]
    pub fn wrapping_offset(self, offset: i64) -> Addr {
        Addr(self.0.wrapping_add(offset as u64))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_word_groups_eight_bytes() {
        assert_eq!(Addr(0).quad_word(), 0);
        assert_eq!(Addr(7).quad_word(), 0);
        assert_eq!(Addr(8).quad_word(), 1);
        assert_eq!(Addr(15).quad_word(), 1);
    }

    #[test]
    fn quad_word_offset_cycles() {
        for i in 0..32 {
            assert_eq!(Addr(i).quad_word_offset(), i % 8);
        }
    }

    #[test]
    fn cache_line_respects_line_size() {
        assert_eq!(Addr(127).cache_line(128), 0);
        assert_eq!(Addr(128).cache_line(128), 1);
        assert_eq!(Addr(64).cache_line(64), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_line_rejects_non_power_of_two() {
        let _ = Addr(0).cache_line(100);
    }

    #[test]
    fn align_down_masks_low_bits() {
        assert_eq!(Addr(0x1237).align_down(8), Addr(0x1230));
        assert_eq!(Addr(0x1230).align_down(8), Addr(0x1230));
        assert!(Addr(0x1230).is_aligned(16));
        assert!(!Addr(0x1238).is_aligned(16));
    }

    #[test]
    fn wrapping_offset_handles_negative() {
        assert_eq!(Addr(100).wrapping_offset(-4), Addr(96));
        assert_eq!(Addr(0).wrapping_offset(-1), Addr(u64::MAX));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(255)), "ff");
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Addr(0x4000);
        assert_eq!((a + 24) - 24, a);
    }
}
