use core::fmt;

/// The *age* of a dynamic instruction: a monotonically increasing sequence
/// number assigned at rename time.
///
/// Smaller is older. The paper's YLA ("Youngest issued Load Age") registers,
/// the `end_check` register and all program-order comparisons operate on
/// ages. A real design would use the ROB ID "with some simple extension"
/// (paper §3); a 64-bit counter models that extension exactly and never
/// wraps in practice.
///
/// # Examples
///
/// ```
/// use dmdc_types::Age;
///
/// let older = Age(10);
/// let younger = Age(42);
/// assert!(older.is_older_than(younger));
/// assert!(younger.is_younger_than(older));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Age(pub u64);

impl Age {
    /// An age older than every instruction the simulator will ever rename.
    /// Used as the reset value of YLA registers: a freshly reset YLA makes
    /// every store safe because no load has issued.
    pub const OLDEST: Age = Age(0);

    /// Returns `true` if `self` precedes `other` in program order.
    #[inline]
    pub fn is_older_than(self, other: Age) -> bool {
        self.0 < other.0
    }

    /// Returns `true` if `self` follows `other` in program order.
    #[inline]
    pub fn is_younger_than(self, other: Age) -> bool {
        self.0 > other.0
    }

    /// The next age in sequence.
    #[inline]
    pub fn next(self) -> Age {
        Age(self.0 + 1)
    }
}

impl fmt::Display for Age {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simulated clock cycle count.
///
/// # Examples
///
/// ```
/// use dmdc_types::Cycle;
///
/// let start = Cycle(100);
/// assert_eq!(start.plus(15), Cycle(115));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The cycle `n` ticks after `self`.
    #[inline]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }

    /// Advances the clock by one tick.
    #[inline]
    pub fn tick(&mut self) {
        self.0 += 1;
    }

    /// Cycles elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        debug_assert!(earlier <= self, "clock ran backwards");
        self.0 - earlier.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_ordering_matches_program_order() {
        assert!(Age(1).is_older_than(Age(2)));
        assert!(!Age(2).is_older_than(Age(2)));
        assert!(Age(3).is_younger_than(Age(2)));
        assert!(!Age(2).is_younger_than(Age(2)));
    }

    #[test]
    fn age_next_increments() {
        assert_eq!(Age(7).next(), Age(8));
        assert!(Age(7).is_older_than(Age(7).next()));
    }

    #[test]
    fn oldest_is_older_than_any_renamed_age() {
        // Rename starts handing out ages at 1, so OLDEST never collides.
        assert!(Age::OLDEST.is_older_than(Age(1)));
    }

    #[test]
    fn cycle_arithmetic() {
        let mut c = Cycle(10);
        c.tick();
        assert_eq!(c, Cycle(11));
        assert_eq!(c.plus(4), Cycle(15));
        assert_eq!(c.plus(4).since(c), 4);
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(Age(5).to_string(), "#5");
        assert_eq!(Cycle(5).to_string(), "cycle 5");
    }
}
