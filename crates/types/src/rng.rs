use core::fmt;

/// A tiny deterministic pseudo-random number generator (SplitMix64).
///
/// Simulator components (invalidation injection, synthetic workloads) need
/// reproducible randomness that does not depend on an external crate, so the
/// same seed always replays the same experiment bit-for-bit.
///
/// # Examples
///
/// ```
/// use dmdc_types::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including 0, is valid.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative range reduction; bias is negligible for the bounds
        // the simulator uses (all far below 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl fmt::Display for SplitMix64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SplitMix64(state={:#x})", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SplitMix64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
