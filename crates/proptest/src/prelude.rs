//! The glob-import surface mirroring `proptest::prelude`.

pub use crate as prop;
pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, BoxedStrategy,
    Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng, Union,
};
