//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s with element strategy `S` and a length drawn from a
/// range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` strategy: each value has a length in `len` and elements drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
