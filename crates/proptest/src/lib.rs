//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements exactly the API subset the
//! workspace's property tests use — [`Strategy`], [`Just`], [`any`],
//! integer/float range strategies, tuples, [`prop_oneof!`],
//! `prop::collection::vec`, and the [`proptest!`] test macro with
//! `prop_assert*` / `prop_assume!` — backed by a deterministic SplitMix64
//! generator. It generates random cases but does **not** shrink failures;
//! every failure report includes the case seed so a failing input can be
//! reproduced by rerunning the test.

use std::marker::PhantomData;
use std::ops::Range;

pub mod collection;
pub mod prelude;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A deterministic per-test seed derived from the test's name (FNV-1a),
/// so every test explores a stable, distinct case sequence.
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h | 1
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a function from RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among equally weighted boxed alternatives
/// (the expansion of [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Uniform choice among equally likely strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and runs the body until the
/// configured number of cases passes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($p:pat_param in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut successes = 0u32;
                let mut attempts = 0u32;
                let mut seed = $crate::test_seed(stringify!($name));
                while successes < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(100).saturating_add(1000),
                        "proptest: too many rejected cases ({} rejects for {} passes)",
                        attempts - successes,
                        successes
                    );
                    let case_seed = seed;
                    let mut rng = $crate::TestRng::new(case_seed);
                    seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C17);
                    $(let $p = $crate::Strategy::generate(&$s, &mut rng);)*
                    let result: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        ::std::result::Result::Ok(()) => successes += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed (seed {:#x}): {}", case_seed, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i16..6).generate(&mut rng);
            assert!((-5..6).contains(&s));
            let f = (0.0f64..2.0).generate(&mut rng);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = crate::TestRng::new(99);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = prop::collection::vec(0u8..10, 2..5);
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u64..100, flip in any::<bool>(), mut v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assume!(x != 13);
            v.push(4);
            prop_assert!(x < 100);
            prop_assert_eq!(v.last().copied(), Some(4), "x was {}, flip {}", x, flip);
        }
    }
}
