fn main() {
    let scale = dmdc_workloads::Scale::Full;
    for w in dmdc_workloads::full_suite(scale) {
        let code = dmdc_isa::BlockCode::compile(&w.program);
        let mut emu = dmdc_isa::Emulator::new(&w.program);
        let t = std::time::Instant::now();
        emu.run_silent(&code, u64::MAX).unwrap();
        let dt = t.elapsed();
        println!(
            "{:>12} retired {:>10} {:>8.2?} {:>6.2} ns/inst",
            w.name,
            emu.retired(),
            dt,
            dt.as_nanos() as f64 / emu.retired() as f64
        );
    }
}
