//! Regenerates Table 3 (false-replay breakdown per million commits,
//! global DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{table3, PolicyKind};

fn main() {
    println!("{}", table3(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-replays", PolicyKind::DmdcGlobal);
    finish(c);
}
