//! Regenerates Table 3 (false-replay breakdown per million commits,
//! global DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("table3");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-replays", PolicyKind::DmdcGlobal);
    finish(c);
}
