//! §3 side note: the fraction of loads older than every in-flight store —
//! the potential of an oldest-store-age register to filter SQ searches
//! (the paper measures about 20%).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("ablation-sq-filter");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/baseline-sqfilter", PolicyKind::Baseline);
    finish(c);
}
