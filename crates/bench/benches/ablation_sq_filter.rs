//! §3 side note: the fraction of loads older than every in-flight store —
//! the potential of an oldest-store-age register to filter SQ searches
//! (the paper measures about 20%).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{sq_filter_potential_on, PolicyKind};
use dmdc_ooo::CoreConfig;
use dmdc_workloads::full_suite;

fn main() {
    let suite = full_suite(scale_from_env());
    println!(
        "{}",
        sq_filter_potential_on(&suite, &CoreConfig::config2()).render()
    );

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/baseline-sqfilter", PolicyKind::Baseline);
    finish(c);
}
