//! Regenerates Table 6 (impact of injected external invalidations on the
//! coherence-enabled DMDC design).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("table6");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-coherent", PolicyKind::DmdcCoherent);
    finish(c);
}
