//! Regenerates Table 6 (impact of injected external invalidations on the
//! coherence-enabled DMDC design).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{table6, PolicyKind};

fn main() {
    println!("{}", table6(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-coherent", PolicyKind::DmdcCoherent);
    finish(c);
}
