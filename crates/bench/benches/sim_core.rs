//! Raw simulator-core throughput: single-cell `Simulator::run` on an
//! integer workload, an FP workload, and the synthetic kernel, with no
//! experiment plumbing around it. This is the bench that tracks the
//! event-horizon loop, indexed wakeup, and the zero-allocation stage
//! rewrites directly; the per-figure benches measure the same core but
//! through the table regenerators.

use criterion::Criterion;
use dmdc_bench::{criterion, finish, scale_from_env};
use dmdc_core::experiments::PolicyKind;
use dmdc_ooo::{CoreConfig, SimOptions, Simulator};
use dmdc_workloads::{fp_suite, int_suite, SyntheticKernel, Workload};

fn bench_cell(c: &mut Criterion, name: &str, workload: &Workload, opts: SimOptions) {
    let config = CoreConfig::config2();
    let kind = PolicyKind::DmdcGlobal;
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&workload.program, config.clone(), kind.build(&config));
            let result = sim.run(opts).expect("bench workload completes");
            std::hint::black_box(result.stats.cycles)
        })
    });
}

fn main() {
    let scale = scale_from_env();
    let int = &int_suite(scale)[6]; // histo: replays, misses, windows
    let fp = &fp_suite(scale)[0]; // mm: dense FP compute
    let synth = SyntheticKernel::new(20_000 * scale.factor())
        .branch_noise(true)
        .build();

    let mut c = criterion();
    bench_cell(&mut c, "sim_core/int-histo", int, SimOptions::default());
    bench_cell(&mut c, "sim_core/fp-mm", fp, SimOptions::default());
    bench_cell(&mut c, "sim_core/synthetic", &synth, SimOptions::default());
    bench_cell(
        &mut c,
        "sim_core/synthetic-per-cycle",
        &synth,
        SimOptions {
            event_skipping: false,
            ..SimOptions::default()
        },
    );
    finish(c);
}
