//! End-to-end benchmark of the parallel experiment engine.
//!
//! Runs the same cell matrix (a small suite × three policies) through the
//! engine at `jobs = 1` and at the machine's available parallelism, so the
//! scaling of the worker pool — and the effect of the shared emulator
//! oracle — is measurable from `cargo bench`. On a single-core host the
//! two configurations should be within noise of each other; the oracle
//! savings show up in both.

use criterion::Criterion;
use dmdc_bench::{criterion, finish};
use dmdc_core::experiments::PolicyKind;
use dmdc_core::runner::{Engine, RunSpec};
use dmdc_ooo::CoreConfig;
use dmdc_workloads::{fp_suite, int_suite, Scale, Workload};

fn mini_suite() -> Vec<Workload> {
    vec![
        int_suite(Scale::Smoke).remove(6),
        fp_suite(Scale::Smoke).remove(1),
    ]
}

fn specs(workloads: &[Workload], config: &CoreConfig) -> Vec<RunSpec> {
    (0..workloads.len())
        .flat_map(|i| {
            [
                RunSpec::new(i, config, PolicyKind::Baseline),
                RunSpec::new(i, config, PolicyKind::DmdcGlobal),
                RunSpec::new(i, config, PolicyKind::DmdcLocal),
            ]
        })
        .collect()
}

fn bench_engine(c: &mut Criterion, name: &str, jobs: usize) {
    let workloads = mini_suite();
    let config = CoreConfig::config2();
    let cells = specs(&workloads, &config);
    c.bench_function(name, |b| {
        b.iter(|| {
            let engine = Engine::with_jobs(&workloads, jobs);
            let runs = engine.run_all(&cells);
            std::hint::black_box(runs.len())
        })
    });
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("runner engine bench: 6-cell matrix, host parallelism {parallelism}");

    let mut c = criterion();
    bench_engine(&mut c, "runner/jobs1", 1);
    if parallelism > 1 {
        bench_engine(&mut c, &format!("runner/jobs{parallelism}"), parallelism);
    }

    // The oracle cache in isolation: fresh engine (cold, one emulation per
    // workload) each iteration vs a warm engine shared across iterations.
    let workloads = mini_suite();
    let config = CoreConfig::config2();
    let cells = specs(&workloads, &config);
    let warm = Engine::with_jobs(&workloads, 1);
    warm.run_all(&cells);
    c.bench_function("runner/oracle-warm", |b| {
        b.iter(|| std::hint::black_box(warm.run_all(&cells).len()))
    });
    finish(c);
}
