//! Ablation (§6.2.2): false replays with and without the safe-load
//! optimization — the paper reports replays roughly double without it.

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("ablation-safe-loads");

    let mut c = criterion();
    bench_policy_throughput(
        &mut c,
        "sim/dmdc-no-safe-loads",
        PolicyKind::DmdcNoSafeLoads,
    );
    finish(c);
}
