//! Ablation (§6.2.2): false replays with and without the safe-load
//! optimization — the paper reports replays roughly double without it.

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{safe_load_ablation_on, PolicyKind};
use dmdc_ooo::CoreConfig;
use dmdc_workloads::full_suite;

fn main() {
    let suite = full_suite(scale_from_env());
    println!(
        "{}",
        safe_load_ablation_on(&suite, &CoreConfig::config2()).render()
    );

    let mut c = criterion();
    bench_policy_throughput(
        &mut c,
        "sim/dmdc-no-safe-loads",
        PolicyKind::DmdcNoSafeLoads,
    );
    finish(c);
}
