//! Regenerates Figure 2 (% LQ searches filtered vs number and interleaving
//! of YLA registers) plus the §6.1 YLA-8 energy note.

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("fig2");
    regen("yla-energy");

    let mut c = criterion();
    bench_policy_throughput(
        &mut c,
        "sim/yla8",
        PolicyKind::Yla {
            regs: 8,
            line_interleaved: false,
        },
    );
    finish(c);
}
