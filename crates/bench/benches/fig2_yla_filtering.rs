//! Regenerates Figure 2 (% LQ searches filtered vs number and interleaving
//! of YLA registers) plus the §6.1 YLA-8 energy note.

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{fig2, yla_energy, PolicyKind};

fn main() {
    let scale = scale_from_env();
    println!("{}", fig2(scale).render());
    println!("{}", yla_energy(scale).render());

    let mut c = criterion();
    bench_policy_throughput(
        &mut c,
        "sim/yla8",
        PolicyKind::Yla {
            regs: 8,
            line_interleaved: false,
        },
    );
    finish(c);
}
