//! Regenerates Table 5 (false-replay breakdown per million commits,
//! local DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{table5, PolicyKind};

fn main() {
    println!("{}", table5(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-local-replays", PolicyKind::DmdcLocal);
    finish(c);
}
