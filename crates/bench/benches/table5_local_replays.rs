//! Regenerates Table 5 (false-replay breakdown per million commits,
//! local DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("table5");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-local-replays", PolicyKind::DmdcLocal);
    finish(c);
}
