//! PR6 sampling engine: exact vs sampled wall-clock on the two hottest
//! registry experiments — fig2 (the YLA sweep, the widest matrix) and
//! table6 (invalidation-rate slowdowns, paired baseline runs). Each
//! estimate regenerates the experiment cold (no cell cache is installed
//! in a bench process), so the ratio is the honest end-to-end speedup
//! sampling buys. Headline numbers are recorded in `BENCH_pr6.json`.
//!
//! `DMDC_SCALE=smoke cargo bench --bench sampling` for a quick pass; the
//! default scale matches the other bench targets.

use dmdc_bench::{criterion, finish, scale_from_env};
use dmdc_core::experiments::{find_experiment, run_experiment};
use dmdc_core::runner::set_default_sampling;
use dmdc_ooo::SampleSpec;

fn main() {
    let scale = scale_from_env();
    // Whole-experiment iterations: three samples keep the exact side of
    // the default scale under a minute while still exposing variance.
    let mut c = criterion().sample_size(3);
    for id in ["fig2", "table6"] {
        let exp = find_experiment(id).expect("registry id");
        set_default_sampling(SampleSpec::EXACT);
        c.bench_function(&format!("sampling/{id}-exact"), |b| {
            b.iter(|| std::hint::black_box(run_experiment(exp, scale)))
        });
        set_default_sampling(SampleSpec::standard());
        c.bench_function(&format!("sampling/{id}-sampled"), |b| {
            b.iter(|| std::hint::black_box(run_experiment(exp, scale)))
        });
    }
    set_default_sampling(SampleSpec::EXACT);
    finish(c);
}
