//! PR6 sampling engine: exact vs sampled wall-clock on the two hottest
//! registry experiments — fig2 (the YLA sweep, the widest matrix) and
//! table6 (invalidation-rate slowdowns, paired baseline runs). Each
//! estimate regenerates the experiment cold (no cell cache is installed
//! in a bench process), so the ratio is the honest end-to-end speedup
//! sampling buys. Headline numbers are recorded in `BENCH_pr6.json`.
//!
//! PR7 adds the fast-forward-only pair: one workload's full dynamic
//! instruction stream emulated by `Emulator::step` versus the
//! block-compiled `Emulator::run_silent`, isolating the silent-run
//! engine the sampled driver now fast-forwards through (recorded in
//! `BENCH_pr7.json`).
//!
//! `DMDC_SCALE=smoke cargo bench --bench sampling` for a quick pass; the
//! default scale matches the other bench targets.

use criterion::Criterion;
use dmdc_bench::{criterion, finish, scale_from_env};
use dmdc_core::experiments::{find_experiment, run_experiment};
use dmdc_core::runner::set_default_sampling;
use dmdc_isa::{BlockCode, Emulator};
use dmdc_ooo::SampleSpec;
use dmdc_workloads::{full_suite, Workload};

/// The fast-forward engines head to head, outside the sampling driver:
/// the same program run to halt through `step()` and through the block
/// interpreter. Their ratio is the pure fast-forward speedup.
fn bench_fast_forward(c: &mut Criterion, w: &Workload) {
    c.bench_function(&format!("fast-forward/{}-step", w.name), |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&w.program);
            while !emu.halted() {
                emu.step().expect("workload halts cleanly");
            }
            std::hint::black_box(emu.retired())
        })
    });
    c.bench_function(&format!("fast-forward/{}-blocks", w.name), |b| {
        b.iter(|| {
            let code = BlockCode::compile(&w.program);
            let mut emu = Emulator::new(&w.program);
            emu.run_silent(&code, u64::MAX)
                .expect("workload halts cleanly");
            std::hint::black_box(emu.retired())
        })
    });
}

fn main() {
    let scale = scale_from_env();
    // Whole-experiment iterations: three samples keep the exact side of
    // the default scale under a minute while still exposing variance.
    let mut c = criterion().sample_size(3);
    for id in ["fig2", "table6"] {
        let exp = find_experiment(id).expect("registry id");
        set_default_sampling(SampleSpec::EXACT);
        c.bench_function(&format!("sampling/{id}-exact"), |b| {
            b.iter(|| std::hint::black_box(run_experiment(exp, scale)))
        });
        set_default_sampling(SampleSpec::standard());
        c.bench_function(&format!("sampling/{id}-sampled"), |b| {
            b.iter(|| std::hint::black_box(run_experiment(exp, scale)))
        });
    }
    set_default_sampling(SampleSpec::EXACT);
    let histo = full_suite(scale)
        .into_iter()
        .find(|w| w.name == "histo")
        .expect("histo is in the suite");
    bench_fast_forward(&mut c, &histo);
    finish(c);
}
