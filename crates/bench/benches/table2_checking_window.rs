//! Regenerates Table 2 (checking-window statistics under global DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{table2, PolicyKind};

fn main() {
    println!("{}", table2(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-global-window", PolicyKind::DmdcGlobal);
    finish(c);
}
