//! Regenerates Table 2 (checking-window statistics under global DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("table2");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-global-window", PolicyKind::DmdcGlobal);
    finish(c);
}
