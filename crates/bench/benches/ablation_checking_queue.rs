//! Ablation (§4.4/§6.2.3): the hashed checking table vs associative
//! checking queues of several depths — the paper estimates the 2K-entry
//! table is roughly equivalent to a 16-entry queue in replay rate.

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("ablation-queue");

    let mut c = criterion();
    bench_policy_throughput(
        &mut c,
        "sim/checking-queue16",
        PolicyKind::CheckingQueue { entries: 16 },
    );
    finish(c);
}
