//! Ablation (§4.4/§6.2.3): the hashed checking table vs associative
//! checking queues of several depths — the paper estimates the 2K-entry
//! table is roughly equivalent to a 16-entry queue in replay rate.

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{checking_queue_ablation_on, PolicyKind};
use dmdc_ooo::CoreConfig;
use dmdc_workloads::full_suite;

fn main() {
    let suite = full_suite(scale_from_env());
    let ablation = checking_queue_ablation_on(&suite, &CoreConfig::config2(), &[4, 8, 16, 32]);
    println!("{}", ablation.render());

    let mut c = criterion();
    bench_policy_throughput(
        &mut c,
        "sim/checking-queue16",
        PolicyKind::CheckingQueue { entries: 16 },
    );
    finish(c);
}
