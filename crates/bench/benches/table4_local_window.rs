//! Regenerates Table 4 (checking-window statistics under local DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{table4, PolicyKind};

fn main() {
    println!("{}", table4(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-local-window", PolicyKind::DmdcLocal);
    finish(c);
}
