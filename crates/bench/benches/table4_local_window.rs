//! Regenerates Table 4 (checking-window statistics under local DMDC).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("table4");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-local-window", PolicyKind::DmdcLocal);
    finish(c);
}
