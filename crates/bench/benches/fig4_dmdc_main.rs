//! Regenerates Figure 4 (DMDC LQ energy savings, slowdown and total energy
//! savings across the three machine configurations).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{fig4, PolicyKind};

fn main() {
    println!("{}", fig4(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-global", PolicyKind::DmdcGlobal);
    bench_policy_throughput(&mut c, "sim/baseline", PolicyKind::Baseline);
    finish(c);
}
