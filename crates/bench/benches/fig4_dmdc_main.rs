//! Regenerates Figure 4 (DMDC LQ energy savings, slowdown and total energy
//! savings across the three machine configurations).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("fig4");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-global", PolicyKind::DmdcGlobal);
    bench_policy_throughput(&mut c, "sim/baseline", PolicyKind::Baseline);
    finish(c);
}
