//! Regenerates Figure 5 (slowdown of local vs global DMDC, three configs).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{fig5, PolicyKind};

fn main() {
    println!("{}", fig5(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-local", PolicyKind::DmdcLocal);
    finish(c);
}
