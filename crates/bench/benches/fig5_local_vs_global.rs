//! Regenerates Figure 5 (slowdown of local vs global DMDC, three configs).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("fig5");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-local", PolicyKind::DmdcLocal);
    finish(c);
}
