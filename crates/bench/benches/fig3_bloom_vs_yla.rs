//! Regenerates Figure 3 (YLA filtering vs bloom filters with the H0 hash).

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("fig3");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/bloom256", PolicyKind::Bloom { entries: 256 });
    finish(c);
}
