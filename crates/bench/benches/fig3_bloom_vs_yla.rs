//! Regenerates Figure 3 (YLA filtering vs bloom filters with the H0 hash).

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{fig3, PolicyKind};

fn main() {
    println!("{}", fig3(scale_from_env()).render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/bloom256", PolicyKind::Bloom { entries: 256 });
    finish(c);
}
