//! Ablation (§6.2.2): checking-table size vs false replays — the paper
//! concludes that growing the table past 2K entries has diminishing
//! returns because imperfect hashing is not the dominant replay cause.

use dmdc_bench::{bench_policy_throughput, criterion, finish, scale_from_env};
use dmdc_core::experiments::{table_size_ablation_on, PolicyKind};
use dmdc_ooo::CoreConfig;
use dmdc_workloads::full_suite;

fn main() {
    let suite = full_suite(scale_from_env());
    let ablation = table_size_ablation_on(
        &suite,
        &CoreConfig::config2(),
        &[256, 512, 1024, 2048, 4096],
    );
    println!("{}", ablation.render());

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-table-sweep", PolicyKind::DmdcGlobal);
    finish(c);
}
