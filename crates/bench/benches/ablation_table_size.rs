//! Ablation (§6.2.2): checking-table size vs false replays — the paper
//! concludes that growing the table past 2K entries has diminishing
//! returns because imperfect hashing is not the dominant replay cause.

use dmdc_bench::{bench_policy_throughput, criterion, finish, regen};
use dmdc_core::experiments::PolicyKind;

fn main() {
    regen("ablation-table-size");

    let mut c = criterion();
    bench_policy_throughput(&mut c, "sim/dmdc-table-sweep", PolicyKind::DmdcGlobal);
    finish(c);
}
