//! Shared plumbing for the table/figure regeneration benches.
//!
//! Every bench target in `benches/` does two things:
//!
//! 1. regenerates its paper table/figure — [`regen`] drives the
//!    experiment registry by id — at the scale selected by the
//!    `DMDC_SCALE` environment variable (`smoke`, `default`, `large`) and
//!    prints it, so `cargo bench` output can be compared against the paper;
//! 2. runs a small Criterion measurement of simulator throughput for the
//!    policy under test, so performance regressions in the simulator
//!    itself are visible.

use criterion::Criterion;
use dmdc_core::experiments::{find_experiment, run_experiment, run_workload, PolicyKind};
use dmdc_ooo::{CoreConfig, SimOptions};
use dmdc_workloads::{Scale, SyntheticKernel};

/// Reads `DMDC_SCALE` (`smoke` | `default` | `large`), defaulting to
/// [`Scale::Default`].
pub fn scale_from_env() -> Scale {
    match std::env::var("DMDC_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "smoke" => Scale::Smoke,
        "large" => Scale::Large,
        _ => Scale::Default,
    }
}

/// Regenerates one registry experiment at the `DMDC_SCALE` scale and
/// prints its text report to stdout — the regeneration half every bench
/// main shares with `dmdc experiment <id>`.
///
/// # Panics
///
/// Panics on an unknown experiment id (a bench wired to a missing
/// registry entry is a build defect, not a runtime condition).
pub fn regen(id: &str) {
    let exp = find_experiment(id).unwrap_or_else(|| panic!("unknown experiment `{id}`"));
    print!("{}", run_experiment(exp, scale_from_env()).text());
}

/// Registers a Criterion benchmark simulating a small synthetic kernel
/// under `kind` on config 2.
pub fn bench_policy_throughput(c: &mut Criterion, name: &str, kind: PolicyKind) {
    let workload = SyntheticKernel::new(2_000).branch_noise(true).build();
    let config = CoreConfig::config2();
    c.bench_function(name, |b| {
        b.iter(|| {
            let run = run_workload(&workload, &config, &kind, SimOptions::default());
            std::hint::black_box(run.stats.cycles)
        })
    });
}

/// Standard tail for a bench main: runs the Criterion measurement with a
/// small sample count (each iteration is a whole simulation).
pub fn finish(c: Criterion) {
    c.final_summary();
}

/// A Criterion instance tuned for whole-simulation iterations.
pub fn criterion() -> Criterion {
    Criterion::default().sample_size(10).configure_from_args()
}
