//! Property-based tests for the substrate's data structures: queue
//! ordering invariants, cache bookkeeping, predictor history repair, and
//! the equivalence of store-to-load forwarding with a memory round trip.

use dmdc_ooo::{extract_forwarded, BranchPredictor, Cache, CacheConfig, LoadQueue, StoreQueue};
use dmdc_types::{AccessSize, Addr, Age, MemSpan};
use proptest::prelude::*;

fn size_strategy() -> impl Strategy<Value = AccessSize> {
    prop_oneof![
        Just(AccessSize::B1),
        Just(AccessSize::B2),
        Just(AccessSize::B4),
        Just(AccessSize::B8)
    ]
}

proptest! {
    /// Forwarding equivalence: extracting a contained load's bytes from a
    /// store's raw value must equal writing the store to memory and reading
    /// the load span back.
    #[test]
    fn forwarding_matches_memory_roundtrip(
        store_qw in 0u64..1_000,
        store_size in size_strategy(),
        value in any::<u64>(),
        load_size in size_strategy(),
        load_off in 0u64..8,
    ) {
        let store_addr = Addr(0x1000 + store_qw * 8);
        let store = MemSpan::new(store_addr, store_size);
        // Build a naturally aligned load span contained in the store span.
        let bytes = load_size.bytes();
        prop_assume!(bytes <= store_size.bytes());
        let off = (load_off * bytes) % store_size.bytes();
        let load = MemSpan::new(store_addr + off, load_size);
        prop_assume!(store.contains(load));

        let raw = value & dmdc_ooo::size_mask(store_size);
        let mut mem = dmdc_isa::SparseMemory::new();
        mem.write(store.addr, store.size, raw);
        let via_memory = mem.read(load.addr, load.size);
        let via_forward = extract_forwarded(raw, load.addr.0 - store.addr.0, load.size);
        prop_assert_eq!(via_memory, via_forward);
    }

    /// Load-queue order invariants under arbitrary allocate/pop/squash
    /// interleavings.
    #[test]
    fn load_queue_stays_age_sorted(ops in prop::collection::vec(0u8..3, 1..100)) {
        let mut lq = LoadQueue::new(16);
        let mut next_age = 1u64;
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                0 if !lq.is_full() => {
                    lq.allocate(Age(next_age));
                    model.push(next_age);
                    next_age += 1;
                }
                1 if !model.is_empty() => {
                    let head = model.remove(0);
                    let e = lq.pop_head(Age(head));
                    prop_assert_eq!(e.age, Age(head));
                }
                2 if !model.is_empty() => {
                    // Squash the youngest half.
                    let cut = model[model.len() / 2];
                    lq.squash(Age(cut));
                    model.retain(|&a| a < cut);
                }
                _ => {}
            }
            let ages: Vec<u64> = lq.iter().map(|e| e.age.0).collect();
            prop_assert_eq!(&ages, &model, "queue must mirror the model");
            let mut sorted = ages.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ages, sorted, "ages must be sorted");
        }
    }

    /// Store-queue forwarding candidate: always the *youngest* resolved
    /// older overlapping store.
    #[test]
    fn store_queue_candidate_is_youngest_older(
        resolved in prop::collection::vec((1u64..50, 0u64..4u64), 1..10),
        load_age in 25u64..100,
        load_qw in 0u64..4,
    ) {
        let mut sq = StoreQueue::new(64);
        let mut ages: Vec<u64> = resolved.iter().map(|&(a, _)| a).collect();
        ages.sort_unstable();
        ages.dedup();
        let mut spans = std::collections::HashMap::new();
        for &age in &ages {
            sq.allocate(Age(age));
            let qw = resolved.iter().find(|&&(a, _)| a == age).unwrap().1;
            let span = MemSpan::new(Addr(0x100 + qw * 8), AccessSize::B8);
            sq.entry_mut(Age(age)).unwrap().span = Some(span);
            spans.insert(age, span);
        }
        let load = MemSpan::new(Addr(0x100 + load_qw * 8), AccessSize::B8);
        let expect = ages
            .iter()
            .filter(|&&a| a < load_age && spans[&a].overlaps(load))
            .max();
        let got = sq.youngest_older_overlap(Age(load_age), load).map(|e| e.age.0);
        prop_assert_eq!(got, expect.copied());
    }

    /// Cache: a just-accessed line always hits on re-access; hit+miss
    /// counters account for every access.
    #[test]
    fn cache_accounting_holds(addrs in prop::collection::vec(0u64..0x20000, 1..200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 });
        for (i, &a) in addrs.iter().enumerate() {
            c.access(Addr(a));
            prop_assert!(c.probe(Addr(a)), "just-filled line must be resident");
            prop_assert_eq!(c.stats.hits + c.stats.misses, i as u64 + 1);
        }
    }

    /// Branch-predictor history: restore(snapshot) exactly undoes any
    /// sequence of speculative updates.
    #[test]
    fn history_restore_is_exact(outcomes in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut bp = BranchPredictor::new(64, 64, 12, 64);
        // Establish a non-trivial starting history.
        bp.speculate(1, true);
        bp.speculate(2, false);
        let (_, snap) = bp.predict(3);
        for (i, &t) in outcomes.iter().enumerate() {
            bp.speculate(i as u32, t);
        }
        bp.restore(snap);
        let (_, snap2) = bp.predict(3);
        prop_assert_eq!(snap, snap2);
    }
}
