//! Property-based tests for the substrate's data structures: queue
//! ordering invariants, cache bookkeeping, predictor history repair, and
//! the equivalence of store-to-load forwarding with a memory round trip.

use dmdc_isa::{Assembler, Program};
use dmdc_ooo::{
    extract_forwarded, BaselinePolicy, BranchPredictor, Cache, CacheConfig, CoreConfig, LoadQueue,
    SimOptions, SimResult, Simulator, StoreQueue,
};
use dmdc_types::{AccessSize, Addr, Age, MemSpan};
use proptest::prelude::*;

/// Assembles a randomized store/load kernel: each iteration stores to a
/// pseudo-random slot of a circular buffer and loads from the slot written
/// `gap` iterations earlier, with optional unpredictable branch noise.
fn random_kernel(iters: u32, gap: u32, addr_bits: u32, noise: bool, seed: u32) -> Program {
    let slots = 1u32 << addr_bits;
    let mask = slots - 1;
    let noise = if noise {
        "         srli x16, x5, 23
                  andi x16, x16, 1
                  srli x17, x5, 37
                  andi x17, x17, 1
                  bne  x16, x17, noisy
                  addi x28, x28, 3
         noisy:"
    } else {
        ""
    };
    let asm = format!(
        "        li   x10, 0x300000
                 li   x11, {iters}
                 li   x5, {seed}
                 li   x6, 1103515245
                 li   x13, {mask}
                 li   x14, {gap}
                 li   x7, 0
                 li   x28, 0
         loop:   mul  x5, x5, x6
                 addi x5, x5, 12345
                 srli x4, x5, 15
                 and  x4, x4, x13
                 slli x9, x4, 3
                 add  x9, x9, x10
                 sd   x7, 0(x9)
                 sub  x3, x4, x14
                 and  x3, x3, x13
                 slli x9, x3, 3
                 add  x9, x9, x10
                 ld   x2, 0(x9)
                 add  x28, x28, x2
         {noise}
                 addi x7, x7, 1
                 blt  x7, x11, loop
                 halt",
        seed = seed.max(1),
        gap = gap.min(mask),
    );
    Assembler::new()
        .assemble(&asm)
        .expect("kernel assembles")
        .with_data(Addr(0x30_0000), vec![0u8; u64::from(slots) as usize * 8])
}

fn run_kernel(program: &Program, opts: SimOptions) -> SimResult {
    let policy = if opts.inval_per_kcycle > 0.0 {
        BaselinePolicy::with_coherence(128)
    } else {
        BaselinePolicy::new()
    };
    let mut sim = Simulator::new(program, CoreConfig::config2(), Box::new(policy));
    sim.run(opts).expect("kernel completes")
}

fn size_strategy() -> impl Strategy<Value = AccessSize> {
    prop_oneof![
        Just(AccessSize::B1),
        Just(AccessSize::B2),
        Just(AccessSize::B4),
        Just(AccessSize::B8)
    ]
}

proptest! {
    /// Forwarding equivalence: extracting a contained load's bytes from a
    /// store's raw value must equal writing the store to memory and reading
    /// the load span back.
    #[test]
    fn forwarding_matches_memory_roundtrip(
        store_qw in 0u64..1_000,
        store_size in size_strategy(),
        value in any::<u64>(),
        load_size in size_strategy(),
        load_off in 0u64..8,
    ) {
        let store_addr = Addr(0x1000 + store_qw * 8);
        let store = MemSpan::new(store_addr, store_size);
        // Build a naturally aligned load span contained in the store span.
        let bytes = load_size.bytes();
        prop_assume!(bytes <= store_size.bytes());
        let off = (load_off * bytes) % store_size.bytes();
        let load = MemSpan::new(store_addr + off, load_size);
        prop_assume!(store.contains(load));

        let raw = value & dmdc_ooo::size_mask(store_size);
        let mut mem = dmdc_isa::SparseMemory::new();
        mem.write(store.addr, store.size, raw);
        let via_memory = mem.read(load.addr, load.size);
        let via_forward = extract_forwarded(raw, load.addr.0 - store.addr.0, load.size);
        prop_assert_eq!(via_memory, via_forward);
    }

    /// Load-queue order invariants under arbitrary allocate/pop/squash
    /// interleavings.
    #[test]
    fn load_queue_stays_age_sorted(ops in prop::collection::vec(0u8..3, 1..100)) {
        let mut lq = LoadQueue::new(16);
        let mut next_age = 1u64;
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                0 if !lq.is_full() => {
                    lq.allocate(Age(next_age));
                    model.push(next_age);
                    next_age += 1;
                }
                1 if !model.is_empty() => {
                    let head = model.remove(0);
                    let e = lq.pop_head(Age(head));
                    prop_assert_eq!(e.age, Age(head));
                }
                2 if !model.is_empty() => {
                    // Squash the youngest half.
                    let cut = model[model.len() / 2];
                    lq.squash(Age(cut));
                    model.retain(|&a| a < cut);
                }
                _ => {}
            }
            let ages: Vec<u64> = lq.iter().map(|e| e.age.0).collect();
            prop_assert_eq!(&ages, &model, "queue must mirror the model");
            let mut sorted = ages.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ages, sorted, "ages must be sorted");
        }
    }

    /// Store-queue forwarding candidate: always the *youngest* resolved
    /// older overlapping store.
    #[test]
    fn store_queue_candidate_is_youngest_older(
        resolved in prop::collection::vec((1u64..50, 0u64..4u64), 1..10),
        load_age in 25u64..100,
        load_qw in 0u64..4,
    ) {
        let mut sq = StoreQueue::new(64);
        let mut ages: Vec<u64> = resolved.iter().map(|&(a, _)| a).collect();
        ages.sort_unstable();
        ages.dedup();
        let mut spans = std::collections::HashMap::new();
        for &age in &ages {
            sq.allocate(Age(age));
            let qw = resolved.iter().find(|&&(a, _)| a == age).unwrap().1;
            let span = MemSpan::new(Addr(0x100 + qw * 8), AccessSize::B8);
            sq.entry_mut(Age(age)).unwrap().span = Some(span);
            spans.insert(age, span);
        }
        let load = MemSpan::new(Addr(0x100 + load_qw * 8), AccessSize::B8);
        let expect = ages
            .iter()
            .filter(|&&a| a < load_age && spans[&a].overlaps(load))
            .max();
        let got = sq.youngest_older_overlap(Age(load_age), load).map(|e| e.age.0);
        prop_assert_eq!(got, expect.copied());
    }

    /// Cache: a just-accessed line always hits on re-access; hit+miss
    /// counters account for every access.
    #[test]
    fn cache_accounting_holds(addrs in prop::collection::vec(0u64..0x20000, 1..200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 });
        for (i, &a) in addrs.iter().enumerate() {
            c.access(Addr(a));
            prop_assert!(c.probe(Addr(a)), "just-filled line must be resident");
            prop_assert_eq!(c.stats.hits + c.stats.misses, i as u64 + 1);
        }
    }

    /// Event-horizon equivalence: for random programs and random
    /// invalidation streams, the event-driven loop produces a bit-identical
    /// [`SimResult`] to the forced per-cycle loop (modulo the two host-side
    /// skip counters that describe how the loop ran, not what it computed).
    #[test]
    fn event_skipping_matches_per_cycle(
        iters in 50u32..400,
        gap in 0u32..8,
        addr_bits in 3u32..8,
        noise in any::<bool>(),
        kernel_seed in 1u32..10_000,
        inval_rate in prop_oneof![Just(0.0f64), Just(5.0), Just(50.0)],
        inval_seed in 1u64..1_000,
    ) {
        let program = random_kernel(iters, gap, addr_bits, noise, kernel_seed);
        let base = SimOptions {
            inval_per_kcycle: inval_rate,
            inval_seed,
            collect_commit_log: true,
            ..SimOptions::default()
        };
        let per_cycle = run_kernel(&program, SimOptions { event_skipping: false, ..base });
        let event = run_kernel(&program, SimOptions { event_skipping: true, ..base });
        prop_assert_eq!(per_cycle.halted, event.halted);
        prop_assert_eq!(per_cycle.checksum, event.checksum);
        prop_assert_eq!(per_cycle.commit_log, event.commit_log);
        prop_assert_eq!(per_cycle.stats.skipped_cycles, 0);
        prop_assert_eq!(
            per_cycle.stats.with_skip_counters_zeroed(),
            event.stats.with_skip_counters_zeroed()
        );
    }

    /// Branch-predictor history: restore(snapshot) exactly undoes any
    /// sequence of speculative updates.
    #[test]
    fn history_restore_is_exact(outcomes in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut bp = BranchPredictor::new(64, 64, 12, 64);
        // Establish a non-trivial starting history.
        bp.speculate(1, true);
        bp.speculate(2, false);
        let (_, snap) = bp.predict(3);
        for (i, &t) in outcomes.iter().enumerate() {
            bp.speculate(i as u32, t);
        }
        bp.restore(snap);
        let (_, snap2) = bp.predict(3);
        prop_assert_eq!(snap, snap2);
    }
}
