//! Optional pipeline tracing: a bounded ring of per-instruction lifecycle
//! events (dispatch → issue → writeback → commit/squash), renderable as a
//! per-instruction timeline. Used for debugging the core and for the
//! `pipeline_trace` example; disabled (zero-cost) by default.

use std::collections::VecDeque;
use std::fmt;

use dmdc_types::{Age, Cycle};

/// A pipeline lifecycle stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Renamed and inserted into the ROB.
    Dispatch,
    /// Selected and sent to a functional unit (loads: memory access begins).
    Issue,
    /// Rejected by the store queue; will retry.
    Reject,
    /// Result written back / resolution complete.
    Writeback,
    /// Architecturally committed.
    Commit,
    /// Removed by a squash (mispredict or replay).
    Squash,
    /// Commit-time dependence replay triggered at this instruction.
    Replay,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Dispatch => "D",
            Stage::Issue => "I",
            Stage::Reject => "R",
            Stage::Writeback => "W",
            Stage::Commit => "C",
            Stage::Squash => "X",
            Stage::Replay => "!",
        };
        write!(f, "{s}")
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub cycle: Cycle,
    /// Which dynamic instruction.
    pub age: Age,
    /// Its program counter (instruction index).
    pub pc: u32,
    /// What happened.
    pub stage: Stage,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use dmdc_ooo::{PipelineTrace, Stage};
/// use dmdc_types::{Age, Cycle};
///
/// let mut t = PipelineTrace::new(8);
/// t.record(Cycle(1), Age(1), 0, Stage::Dispatch);
/// t.record(Cycle(2), Age(1), 0, Stage::Issue);
/// assert_eq!(t.events().count(), 2);
/// assert!(t.render().contains("#1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl PipelineTrace {
    /// A trace keeping the most recent `capacity` events; zero disables
    /// recording entirely.
    pub fn new(capacity: usize) -> PipelineTrace {
        PipelineTrace {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (drops the oldest beyond capacity).
    #[inline]
    pub fn record(&mut self, cycle: Cycle, age: Age, pc: u32, stage: Stage) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            cycle,
            age,
            pc,
            stage,
        });
    }

    /// Events in arrival order (oldest retained first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a per-instruction timeline, oldest instruction first:
    ///
    /// ```text
    /// #12  pc 7   D@3 I@5 W@6 C@9
    /// #13  pc 8   D@3 I@6 X@8
    /// ```
    pub fn render(&self) -> String {
        use std::collections::BTreeMap;
        let mut per_inst: BTreeMap<Age, (u32, Vec<(Stage, Cycle)>)> = BTreeMap::new();
        for e in &self.ring {
            per_inst
                .entry(e.age)
                .or_insert((e.pc, Vec::new()))
                .1
                .push((e.stage, e.cycle));
        }
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for (age, (pc, stages)) in per_inst {
            out.push_str(&format!("{age:>6}  pc {pc:<5}"));
            for (stage, cycle) in stages {
                out.push_str(&format!(" {stage}@{}", cycle.0));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PipelineTrace::new(0);
        t.record(Cycle(1), Age(1), 0, Stage::Dispatch);
        assert!(!t.enabled());
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = PipelineTrace::new(3);
        for i in 1..=5u64 {
            t.record(Cycle(i), Age(i), i as u32, Stage::Dispatch);
        }
        assert_eq!(t.events().count(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events().next().unwrap().age, Age(3));
    }

    #[test]
    fn render_groups_by_instruction() {
        let mut t = PipelineTrace::new(16);
        t.record(Cycle(1), Age(1), 10, Stage::Dispatch);
        t.record(Cycle(2), Age(2), 11, Stage::Dispatch);
        t.record(Cycle(3), Age(1), 10, Stage::Issue);
        t.record(Cycle(5), Age(1), 10, Stage::Commit);
        t.record(Cycle(5), Age(2), 11, Stage::Squash);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("#1") && lines[0].contains("D@1 I@3 C@5"),
            "{s}"
        );
        assert!(lines[1].contains("X@5"), "{s}");
    }

    #[test]
    fn stage_glyphs_are_distinct() {
        let glyphs: Vec<String> = [
            Stage::Dispatch,
            Stage::Issue,
            Stage::Reject,
            Stage::Writeback,
            Stage::Commit,
            Stage::Squash,
            Stage::Replay,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut unique = glyphs.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), glyphs.len());
    }
}
