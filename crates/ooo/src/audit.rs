//! The invariant auditor: runtime checking of the simulator's and the
//! policies' soundness claims (DESIGN.md §11).
//!
//! The paper's argument rests on a soundness claim — age-based filtering
//! and delayed checking never *miss* a real memory-order violation, only
//! occasionally replay spuriously (§3–§4). The auditor turns that claim
//! (and the microarchitectural invariants beneath it) into executable
//! checks performed while a run is in flight:
//!
//! 1. **Commit order** — ages strictly increase at commit.
//! 2. **Queue shape** — ROB/LQ/SQ entries are age-sorted, every LSQ entry
//!    has a matching ROB entry of the right class, and queue occupancy is
//!    within the configured bounds.
//! 3. **Safe stores** (paper §3) — a store declared *safe* by a YLA bank
//!    has no younger issued overlapping load in the LQ. (YLA safety is a
//!    per-bank statement; overlap-freedom is the policy-agnostic
//!    consequence the core can verify directly.)
//! 4. **Safe loads** (paper §4.2) — a load classified safe at issue is
//!    never stale at commit. Spurious replays of safe loads are legal
//!    (the `without_safe_loads` ablation forces them); committing a stale
//!    safe value is not.
//! 5. **No missed replays** (paper §4.4) — a stale load never commits.
//!    With the auditor on, a policy that misses a replay produces a
//!    [`AuditKind::MissedReplay`] violation and the core forces the
//!    replay itself, so the run stays architecturally sound and every
//!    miss is counted instead of aborting at the first one.
//! 6. **Emulator lockstep** — every committed instruction is compared
//!    against the in-order functional emulator: same PC stream, same
//!    memory span, same value written/read (value-by-value oracle).
//! 7. **Policy self-audit** — [`crate::MemDepPolicy::audit_self`] lets a
//!    design check its private structures (e.g. DMDC's checking table
//!    never drops an unsafe store inside an open window).
//!
//! The auditor is a pure observer with one exception (the forced replay
//! of rule 5, which exists so mutant policies can be driven to completion
//! under test). With [`crate::SimOptions::audit`] false — the default
//! without the `audit` cargo feature — none of this code runs and the
//! simulation output is byte-identical to an auditor-less build.

use std::fmt;

use dmdc_isa::{Emulator, Program};
use dmdc_types::{Age, Cycle, MemSpan};

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Commit ages did not strictly increase.
    CommitOrder,
    /// A queue (ROB/LQ/SQ) was not age-sorted or exceeded its bounds.
    QueueShape,
    /// An LQ/SQ entry had no matching ROB entry of the right class.
    QueueRobSync,
    /// A store declared safe while a younger issued overlapping load was
    /// in flight.
    SafeStoreYoungerLoad,
    /// A load classified safe at issue was stale at commit.
    StaleSafeLoad,
    /// The policy let a stale load commit (the auditor forced the replay).
    MissedReplay,
    /// The committed PC stream diverged from the functional emulator.
    LockstepPc,
    /// A committed memory access's span or value diverged from the
    /// functional emulator.
    LockstepValue,
    /// A policy's self-audit found its internal structures inconsistent.
    PolicyState,
    /// An LQ entry carried an INV mark with no matching invalidation ever
    /// injected or delivered (coherence invariant: LSQ INV bits must stay
    /// consistent with the L1 directory's snoop stream).
    InvBitSync,
    /// Final architectural state diverged from the oracle (used by the
    /// fuzz harness, which checks checksums itself).
    StateDivergence,
    /// The simulator panicked (used by the fuzz harness).
    Panic,
}

impl AuditKind {
    /// Stable kebab-case label used in rendered reports and repro files.
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::CommitOrder => "commit-order",
            AuditKind::QueueShape => "queue-shape",
            AuditKind::QueueRobSync => "queue-rob-sync",
            AuditKind::SafeStoreYoungerLoad => "safe-store-younger-load",
            AuditKind::StaleSafeLoad => "stale-safe-load",
            AuditKind::MissedReplay => "missed-replay",
            AuditKind::LockstepPc => "lockstep-pc",
            AuditKind::LockstepValue => "lockstep-value",
            AuditKind::PolicyState => "policy-state",
            AuditKind::InvBitSync => "inv-bit-sync",
            AuditKind::StateDivergence => "state-divergence",
            AuditKind::Panic => "panic",
        }
    }

    /// Parses a [`AuditKind::label`] back.
    pub fn parse_label(s: &str) -> Option<AuditKind> {
        [
            AuditKind::CommitOrder,
            AuditKind::QueueShape,
            AuditKind::QueueRobSync,
            AuditKind::SafeStoreYoungerLoad,
            AuditKind::StaleSafeLoad,
            AuditKind::MissedReplay,
            AuditKind::LockstepPc,
            AuditKind::LockstepValue,
            AuditKind::PolicyState,
            AuditKind::InvBitSync,
            AuditKind::StateDivergence,
            AuditKind::Panic,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One broken invariant, with enough context to localize it: the cycle,
/// the instruction's age and PC, the memory span (when one is involved)
/// and the responsible policy.
///
/// # Examples
///
/// ```
/// use dmdc_ooo::{AuditKind, AuditViolation};
/// use dmdc_types::{AccessSize, Addr, Age, Cycle, MemSpan};
///
/// let v = AuditViolation {
///     kind: AuditKind::MissedReplay,
///     cycle: Cycle(120),
///     age: Age(42),
///     pc: 7,
///     span: Some(MemSpan::new(Addr(0x300008), AccessSize::B4)),
///     policy: "dmdc-global-1024".to_string(),
///     detail: "stale value committed".to_string(),
/// };
/// assert_eq!(
///     v.to_string(),
///     "audit[missed-replay] cycle 120 age 42 pc 7 span 0x300008+4 \
///      policy dmdc-global-1024: stale value committed"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// The invariant that broke.
    pub kind: AuditKind,
    /// Cycle at which the check fired.
    pub cycle: Cycle,
    /// Age of the instruction involved (the committing/resolving one).
    pub age: Age,
    /// Its program counter.
    pub pc: u32,
    /// The memory span involved, if the invariant concerns an access.
    pub span: Option<MemSpan>,
    /// `name()` of the active policy.
    pub policy: String,
    /// Human-readable specifics (values, expected vs. got).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit[{}] cycle {} age {} pc {} span ",
            self.kind, self.cycle.0, self.age.0, self.pc
        )?;
        match self.span {
            Some(s) => write!(f, "{:#x}+{}", s.addr.0, s.size.bytes())?,
            None => f.write_str("-")?,
        }
        write!(f, " policy {}: {}", self.policy, self.detail)
    }
}

/// Cap on collected violations; further ones are only counted. A broken
/// invariant usually fires on every subsequent cycle, and the first few
/// occurrences carry all the signal.
const MAX_VIOLATIONS: usize = 32;

/// The outcome of an audited run: every violation (up to
/// [`MAX_VIOLATIONS`]), plus check/commit counters proving the auditor
/// actually ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Violations in detection order (capped; see `dropped`).
    pub violations: Vec<AuditViolation>,
    /// Violations beyond the cap, counted but not kept.
    pub dropped: u64,
    /// Structural scans performed.
    pub scans: u64,
    /// Commits checked against the emulator.
    pub commits: u64,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Total violations, including dropped ones.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64 + self.dropped
    }

    /// Multi-line text rendering: a summary header, then one line per
    /// kept violation.
    pub fn render(&self) -> String {
        let mut out = format!(
            "audit: {} violations over {} commits ({} structural scans)\n",
            self.violation_count(),
            self.commits,
            self.scans
        );
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... and {} more (capped)\n", self.dropped));
        }
        out
    }
}

/// The in-flight auditor: owns the lockstep emulator and the growing
/// report. Driven by the simulator core at commit, issue and
/// structural-scan points; see the module docs for the invariant list.
pub(crate) struct Auditor<'p> {
    emu: Emulator<'p>,
    policy: String,
    /// Cleared after the first PC divergence: once the streams disagree,
    /// every later comparison is noise.
    lockstep: bool,
    last_age: Age,
    report: AuditReport,
}

impl<'p> Auditor<'p> {
    pub(crate) fn new(program: &'p Program, policy: String) -> Auditor<'p> {
        Auditor {
            emu: Emulator::new(program),
            policy,
            lockstep: true,
            last_age: Age::OLDEST,
            report: AuditReport::default(),
        }
    }

    pub(crate) fn into_report(self) -> AuditReport {
        self.report
    }

    /// Turns off emulator-lockstep checking (invariant 6) while keeping
    /// every other check. Multi-core runs use this: the per-core emulator
    /// only knows this core's instruction stream, so with shared memory its
    /// loads would diverge the moment a remote store lands.
    pub(crate) fn disable_lockstep(&mut self) {
        self.lockstep = false;
    }

    pub(crate) fn record(
        &mut self,
        kind: AuditKind,
        cycle: Cycle,
        age: Age,
        pc: u32,
        span: Option<MemSpan>,
        detail: String,
    ) {
        if self.report.violations.len() >= MAX_VIOLATIONS {
            self.report.dropped += 1;
            return;
        }
        self.report.violations.push(AuditViolation {
            kind,
            cycle,
            age,
            pc,
            span,
            policy: self.policy.clone(),
            detail,
        });
    }

    pub(crate) fn note_scan(&mut self) {
        self.report.scans += 1;
    }

    /// Audits one committed instruction: age monotonicity, then lockstep
    /// against the emulator (PC, span, and — for memory operations — the
    /// raw value the simulator committed vs. the emulator's architectural
    /// memory after the same step).
    pub(crate) fn check_commit(
        &mut self,
        cycle: Cycle,
        age: Age,
        pc: u32,
        span: Option<MemSpan>,
        mem_raw: Option<u64>,
    ) {
        self.report.commits += 1;
        if !age.is_younger_than(self.last_age) && self.report.commits > 1 {
            self.record(
                AuditKind::CommitOrder,
                cycle,
                age,
                pc,
                span,
                format!("commit age {} after {}", age.0, self.last_age.0),
            );
        }
        self.last_age = age;
        if !self.lockstep {
            return;
        }
        let retired = match self.emu.step() {
            Ok(r) => r,
            Err(e) => {
                self.lockstep = false;
                self.record(
                    AuditKind::LockstepPc,
                    cycle,
                    age,
                    pc,
                    span,
                    format!("emulator error at commit: {e}"),
                );
                return;
            }
        };
        if retired.pc != pc {
            self.lockstep = false;
            self.record(
                AuditKind::LockstepPc,
                cycle,
                age,
                pc,
                span,
                format!("emulator retired pc {}, core committed pc {pc}", retired.pc),
            );
            return;
        }
        if retired.mem != span {
            self.record(
                AuditKind::LockstepValue,
                cycle,
                age,
                pc,
                span,
                format!("span mismatch: emulator {:?}, core {:?}", retired.mem, span),
            );
            return;
        }
        if let (Some(s), Some(raw)) = (span, mem_raw) {
            // After the emulator's step, its memory holds the architectural
            // bytes for this access — for a load (which does not write) and
            // a store (which just did) alike.
            let arch = self.emu.memory().read(s.addr, s.size);
            if arch != raw {
                self.record(
                    AuditKind::LockstepValue,
                    cycle,
                    age,
                    pc,
                    span,
                    format!("committed value {raw:#x}, architectural {arch:#x}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_types::{AccessSize, Addr};

    fn violation(kind: AuditKind, span: Option<MemSpan>) -> AuditViolation {
        AuditViolation {
            kind,
            cycle: Cycle(1234),
            age: Age(56),
            pc: 78,
            span,
            policy: "dmdc-global-1024".to_string(),
            detail: "something broke".to_string(),
        }
    }

    #[test]
    fn violation_renders_with_span() {
        let v = violation(
            AuditKind::MissedReplay,
            Some(MemSpan::new(Addr(0x300008), AccessSize::B4)),
        );
        assert_eq!(
            v.to_string(),
            "audit[missed-replay] cycle 1234 age 56 pc 78 span 0x300008+4 \
             policy dmdc-global-1024: something broke"
        );
    }

    #[test]
    fn violation_renders_without_span() {
        let v = violation(AuditKind::CommitOrder, None);
        assert_eq!(
            v.to_string(),
            "audit[commit-order] cycle 1234 age 56 pc 78 span - \
             policy dmdc-global-1024: something broke"
        );
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            AuditKind::CommitOrder,
            AuditKind::QueueShape,
            AuditKind::QueueRobSync,
            AuditKind::SafeStoreYoungerLoad,
            AuditKind::StaleSafeLoad,
            AuditKind::MissedReplay,
            AuditKind::LockstepPc,
            AuditKind::LockstepValue,
            AuditKind::PolicyState,
            AuditKind::InvBitSync,
            AuditKind::StateDivergence,
            AuditKind::Panic,
        ] {
            assert_eq!(AuditKind::parse_label(kind.label()), Some(kind));
        }
        assert_eq!(AuditKind::parse_label("nonsense"), None);
    }

    #[test]
    fn report_renders_summary_and_caps() {
        let mut r = AuditReport {
            commits: 1000,
            scans: 500,
            ..AuditReport::default()
        };
        assert!(r.is_clean());
        r.violations.push(violation(AuditKind::StaleSafeLoad, None));
        r.dropped = 2;
        assert!(!r.is_clean());
        assert_eq!(r.violation_count(), 3);
        let text = r.render();
        assert!(text.starts_with("audit: 3 violations over 1000 commits (500 structural scans)\n"));
        assert!(text.contains("audit[stale-safe-load]"));
        assert!(text.contains("... and 2 more (capped)"));
    }

    #[test]
    fn auditor_caps_collection() {
        let program = dmdc_isa::Assembler::new().assemble("halt").unwrap();
        let mut a = Auditor::new(&program, "p".to_string());
        for i in 0..40 {
            a.record(
                AuditKind::QueueShape,
                Cycle(i),
                Age(i),
                0,
                None,
                "x".to_string(),
            );
        }
        let r = a.into_report();
        assert_eq!(r.violations.len(), MAX_VIOLATIONS);
        assert_eq!(r.dropped, 8);
    }

    #[test]
    fn lockstep_tracks_a_simple_program() {
        let program = dmdc_isa::Assembler::new()
            .assemble(
                "li x1, 5
                 li x2, 0x1000
                 sd x1, 0(x2)
                 ld x3, 0(x2)
                 halt",
            )
            .unwrap();
        let mut a = Auditor::new(&program, "test".to_string());
        let span = MemSpan::new(Addr(0x1000), AccessSize::B8);
        a.check_commit(Cycle(1), Age(1), 0, None, None);
        a.check_commit(Cycle(2), Age(2), 1, None, None);
        a.check_commit(Cycle(3), Age(3), 2, Some(span), Some(5));
        a.check_commit(Cycle(4), Age(4), 3, Some(span), Some(5));
        a.check_commit(Cycle(5), Age(5), 4, None, None);
        assert!(a.into_report().is_clean());
    }

    #[test]
    fn lockstep_flags_wrong_value_and_wrong_pc() {
        let program = dmdc_isa::Assembler::new()
            .assemble(
                "li x1, 5
                 li x2, 0x1000
                 sd x1, 0(x2)
                 halt",
            )
            .unwrap();
        let mut a = Auditor::new(&program, "test".to_string());
        let span = MemSpan::new(Addr(0x1000), AccessSize::B8);
        a.check_commit(Cycle(1), Age(1), 0, None, None);
        a.check_commit(Cycle(2), Age(2), 1, None, None);
        // Wrong committed store value.
        a.check_commit(Cycle(3), Age(3), 2, Some(span), Some(6));
        // Wrong PC: desynchronizes and stops further lockstep checks.
        a.check_commit(Cycle(4), Age(4), 9, None, None);
        a.check_commit(Cycle(5), Age(5), 10, None, None);
        let r = a.into_report();
        let kinds: Vec<AuditKind> = r.violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![AuditKind::LockstepValue, AuditKind::LockstepPc]);
    }

    #[test]
    fn commit_order_violation_detected() {
        let program = dmdc_isa::Assembler::new()
            .assemble("addi x1, x1, 1\naddi x1, x1, 1\nhalt")
            .unwrap();
        let mut a = Auditor::new(&program, "test".to_string());
        a.check_commit(Cycle(1), Age(5), 0, None, None);
        a.check_commit(Cycle(2), Age(5), 1, None, None);
        let r = a.into_report();
        assert_eq!(r.violations[0].kind, AuditKind::CommitOrder);
    }
}
