//! Machine configuration, mirroring Table 1 of the paper.

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles (from the start of the access).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two split.
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            sets.is_power_of_two(),
            "cache sets must be a power of two, got {sets}"
        );
        sets
    }
}

/// Full machine configuration.
///
/// Defaults come from the paper's *config 2* (the configuration all detailed
/// results are reported on); [`CoreConfig::config1`], [`CoreConfig::config2`]
/// and [`CoreConfig::config3`] give the three scaling points of Table 1.
///
/// # Examples
///
/// ```
/// use dmdc_ooo::CoreConfig;
///
/// let c = CoreConfig::config2();
/// assert_eq!(c.rob_size, 256);
/// assert_eq!(c.lq_size, 96);
/// assert_eq!(c.checking_table_entries, 2048);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Human-readable name ("config1" .. "config3").
    pub name: &'static str,
    /// Fetch/decode width (instructions per cycle).
    pub fetch_width: u32,
    /// Rename/dispatch width.
    pub dispatch_width: u32,
    /// Issue width (total across queues).
    pub issue_width: u32,
    /// Commit width.
    pub commit_width: u32,
    /// Reorder buffer entries.
    pub rob_size: u32,
    /// Integer issue-queue entries.
    pub int_iq_size: u32,
    /// Floating-point issue-queue entries.
    pub fp_iq_size: u32,
    /// Load-queue entries.
    pub lq_size: u32,
    /// Store-queue entries.
    pub sq_size: u32,
    /// Integer physical registers.
    pub int_regs: u32,
    /// Floating-point physical registers.
    pub fp_regs: u32,
    /// Simple integer ALUs.
    pub int_alu_units: u32,
    /// Integer multiply/divide units.
    pub int_muldiv_units: u32,
    /// FP adders (also handle compares/converts).
    pub fp_alu_units: u32,
    /// FP multiply/divide units.
    pub fp_muldiv_units: u32,
    /// L1 data-cache ports (shared by load issue and store commit).
    pub dcache_ports: u32,
    /// Branch misprediction penalty: cycles fetch stays silent after a
    /// squash, on top of the refill of the front-end pipeline.
    pub mispredict_penalty: u64,
    /// Cycles from fetch to rename-eligibility (front-end depth).
    pub frontend_latency: u64,
    /// gshare table entries.
    pub gshare_entries: u32,
    /// gshare history bits.
    pub gshare_history_bits: u32,
    /// Bimodal table entries.
    pub bimodal_entries: u32,
    /// Meta chooser table entries.
    pub meta_entries: u32,
    /// BTB entries (total, 4-way).
    pub btb_entries: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Integer ALU latency.
    pub int_alu_latency: u64,
    /// Integer multiply latency.
    pub int_mul_latency: u64,
    /// Integer divide latency.
    pub int_div_latency: u64,
    /// FP add latency.
    pub fp_alu_latency: u64,
    /// FP multiply latency.
    pub fp_mul_latency: u64,
    /// FP divide/sqrt latency.
    pub fp_div_latency: u64,
    /// Store-to-load forwarding latency.
    pub forward_latency: u64,
    /// Cycles a rejected load sleeps before retrying.
    pub reject_retry_delay: u64,
    /// Oldest-store-age SQ filtering (paper §3, "filtering for stores"):
    /// a load older than every in-flight store skips the SQ forwarding
    /// search entirely. Off by default — the paper measures the potential
    /// (~20% of loads) but leaves the SQ design conventional.
    pub sq_age_filter: bool,
    /// DMDC checking-table entries (used by policies that have one).
    pub checking_table_entries: u32,
}

impl CoreConfig {
    fn base(name: &'static str) -> CoreConfig {
        CoreConfig {
            name,
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_size: 256,
            int_iq_size: 48,
            fp_iq_size: 48,
            lq_size: 96,
            sq_size: 48,
            int_regs: 200,
            fp_regs: 200,
            int_alu_units: 8,
            int_muldiv_units: 2,
            fp_alu_units: 8,
            fp_muldiv_units: 2,
            dcache_ports: 2,
            mispredict_penalty: 4,
            frontend_latency: 3,
            gshare_entries: 8192,
            gshare_history_bits: 13,
            bimodal_entries: 4096,
            meta_entries: 8192,
            btb_entries: 4096,
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                ways: 1,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                ways: 2,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                ways: 8,
                line_bytes: 128,
                latency: 15,
            },
            memory_latency: 120,
            int_alu_latency: 1,
            int_mul_latency: 3,
            int_div_latency: 20,
            fp_alu_latency: 2,
            fp_mul_latency: 4,
            fp_div_latency: 12,
            forward_latency: 2,
            reject_retry_delay: 3,
            sq_age_filter: false,
            checking_table_entries: 2048,
        }
    }

    /// Paper config 1: ROB 128, LQ/SQ 48/32, IQ 32/32, 100+100 registers,
    /// 1K-entry checking table.
    pub fn config1() -> CoreConfig {
        CoreConfig {
            rob_size: 128,
            int_iq_size: 32,
            fp_iq_size: 32,
            lq_size: 48,
            sq_size: 32,
            int_regs: 100,
            fp_regs: 100,
            checking_table_entries: 1024,
            ..CoreConfig::base("config1")
        }
    }

    /// Paper config 2 (the default reporting configuration): ROB 256,
    /// LQ/SQ 96/48, IQ 48/48, 200+200 registers, 2K-entry checking table.
    pub fn config2() -> CoreConfig {
        CoreConfig::base("config2")
    }

    /// Paper config 3: ROB 512, LQ/SQ 192/64, IQ 64/64, 400+400 registers,
    /// 4K-entry checking table.
    pub fn config3() -> CoreConfig {
        CoreConfig {
            rob_size: 512,
            int_iq_size: 64,
            fp_iq_size: 64,
            lq_size: 192,
            sq_size: 64,
            int_regs: 400,
            fp_regs: 400,
            checking_table_entries: 4096,
            ..CoreConfig::base("config3")
        }
    }

    /// All three paper configurations, in order.
    pub fn all() -> [CoreConfig; 3] {
        [
            CoreConfig::config1(),
            CoreConfig::config2(),
            CoreConfig::config3(),
        ]
    }

    /// Validates internal consistency (register files large enough to map
    /// all architectural registers, queue sizes non-zero, cache geometry).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(
            self.int_regs > 32,
            "need at least 33 int physical registers"
        );
        assert!(self.fp_regs > 32, "need at least 33 fp physical registers");
        assert!(self.rob_size > 0 && self.lq_size > 0 && self.sq_size > 0);
        assert!(self.fetch_width > 0 && self.issue_width > 0 && self.commit_width > 0);
        assert!(
            self.checking_table_entries.is_power_of_two(),
            "checking table must be a power of two"
        );
        let _ = self.l1i.sets();
        let _ = self.l1d.sets();
        let _ = self.l2.sets();
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::config2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let c1 = CoreConfig::config1();
        assert_eq!((c1.rob_size, c1.lq_size, c1.sq_size), (128, 48, 32));
        assert_eq!(c1.checking_table_entries, 1024);
        let c2 = CoreConfig::config2();
        assert_eq!((c2.rob_size, c2.lq_size, c2.sq_size), (256, 96, 48));
        let c3 = CoreConfig::config3();
        assert_eq!((c3.rob_size, c3.lq_size, c3.sq_size), (512, 192, 64));
        assert_eq!(c3.int_regs, 400);
    }

    #[test]
    fn all_presets_validate() {
        for c in CoreConfig::all() {
            c.validate();
        }
    }

    #[test]
    fn cache_sets_computed() {
        let c = CoreConfig::config2();
        assert_eq!(c.l1d.sets(), (32 << 10) / (2 * 64));
        assert_eq!(c.l2.sets(), (1 << 20) / (8 * 128));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_cache_geometry_panics() {
        CacheConfig {
            size_bytes: 3000,
            ways: 1,
            line_bytes: 64,
            latency: 1,
        }
        .sets();
    }

    #[test]
    fn default_is_config2() {
        assert_eq!(CoreConfig::default(), CoreConfig::config2());
    }
}
