//! Physical register files, free lists and rename map tables.
//!
//! Values flow through the physical registers exactly as in a real core, so
//! speculative (and wrong-path) instructions compute with whatever values
//! the registers hold at issue time — which is what lets premature loads
//! return genuinely stale data and lets the YLA machinery be exercised by
//! wrong-path loads, as the paper discusses in §3.

use dmdc_isa::ArchReg;

/// A physical register: file selector + index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// `true` = floating-point file.
    pub fp: bool,
    /// Index within the file.
    pub idx: u16,
}

/// A renamed source operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// The hardwired integer zero register.
    Zero,
    /// A physical register.
    Phys(PhysReg),
}

/// An FP or integer value in transit through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegValue {
    /// Integer (or raw-bits) value.
    Int(u64),
    /// Floating-point value.
    Fp(f64),
}

impl RegValue {
    /// The integer interpretation.
    ///
    /// # Panics
    ///
    /// Panics if this is an FP value (type confusion is a core bug).
    pub fn as_int(self) -> u64 {
        match self {
            RegValue::Int(v) => v,
            RegValue::Fp(_) => panic!("expected integer register value"),
        }
    }

    /// The FP interpretation.
    ///
    /// # Panics
    ///
    /// Panics if this is an integer value.
    pub fn as_fp(self) -> f64 {
        match self {
            RegValue::Fp(v) => v,
            RegValue::Int(_) => panic!("expected fp register value"),
        }
    }
}

/// Both physical register files plus speculative and retirement map tables.
#[derive(Debug, Clone)]
pub struct RegFiles {
    int_vals: Vec<u64>,
    int_ready: Vec<bool>,
    int_free: Vec<u16>,
    fp_vals: Vec<f64>,
    fp_ready: Vec<bool>,
    fp_free: Vec<u16>,
    spec_map: [PhysReg; ArchReg::FLAT_COUNT],
    retire_map: [PhysReg; ArchReg::FLAT_COUNT],
}

impl RegFiles {
    /// Creates the register files. The first 32 physical registers of each
    /// file are bound to the architectural registers (value 0, ready);
    /// the rest populate the free lists.
    ///
    /// # Panics
    ///
    /// Panics if either file has fewer than 33 registers.
    pub fn new(int_regs: u32, fp_regs: u32) -> RegFiles {
        assert!(
            int_regs > 32 && fp_regs > 32,
            "need more physical than architectural registers"
        );
        let mut spec = [PhysReg { fp: false, idx: 0 }; ArchReg::FLAT_COUNT];
        for (i, slot) in spec.iter_mut().enumerate() {
            *slot = if i < 32 {
                PhysReg {
                    fp: false,
                    idx: i as u16,
                }
            } else {
                PhysReg {
                    fp: true,
                    idx: (i - 32) as u16,
                }
            };
        }
        RegFiles {
            int_vals: vec![0; int_regs as usize],
            int_ready: {
                let mut r = vec![false; int_regs as usize];
                r[..32].fill(true);
                r
            },
            int_free: (32..int_regs as u16).rev().collect(),
            fp_vals: vec![0.0; fp_regs as usize],
            fp_ready: {
                let mut r = vec![false; fp_regs as usize];
                r[..32].fill(true);
                r
            },
            fp_free: (32..fp_regs as u16).rev().collect(),
            spec_map: spec,
            retire_map: spec,
        }
    }

    /// Free integer registers remaining.
    pub fn int_free_count(&self) -> usize {
        self.int_free.len()
    }

    /// Free FP registers remaining.
    pub fn fp_free_count(&self) -> usize {
        self.fp_free.len()
    }

    /// The current speculative mapping of an architectural register.
    pub fn lookup_spec(&self, arch: ArchReg) -> PhysReg {
        self.spec_map[arch.flat_index()]
    }

    /// The current retirement mapping of an architectural register.
    pub fn lookup_retire(&self, arch: ArchReg) -> PhysReg {
        self.retire_map[arch.flat_index()]
    }

    /// Renames a source operand (integer `x0` becomes [`Operand::Zero`]).
    pub fn rename_source(&self, arch: ArchReg) -> Operand {
        if arch.is_int_zero() {
            Operand::Zero
        } else {
            Operand::Phys(self.lookup_spec(arch))
        }
    }

    /// Allocates a fresh destination register for `arch`, updating the
    /// speculative map. Returns `(new, previous_spec_mapping)` or `None` if
    /// the relevant free list is empty (rename must stall).
    pub fn allocate_dest(&mut self, arch: ArchReg) -> Option<(PhysReg, PhysReg)> {
        debug_assert!(!arch.is_int_zero(), "x0 is never renamed");
        let fp = matches!(arch, ArchReg::Fp(_));
        let idx = if fp {
            self.fp_free.pop()?
        } else {
            self.int_free.pop()?
        };
        let new = PhysReg { fp, idx };
        if fp {
            self.fp_ready[idx as usize] = false;
        } else {
            self.int_ready[idx as usize] = false;
        }
        let prev = std::mem::replace(&mut self.spec_map[arch.flat_index()], new);
        Some((new, prev))
    }

    /// Whether an operand's value is available.
    pub fn is_ready(&self, op: Operand) -> bool {
        match op {
            Operand::Zero => true,
            Operand::Phys(p) => {
                if p.fp {
                    self.fp_ready[p.idx as usize]
                } else {
                    self.int_ready[p.idx as usize]
                }
            }
        }
    }

    /// Reads an operand's value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the operand is not ready.
    pub fn read(&self, op: Operand) -> RegValue {
        debug_assert!(self.is_ready(op), "reading a not-ready register");
        match op {
            Operand::Zero => RegValue::Int(0),
            Operand::Phys(p) => {
                if p.fp {
                    RegValue::Fp(self.fp_vals[p.idx as usize])
                } else {
                    RegValue::Int(self.int_vals[p.idx as usize])
                }
            }
        }
    }

    /// Writes a result and marks the register ready.
    ///
    /// # Panics
    ///
    /// Panics on a file/value type mismatch.
    pub fn write(&mut self, p: PhysReg, value: RegValue) {
        match (p.fp, value) {
            (false, RegValue::Int(v)) => {
                self.int_vals[p.idx as usize] = v;
                self.int_ready[p.idx as usize] = true;
            }
            (true, RegValue::Fp(v)) => {
                self.fp_vals[p.idx as usize] = v;
                self.fp_ready[p.idx as usize] = true;
            }
            _ => panic!("register file / value type mismatch"),
        }
    }

    /// Returns a register to its free list (squash of its producer, or
    /// retirement of the next writer of the same architectural register).
    pub fn free(&mut self, p: PhysReg) {
        if p.fp {
            debug_assert!(
                !self.fp_free.contains(&p.idx),
                "double free of fp p{}",
                p.idx
            );
            self.fp_free.push(p.idx);
        } else {
            debug_assert!(
                !self.int_free.contains(&p.idx),
                "double free of int p{}",
                p.idx
            );
            self.int_free.push(p.idx);
        }
    }

    /// Commits a destination mapping: the retirement map now points at
    /// `new`, and the register previously mapped there is freed.
    pub fn retire_dest(&mut self, arch: ArchReg, new: PhysReg) {
        let prev = std::mem::replace(&mut self.retire_map[arch.flat_index()], new);
        self.free(prev);
    }

    /// Resets the speculative map to the retirement map (squash recovery
    /// step 1; the core then replays the mappings of surviving speculative
    /// instructions by walking the ROB).
    pub fn reset_spec_to_retire(&mut self) {
        self.spec_map = self.retire_map;
    }

    /// Re-applies a surviving instruction's destination mapping during
    /// squash recovery.
    pub fn reapply_spec(&mut self, arch: ArchReg, p: PhysReg) {
        self.spec_map[arch.flat_index()] = p;
    }

    /// Architectural integer register values per the retirement map.
    pub fn arch_int_values(&self) -> [u64; 32] {
        let mut out = [0u64; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            let p = self.retire_map[i];
            debug_assert!(!p.fp);
            *slot = self.int_vals[p.idx as usize];
        }
        out
    }

    /// Seeds the architectural register values through the retirement map,
    /// for starting a simulation from a checkpointed mid-program state.
    /// Only valid before any renaming has happened (both maps still at
    /// their identity binding), which the debug assertion enforces.
    pub fn set_arch_values(&mut self, int: &[u64; 32], fp: &[f64; 32]) {
        for i in 0..32 {
            let pi = self.retire_map[i];
            let pf = self.retire_map[32 + i];
            debug_assert!(
                !pi.fp && pi.idx == i as u16 && pf.fp && pf.idx == i as u16,
                "set_arch_values requires the pristine identity mapping"
            );
            self.int_vals[pi.idx as usize] = int[i];
            self.fp_vals[pf.idx as usize] = fp[i];
        }
    }

    /// Architectural FP register values per the retirement map.
    pub fn arch_fp_values(&self) -> [f64; 32] {
        let mut out = [0.0f64; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            let p = self.retire_map[32 + i];
            debug_assert!(p.fp);
            *slot = self.fp_vals[p.idx as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdc_isa::{FReg, Reg};

    fn int(i: u8) -> ArchReg {
        ArchReg::Int(Reg::new(i))
    }

    fn fp(i: u8) -> ArchReg {
        ArchReg::Fp(FReg::new(i))
    }

    #[test]
    fn initial_state_maps_identity_and_ready() {
        let rf = RegFiles::new(40, 40);
        assert_eq!(rf.lookup_spec(int(5)), PhysReg { fp: false, idx: 5 });
        assert_eq!(rf.lookup_spec(fp(5)), PhysReg { fp: true, idx: 5 });
        assert!(rf.is_ready(Operand::Phys(PhysReg { fp: false, idx: 5 })));
        assert_eq!(rf.int_free_count(), 8);
        assert_eq!(rf.read(Operand::Zero), RegValue::Int(0));
    }

    #[test]
    fn rename_write_read_cycle() {
        let mut rf = RegFiles::new(40, 40);
        let (new, prev) = rf.allocate_dest(int(3)).unwrap();
        assert_eq!(prev, PhysReg { fp: false, idx: 3 });
        assert!(!rf.is_ready(Operand::Phys(new)));
        assert_eq!(rf.lookup_spec(int(3)), new);
        rf.write(new, RegValue::Int(77));
        assert!(rf.is_ready(Operand::Phys(new)));
        assert_eq!(rf.read(Operand::Phys(new)).as_int(), 77);
    }

    #[test]
    fn x0_sources_rename_to_zero() {
        let rf = RegFiles::new(40, 40);
        assert_eq!(rf.rename_source(int(0)), Operand::Zero);
        assert!(matches!(rf.rename_source(int(1)), Operand::Phys(_)));
    }

    #[test]
    fn free_list_exhaustion_returns_none() {
        let mut rf = RegFiles::new(34, 34);
        assert!(rf.allocate_dest(int(1)).is_some());
        assert!(rf.allocate_dest(int(2)).is_some());
        assert!(rf.allocate_dest(int(3)).is_none(), "free list exhausted");
        assert!(rf.allocate_dest(fp(1)).is_some(), "fp file independent");
    }

    #[test]
    fn retire_frees_previous_mapping() {
        let mut rf = RegFiles::new(40, 40);
        let (new, _prev) = rf.allocate_dest(int(3)).unwrap();
        rf.write(new, RegValue::Int(1));
        let before = rf.int_free_count();
        rf.retire_dest(int(3), new);
        assert_eq!(
            rf.int_free_count(),
            before + 1,
            "old phys 3 returned to free list"
        );
        assert_eq!(rf.lookup_retire(int(3)), new);
    }

    #[test]
    fn squash_recovery_restores_mappings() {
        let mut rf = RegFiles::new(40, 40);
        let (a, _) = rf.allocate_dest(int(3)).unwrap();
        let (b, _) = rf.allocate_dest(int(3)).unwrap();
        assert_eq!(rf.lookup_spec(int(3)), b);
        // Squash both: free b then a, reset to retirement.
        rf.free(b);
        rf.free(a);
        rf.reset_spec_to_retire();
        assert_eq!(rf.lookup_spec(int(3)), PhysReg { fp: false, idx: 3 });
    }

    #[test]
    fn reapply_spec_replays_survivor() {
        let mut rf = RegFiles::new(40, 40);
        let (a, _) = rf.allocate_dest(int(3)).unwrap();
        rf.reset_spec_to_retire();
        rf.reapply_spec(int(3), a);
        assert_eq!(rf.lookup_spec(int(3)), a);
    }

    #[test]
    fn arch_values_follow_retirement_map() {
        let mut rf = RegFiles::new(40, 40);
        let (new, _) = rf.allocate_dest(int(7)).unwrap();
        rf.write(new, RegValue::Int(99));
        assert_eq!(rf.arch_int_values()[7], 0, "not retired yet");
        rf.retire_dest(int(7), new);
        assert_eq!(rf.arch_int_values()[7], 99);
        let (nf, _) = rf.allocate_dest(fp(2)).unwrap();
        rf.write(nf, RegValue::Fp(2.5));
        rf.retire_dest(fp(2), nf);
        assert_eq!(rf.arch_fp_values()[2], 2.5);
    }

    #[test]
    fn set_arch_values_seeds_pristine_files() {
        let mut rf = RegFiles::new(40, 40);
        let mut ints = [0u64; 32];
        let mut fps = [0.0f64; 32];
        ints[7] = 1234;
        fps[3] = -2.5;
        rf.set_arch_values(&ints, &fps);
        assert_eq!(rf.arch_int_values(), ints);
        assert_eq!(rf.arch_fp_values(), fps);
        assert_eq!(
            rf.read(Operand::Phys(PhysReg { fp: false, idx: 7 }))
                .as_int(),
            1234,
            "speculative readers see the seeded value too"
        );
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_confusion_panics() {
        let mut rf = RegFiles::new(40, 40);
        rf.write(PhysReg { fp: true, idx: 35 }, RegValue::Int(1));
    }
}
