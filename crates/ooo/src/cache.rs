//! Set-associative cache models and the two-level hierarchy.
//!
//! The timing model only needs *latencies* and hit/miss statistics — data
//! always lives in the committed [`SparseMemory`](dmdc_isa::SparseMemory) —
//! so the caches track tags and LRU state only. Misses are non-blocking:
//! each access returns its completion latency and the pipeline overlaps them
//! freely (an ideal-MSHR assumption, documented in DESIGN.md).

use dmdc_types::Addr;

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// One level of set-associative cache (tags + true-LRU replacement).
#[derive(Debug, Clone)]
pub struct Cache {
    line_shift: u32,
    sets: u64,
    ways: usize,
    // tag per (set, way); u64::MAX = invalid.
    tags: Vec<u64>,
    lru: Vec<u64>,
    tick: u64,
    /// Access latency of this level.
    pub latency: u64,
    /// Hit/miss counters.
    pub stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let ways = config.ways as usize;
        Cache {
            line_shift: config.line_bytes.trailing_zeros(),
            sets,
            ways,
            tags: vec![u64::MAX; sets as usize * ways],
            lru: vec![0; sets as usize * ways],
            tick: 0,
            latency: config.latency,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr.0 >> self.line_shift;
        (
            (line & (self.sets - 1)) as usize,
            line >> self.sets.trailing_zeros(),
        )
    }

    /// Probes the cache; on miss, fills the line (evicting LRU). Returns
    /// `true` on hit. `#[inline]` (and the slice-at-once way scan, which
    /// replaces per-way bounds checks with one) because the functional
    /// warmer drives this once or twice per retired instruction over
    /// tens of millions of instructions per sampled cell.
    #[inline]
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let tags = &mut self.tags[base..base + self.ways];
        match tags.iter().position(|&t| t == tag) {
            Some(w) => {
                self.lru[base + w] = self.tick;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                let lru = &mut self.lru[base..base + self.ways];
                let victim = lru
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &stamp)| stamp)
                    .expect("ways > 0")
                    .0;
                tags[victim] = tag;
                lru[victim] = self.tick;
                false
            }
        }
    }

    /// Probes without filling (used by tests and diagnostics).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.tags[base + w] == tag)
    }

    /// Flattens the warm state (LRU clock, counters, tags, recency) into a
    /// fixed-order word vector for checkpoint serialization.
    /// [`Cache::import_state`] is the exact inverse for a cache of the
    /// same geometry.
    pub fn export_state(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(3 + self.tags.len() + self.lru.len());
        v.push(self.tick);
        v.push(self.stats.hits);
        v.push(self.stats.misses);
        v.extend_from_slice(&self.tags);
        v.extend_from_slice(&self.lru);
        v
    }

    /// Restores warm state captured by [`Cache::export_state`]. Returns
    /// `None` (leaving the cache untouched) if `words` does not match this
    /// cache's geometry.
    pub fn import_state(&mut self, words: &[u64]) -> Option<()> {
        let n = self.tags.len();
        if words.len() != 3 + 2 * n {
            return None;
        }
        self.tick = words[0];
        self.stats.hits = words[1];
        self.stats.misses = words[2];
        self.tags.copy_from_slice(&words[3..3 + n]);
        self.lru.copy_from_slice(&words[3 + n..]);
        Some(())
    }
}

/// The L1I / L1D / unified-L2 / memory hierarchy.
///
/// # Examples
///
/// ```
/// use dmdc_ooo::{CoreConfig, MemoryHierarchy};
/// use dmdc_types::Addr;
///
/// let cfg = CoreConfig::config2();
/// let mut mh = MemoryHierarchy::new(&cfg);
/// let cold = mh.data_access(Addr(0x1000));
/// let warm = mh.data_access(Addr(0x1000));
/// assert!(cold > warm, "first touch misses all the way to memory");
/// assert_eq!(warm, cfg.l1d.latency);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    memory_latency: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a core configuration.
    pub fn new(config: &crate::config::CoreConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            memory_latency: config.memory_latency,
        }
    }

    /// An instruction-fetch access: returns total latency in cycles.
    #[inline]
    pub fn inst_access(&mut self, addr: Addr) -> u64 {
        if self.l1i.access(addr) {
            self.l1i.latency
        } else if self.l2.access(addr) {
            self.l1i.latency + self.l2.latency
        } else {
            self.l1i.latency + self.l2.latency + self.memory_latency
        }
    }

    /// A data access (load timing or store commit): returns total latency.
    #[inline]
    pub fn data_access(&mut self, addr: Addr) -> u64 {
        if self.l1d.access(addr) {
            self.l1d.latency
        } else if self.l2.access(addr) {
            self.l1d.latency + self.l2.latency
        } else {
            self.l1d.latency + self.l2.latency + self.memory_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 2,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache();
        assert!(!c.access(Addr(0x1000)));
        assert!(c.access(Addr(0x1000)));
        assert!(c.access(Addr(0x1004)), "same line hits");
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set stride = 4 lines * 64B = 256B).
        let a = Addr(0);
        let b = Addr(256);
        let d = Addr(512);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small_cache();
        c.access(Addr(0));
        c.access(Addr(64));
        c.access(Addr(128));
        c.access(Addr(192));
        assert!(c.probe(Addr(0)));
        assert!(c.probe(Addr(192)));
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let cfg = CoreConfig::config2();
        let mut mh = MemoryHierarchy::new(&cfg);
        let cold = mh.data_access(Addr(0x4_0000));
        assert_eq!(cold, cfg.l1d.latency + cfg.l2.latency + cfg.memory_latency);
        let warm = mh.data_access(Addr(0x4_0000));
        assert_eq!(warm, cfg.l1d.latency);
        // Evict from L1 but not L2: touch enough conflicting lines.
        // L1D is 32KB 2-way with 64B lines -> 256 sets, stride 16KB.
        let victim = Addr(0x4_0000);
        for i in 1..=2u64 {
            mh.data_access(Addr(0x4_0000 + i * 16 * 1024));
        }
        let l2_hit = mh.data_access(victim);
        assert_eq!(l2_hit, cfg.l1d.latency + cfg.l2.latency);
    }

    #[test]
    fn export_import_roundtrips_warm_state() {
        let mut warm = small_cache();
        for i in 0..40u64 {
            warm.access(Addr(i * 96));
        }
        let words = warm.export_state();
        let mut fresh = small_cache();
        fresh.import_state(&words).expect("same geometry");
        assert_eq!(fresh.stats, warm.stats);
        for i in 0..40u64 {
            assert_eq!(fresh.probe(Addr(i * 96)), warm.probe(Addr(i * 96)));
        }
        // Identical behaviour from here on, not just identical probes.
        assert_eq!(fresh.access(Addr(0x5000)), warm.access(Addr(0x5000)));
        assert_eq!(fresh.export_state(), warm.export_state());
        // A geometry mismatch refuses rather than corrupts.
        let mut other = Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            latency: 2,
        });
        assert!(other.import_state(&words).is_none());
        assert_eq!(other.stats, CacheStats::default());
    }

    #[test]
    fn inst_and_data_paths_share_l2() {
        let cfg = CoreConfig::config2();
        let mut mh = MemoryHierarchy::new(&cfg);
        mh.data_access(Addr(0x8000));
        // Instruction access to the same line: misses L1I but hits L2.
        let lat = mh.inst_access(Addr(0x8000));
        assert_eq!(lat, cfg.l1i.latency + cfg.l2.latency);
    }
}
